"""Unit tests for the Section 7 extensions: uncertain and non-immediate contacts."""

from __future__ import annotations


import pytest

from repro.contacts import Contact
from repro.core import ContactNetworkError, Point, QueryError, ReachabilityQuery, TimeInterval
from repro.extensions import (
    NonImmediateContact,
    NonImmediateReachability,
    UncertainContact,
    UncertainContactNetwork,
    UReachGraph,
    assign_probabilities,
    build_non_immediate_contacts,
)
from repro.trajectory import Trajectory, TrajectoryDataset


def query(source, destination, start, end):
    return ReachabilityQuery(source, destination, TimeInterval(start, end))


class TestUncertainContacts:
    def test_probability_must_be_in_unit_interval(self, figure1_network):
        contact = figure1_network.contacts[0]
        with pytest.raises(ContactNetworkError):
            UncertainContact(contact, 0.0)
        with pytest.raises(ContactNetworkError):
            UncertainContact(contact, 1.2)

    def test_assign_probabilities_covers_every_contact(self, figure1_network):
        uncertain = assign_probabilities(figure1_network, base_probability=0.5)
        assert len(uncertain.contacts) == figure1_network.num_contacts
        assert all(0 < c.probability <= 1 for c in uncertain.contacts)

    def test_longer_contacts_get_higher_probability(self, figure1_network):
        uncertain = assign_probabilities(
            figure1_network, base_probability=0.5, duration_bonus=0.1
        )
        by_pair = {
            (c.contact.objects, c.contact.validity.length): c.probability
            for c in uncertain.contacts
        }
        # c1 = {1,2} over one tick, c4 = {1,2} over two ticks.
        assert by_pair[((1, 2), 2)] > by_pair[((1, 2), 1)]

    def test_unknown_contact_rejected(self, figure1_network, figure1_dataset):
        foreign = Contact(1, 3, TimeInterval(0, 0))
        with pytest.raises(ContactNetworkError):
            UncertainContactNetwork(
                figure1_network, [UncertainContact(foreign, 0.5)]
            )


class TestUReachGraph:
    def make_ureach(self, network, probability):
        contacts = [UncertainContact(c, probability) for c in network.contacts]
        return UReachGraph(UncertainContactNetwork(network, contacts))

    def test_best_path_probability_multiplies_along_the_path(self, figure1_network):
        ureach = self.make_ureach(figure1_network, 0.5)
        # o1 -> o4 during [0, 1] needs two contacts: probability 0.25.
        probability, _ = ureach.best_path_probability(1, 4, TimeInterval(0, 1))
        assert probability == pytest.approx(0.25)

    def test_unreachable_pair_has_zero_probability(self, figure1_network):
        ureach = self.make_ureach(figure1_network, 0.9)
        probability, _ = ureach.best_path_probability(4, 1, TimeInterval(0, 1))
        assert probability == 0.0

    def test_source_equals_destination_is_certain(self, figure1_network):
        ureach = self.make_ureach(figure1_network, 0.3)
        probability, _ = ureach.best_path_probability(2, 2, TimeInterval(0, 3))
        assert probability == 1.0

    def test_threshold_query_semantics(self, figure1_network):
        ureach = self.make_ureach(figure1_network, 0.5)
        q = query(1, 4, 0, 1)
        assert ureach.evaluate(q, threshold=0.2).reachable
        assert not ureach.evaluate(q, threshold=0.3).reachable

    def test_certain_contacts_reduce_to_plain_reachability(self, figure1_network):
        from repro.baselines import evaluate_reachability

        ureach = self.make_ureach(figure1_network, 1.0)
        for source in (1, 2, 3, 4):
            for destination in (1, 2, 3, 4):
                q = query(source, destination, 0, 3)
                expected = evaluate_reachability(figure1_network, q).reachable
                assert ureach.evaluate(q, threshold=1.0).reachable == expected

    def test_invalid_threshold_rejected(self, figure1_network):
        ureach = self.make_ureach(figure1_network, 0.5)
        with pytest.raises(QueryError):
            ureach.evaluate(query(1, 2, 0, 1), threshold=0.0)

    def test_interval_outside_horizon_rejected(self, figure1_network):
        ureach = self.make_ureach(figure1_network, 0.5)
        with pytest.raises(QueryError):
            ureach.best_path_probability(1, 2, TimeInterval(100, 110))


class TestNonImmediateContacts:
    @pytest.fixture()
    def bus_stop_dataset(self):
        """o0 visits a location and leaves; o1 arrives there two ticks later.

        The two objects are never within the threshold at the same instant, so
        only non-immediate contacts can connect them.
        """
        far = 1_000.0
        o0 = [Point(0, 0), Point(0, 0), Point(far, far), Point(far, far), Point(far, far)]
        o1 = [Point(far, 0), Point(far, 0), Point(far, 0), Point(1, 1), Point(1, 1)]
        return TrajectoryDataset(
            [Trajectory(0, o0), Trajectory(1, o1)],
            environment_size=(2_000.0, 2_000.0),
            name="bus-stop",
        )

    def test_contact_validation(self):
        with pytest.raises(ContactNetworkError):
            NonImmediateContact(1, 1, 0, 2)
        with pytest.raises(ContactNetworkError):
            NonImmediateContact(0, 1, 5, 2)
        contact = NonImmediateContact(0, 1, 2, 4)
        assert contact.validity == TimeInterval(2, 4)

    def test_no_contacts_with_zero_lifetime(self, bus_stop_dataset):
        contacts = build_non_immediate_contacts(
            bus_stop_dataset, distance_threshold=10.0, lifetime=0
        )
        assert contacts == []

    def test_delayed_contact_found_with_sufficient_lifetime(self, bus_stop_dataset):
        contacts = build_non_immediate_contacts(
            bus_stop_dataset, distance_threshold=10.0, lifetime=3
        )
        directed = {(c.carrier, c.receiver, c.emit_time, c.receive_time) for c in contacts}
        # o0 is at (0,0) during ticks 0-1; o1 arrives nearby at tick 3.
        assert (0, 1, 1, 3) in directed
        # The item cannot travel backwards in time.
        assert all(c.emit_time <= c.receive_time for c in contacts)

    def test_lifetime_bounds_the_delay(self, bus_stop_dataset):
        contacts = build_non_immediate_contacts(
            bus_stop_dataset, distance_threshold=10.0, lifetime=1
        )
        assert all(c.receive_time - c.emit_time <= 1 for c in contacts)
        # o0 leaves at tick 2 and o1 arrives at tick 3, so with lifetime 1 the
        # only possible transfer is from the tick-2 position, which is far away.
        assert not any(c.carrier == 0 and c.receiver == 1 for c in contacts)

    def test_reachability_through_delayed_contact(self, bus_stop_dataset):
        contacts = build_non_immediate_contacts(
            bus_stop_dataset, distance_threshold=10.0, lifetime=3
        )
        evaluator = NonImmediateReachability(bus_stop_dataset, contacts)
        result = evaluator.evaluate(query(0, 1, 0, 4))
        assert result.reachable
        assert result.earliest_time == 3
        # The reverse direction never happens: o1's positions are never
        # revisited by o0 within the lifetime.
        assert not evaluator.evaluate(query(1, 0, 0, 4)).reachable

    def test_reachability_respects_query_interval(self, bus_stop_dataset):
        contacts = build_non_immediate_contacts(
            bus_stop_dataset, distance_threshold=10.0, lifetime=3
        )
        evaluator = NonImmediateReachability(bus_stop_dataset, contacts)
        # The transfer requires o0's tick-0/1 position; a query starting at
        # tick 2 must not use it.
        assert not evaluator.evaluate(query(0, 1, 2, 4)).reachable

    def test_source_equals_destination(self, bus_stop_dataset):
        evaluator = NonImmediateReachability(bus_stop_dataset, [])
        assert evaluator.evaluate(query(1, 1, 0, 4)).reachable

    def test_invalid_parameters_rejected(self, bus_stop_dataset):
        with pytest.raises(ContactNetworkError):
            build_non_immediate_contacts(bus_stop_dataset, distance_threshold=0, lifetime=1)
        with pytest.raises(ContactNetworkError):
            build_non_immediate_contacts(bus_stop_dataset, distance_threshold=10, lifetime=-1)

    def test_immediate_contacts_are_a_subset(self, figure1_dataset, figure1_network):
        """With lifetime 0 the directed non-immediate contacts are exactly the
        instantaneous (same-tick) proximity events of the ordinary network."""
        contacts = build_non_immediate_contacts(
            figure1_dataset, distance_threshold=10.0, lifetime=0
        )
        undirected = {(min(c.carrier, c.receiver), max(c.carrier, c.receiver), c.emit_time) for c in contacts}
        expected = set()
        for contact in figure1_network:
            for t in contact.validity.instants():
                expected.add((contact.first, contact.second, t))
        assert undirected == expected
