"""Unit tests for trajectories, segments, and datasets."""

from __future__ import annotations

import pytest

from repro.core import Point, TimeInterval, TrajectoryError, UnknownObjectError
from repro.trajectory import Trajectory, TrajectoryDataset, TrajectorySample


def straight_line_trajectory(object_id=0, length=10, start_time=0):
    return Trajectory(
        object_id,
        [Point(float(i), 2.0 * i) for i in range(length)],
        start_time=start_time,
    )


class TestTrajectory:
    def test_rejects_empty_trajectory(self):
        with pytest.raises(TrajectoryError):
            Trajectory(0, [])

    def test_rejects_negative_start_time(self):
        with pytest.raises(TrajectoryError):
            Trajectory(0, [Point(0, 0)], start_time=-1)

    def test_horizon_and_length(self):
        trajectory = straight_line_trajectory(length=5, start_time=3)
        assert trajectory.horizon == TimeInterval(3, 7)
        assert len(trajectory) == 5

    def test_position_at_maps_tick_to_sample(self):
        trajectory = straight_line_trajectory(length=5, start_time=3)
        assert trajectory.position_at(3) == Point(0, 0)
        assert trajectory.position_at(6) == Point(3, 6)

    def test_position_outside_horizon_raises(self):
        trajectory = straight_line_trajectory(length=5)
        with pytest.raises(TrajectoryError):
            trajectory.position_at(5)

    def test_samples_are_in_time_order(self):
        trajectory = straight_line_trajectory(length=4)
        times = [sample.time for sample in trajectory.samples()]
        assert times == [0, 1, 2, 3]

    def test_segment_clips_to_horizon(self):
        trajectory = straight_line_trajectory(length=5)
        segment = trajectory.segment(TimeInterval(3, 10))
        assert [sample.time for sample in segment] == [3, 4]

    def test_segment_outside_horizon_is_empty(self):
        trajectory = straight_line_trajectory(length=5)
        segment = trajectory.segment(TimeInterval(20, 30))
        assert segment.is_empty()
        assert len(segment) == 0

    def test_sample_round_trip_tuple(self):
        sample = TrajectorySample(3, 7, Point(1.5, -2.5))
        assert TrajectorySample.from_tuple(sample.as_tuple()) == sample


class TestTrajectoryDataset:
    def make_dataset(self, count=3, length=6):
        return TrajectoryDataset(
            [straight_line_trajectory(object_id=i, length=length) for i in range(count)],
            environment_size=(100.0, 100.0),
            name="unit",
        )

    def test_basic_properties(self):
        dataset = self.make_dataset(count=4, length=6)
        assert dataset.num_objects == 4
        assert dataset.object_ids == [0, 1, 2, 3]
        assert dataset.horizon == TimeInterval(0, 5)
        assert dataset.num_instants == 6
        assert len(dataset) == 4

    def test_rejects_duplicate_object_ids(self):
        with pytest.raises(TrajectoryError):
            TrajectoryDataset(
                [straight_line_trajectory(0), straight_line_trajectory(0)],
                environment_size=(10, 10),
            )

    def test_rejects_mismatched_horizons(self):
        with pytest.raises(TrajectoryError):
            TrajectoryDataset(
                [
                    straight_line_trajectory(0, length=5),
                    straight_line_trajectory(1, length=7),
                ],
                environment_size=(10, 10),
            )

    def test_rejects_empty_dataset(self):
        with pytest.raises(TrajectoryError):
            TrajectoryDataset([], environment_size=(10, 10))

    def test_rejects_non_positive_environment(self):
        with pytest.raises(TrajectoryError):
            TrajectoryDataset(
                [straight_line_trajectory(0)], environment_size=(0, 10)
            )

    def test_unknown_object_lookup_raises(self):
        dataset = self.make_dataset()
        with pytest.raises(UnknownObjectError):
            dataset.trajectory(99)

    def test_positions_at_returns_every_object(self):
        dataset = self.make_dataset(count=3)
        positions = dataset.positions_at(2)
        assert set(positions) == {0, 1, 2}
        assert positions[1] == Point(2, 4)

    def test_segments_cover_every_object(self):
        dataset = self.make_dataset(count=3, length=6)
        segments = dataset.segments(TimeInterval(1, 3))
        assert len(segments) == 3
        assert all(len(segment) == 3 for segment in segments)

    def test_restricted_truncates_horizon(self):
        dataset = self.make_dataset(count=2, length=8)
        shorter = dataset.restricted(3)
        assert shorter.num_instants == 3
        assert shorter.num_objects == 2
        assert shorter.trajectory(1).position_at(2) == Point(2, 4)

    def test_restricted_rejects_bad_lengths(self):
        dataset = self.make_dataset(length=5)
        with pytest.raises(TrajectoryError):
            dataset.restricted(0)
        with pytest.raises(TrajectoryError):
            dataset.restricted(6)
