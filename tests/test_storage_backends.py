"""Backend-conformance suite: one battery, every block-device backend.

The storage contract (:class:`repro.storage.backends.StorageBackend`) is what
every layer above relies on — buffer pool, block files, hash tables, snapshot
stores.  This module runs a single shared battery across all registered
backends through a fixture matrix, so a new backend cannot pass CI without
behaving exactly like the simulated device: same round-trips, same errors,
same sequential-vs-random IO accounting, same flush/close semantics.  The
persistence half (reopen-after-close) runs only on the backends that claim
``persistent``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ConfigurationError, StorageConfig, StorageError
from repro.core.errors import BlockOutOfRangeError
from repro.storage import (
    STORAGE_BACKENDS,
    BufferPool,
    FileBackend,
    MmapBackend,
    SimulatedBackend,
    SimulatedDisk,
    StorageSystem,
    make_backend,
)

PERSISTENT_BACKENDS = tuple(b for b in STORAGE_BACKENDS if b != "sim")

#: Payloads covering the shapes the indexes actually store: record lists,
#: hash buckets, scalars, empty containers.
PAYLOADS = [
    [("obj", 3, 1.5, 2.5)] * 4,
    {"bucket": {1: "a", 2: "b"}},
    "plain-string",
    [],
    0,
]


@pytest.fixture(params=STORAGE_BACKENDS)
def backend_name(request):
    return request.param


@pytest.fixture()
def make(backend_name, tmp_path):
    """A factory creating (and re-opening) the parametrized backend.

    Successive calls with the same ``stem`` target the same backing file,
    which is how the persistence tests model a close/reopen cycle.
    """

    def factory(stem="device", **config_kwargs):
        config = StorageConfig(backend=backend_name, **config_kwargs)
        suffix = {"file": ".blocks", "mmap": ".mmap"}.get(backend_name, "")
        return make_backend(config, path=str(tmp_path / f"{stem}{suffix}"))

    factory.backend_name = backend_name
    return factory


class TestConformanceBattery:
    """The shared battery: identical behaviour on every backend."""

    def test_allocate_returns_increasing_ids(self, make):
        disk = make()
        assert (disk.allocate("a"), disk.allocate("b")) == (0, 1)
        assert disk.num_blocks == 2
        assert len(disk) == 2

    @pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
    def test_write_read_roundtrip(self, make, payload):
        disk = make()
        block = disk.allocate()
        disk.write(block, payload)
        assert disk.read(block) == payload

    def test_rewrite_replaces_payload(self, make):
        disk = make()
        block = disk.allocate("first")
        disk.write(block, "second")
        assert disk.read(block) == "second"

    def test_allocated_but_unwritten_block_reads_none(self, make):
        disk = make()
        block = disk.allocate()
        assert disk.read(block) is None

    def test_large_payload_roundtrip(self, make):
        # Exceeds the mmap slot capacity, exercising its overflow path.
        disk = make()
        payload = list(range(5000))
        block = disk.allocate(payload)
        assert disk.read(block) == payload

    def test_out_of_range_access_raises(self, make):
        disk = make()
        with pytest.raises(BlockOutOfRangeError):
            disk.read(0)
        disk.allocate()
        with pytest.raises(BlockOutOfRangeError):
            disk.read(5)
        with pytest.raises(BlockOutOfRangeError):
            disk.write(-1, "x")

    def test_allocate_many_is_contiguous(self, make):
        disk = make()
        disk.allocate("x")
        assert disk.allocate_many(4) == [1, 2, 3, 4]
        assert disk.num_blocks == 5

    def test_allocate_many_rejects_negative(self, make):
        with pytest.raises(StorageError):
            make().allocate_many(-1)

    def test_growth_past_initial_capacity(self, make):
        # The mmap backend doubles its slot array; every backend must keep
        # earlier payloads intact across growth.
        disk = make()
        blocks = [disk.allocate(f"payload-{i}") for i in range(300)]
        assert [disk.read(b) for b in blocks[:3]] == [
            "payload-0",
            "payload-1",
            "payload-2",
        ]
        assert disk.read(blocks[-1]) == "payload-299"

    # ------------------------------------------------------------------
    # IO accounting
    # ------------------------------------------------------------------
    def test_sequential_scan_is_mostly_sequential_io(self, make):
        disk = make()
        for value in range(50):
            disk.allocate(value)
        for block in range(50):
            disk.read(block)
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == 49

    def test_scattered_reads_are_random_io(self, make):
        disk = make()
        for value in range(10):
            disk.allocate(value)
        for block in (5, 9, 3, 7, 0):
            disk.read(block)
        assert disk.stats.random_reads == 5
        assert disk.stats.sequential_reads == 0

    def test_writes_and_allocations_are_counted(self, make):
        disk = make()
        block = disk.allocate("x")  # non-None initial payload: one write
        disk.write(block, "y")
        disk.allocate()  # empty allocation: not a write
        assert disk.stats.writes == 2

    def test_peek_does_not_charge_io(self, make):
        disk = make()
        block = disk.allocate("payload")
        reads_before = disk.stats.total_reads
        assert disk.peek(block) == "payload"
        assert disk.stats.total_reads == reads_before

    def test_reset_stats_preserves_layout(self, make):
        disk = make()
        block = disk.allocate("kept")
        disk.read(block)
        disk.reset_stats()
        assert disk.stats.total_reads == 0
        assert disk.read(block) == "kept"

    # ------------------------------------------------------------------
    # flush / close semantics
    # ------------------------------------------------------------------
    def test_operations_after_close_raise(self, make):
        disk = make()
        block = disk.allocate("x")
        disk.close()
        assert disk.closed
        for operation in (
            lambda: disk.allocate(),
            lambda: disk.allocate_many(2),
            lambda: disk.read(block),
            lambda: disk.peek(block),
            lambda: disk.write(block, "y"),
            lambda: disk.flush(),
            lambda: disk.put_metadata("k", 1),
        ):
            with pytest.raises(StorageError):
                operation()

    def test_close_is_idempotent(self, make):
        disk = make()
        disk.allocate("x")
        disk.close()
        disk.close()

    def test_flush_keeps_device_usable(self, make):
        disk = make()
        block = disk.allocate("x")
        disk.flush()
        assert disk.read(block) == "x"
        assert disk.allocate("y") == block + 1

    def test_metadata_roundtrip(self, make):
        disk = make()
        disk.put_metadata("key", {"nested": [1, 2]})
        assert disk.get_metadata("key") == {"nested": [1, 2]}
        assert disk.get_metadata("absent", "fallback") == "fallback"


class TestPersistence:
    """Reopen-after-close: persistent backends only."""

    @pytest.fixture(autouse=True)
    def _skip_non_persistent(self, make):
        if make.backend_name not in PERSISTENT_BACKENDS:
            pytest.skip("sim backend is deliberately not persistent")

    def test_blocks_survive_close_and_reopen(self, make):
        disk = make("reopen")
        blocks = [disk.allocate(f"payload-{i}") for i in range(20)]
        disk.write(blocks[3], "rewritten")
        disk.put_metadata("tag", 42)
        disk.close()

        reopened = make("reopen")
        assert reopened.num_blocks == 20
        assert reopened.read(blocks[0]) == "payload-0"
        assert reopened.read(blocks[3]) == "rewritten"
        assert reopened.get_metadata("tag") == 42
        reopened.close()

    def test_reopen_after_flush_without_close(self, make):
        # flush() alone is the durability point: a process that never closes
        # (crash) must still leave a reopenable device behind.
        disk = make("flush-only")
        block = disk.allocate("durable")
        disk.flush()
        reopened = make("flush-only")
        assert reopened.read(block) == "durable"
        reopened.close()
        disk.close()

    def test_reopened_device_accepts_new_writes(self, make):
        disk = make("append")
        disk.allocate("old")
        disk.close()
        reopened = make("append")
        new_block = reopened.allocate("new")
        assert reopened.read(new_block) == "new"
        reopened.close()
        final = make("append")
        assert final.read(new_block) == "new"
        assert final.read(0) == "old"
        final.close()

    def test_sim_backend_is_not_persistent(self):
        assert SimulatedBackend.persistent is False
        assert SimulatedDisk is SimulatedBackend
        assert FileBackend.persistent and MmapBackend.persistent


class TestFileBackendSpecifics:
    def test_unflushed_log_records_are_replayed_on_reopen(self, tmp_path):
        # Writes that hit the append-only log but missed the final manifest
        # rewrite are recovered by the self-describing-record replay.
        path = str(tmp_path / "replay.blocks")
        disk = FileBackend(path)
        disk.allocate("before-flush")
        disk.flush()
        disk.allocate("after-flush")
        disk._handle.flush()  # bytes reach the file, manifest stays stale
        del disk

        reopened = FileBackend(path)
        assert reopened.num_blocks == 2
        assert reopened.read(1) == "after-flush"
        reopened.close()

    def test_page_cache_skips_repeated_decoding_but_not_accounting(self, tmp_path):
        disk = FileBackend(str(tmp_path / "cache.blocks"), page_cache_blocks=8)
        block = disk.allocate(["records"])
        disk.reset_stats()
        disk.read(block)
        disk.read(block)
        # Physical IO accounting is cache-blind; the buffer pool above is the
        # component that models IO-free re-reads.
        assert disk.stats.total_reads == 2

    def test_rejects_negative_page_cache(self, tmp_path):
        with pytest.raises(StorageError):
            FileBackend(str(tmp_path / "x.blocks"), page_cache_blocks=-1)


class TestMmapBackendSpecifics:
    def test_overflow_payloads_survive_reopen(self, tmp_path):
        path = str(tmp_path / "overflow.mmap")
        disk = MmapBackend(path, slot_bytes=64)
        small = disk.allocate("tiny")
        big = disk.allocate(list(range(1000)))
        assert disk.num_overflow_blocks == 1
        disk.close()
        reopened = MmapBackend(path, slot_bytes=64)
        assert reopened.read(small) == "tiny"
        assert reopened.read(big) == list(range(1000))
        reopened.close()

    def test_rewrite_from_overflow_back_to_inline(self, tmp_path):
        disk = MmapBackend(str(tmp_path / "shrink.mmap"), slot_bytes=64)
        block = disk.allocate(list(range(1000)))
        disk.write(block, "now-small")
        assert disk.num_overflow_blocks == 0
        assert disk.read(block) == "now-small"
        disk.close()

    def test_rejects_degenerate_slot_size(self, tmp_path):
        with pytest.raises(StorageError):
            MmapBackend(str(tmp_path / "x.mmap"), slot_bytes=4)

    def test_lost_overflow_payload_fails_loudly_after_crash(self, tmp_path):
        # A spilled payload lives only in the manifest; a crash before any
        # flush loses it, and the reopened device must say so via the storage
        # error contract rather than a bare KeyError.
        path = str(tmp_path / "crash.mmap")
        disk = MmapBackend(path, slot_bytes=64)
        inline = disk.allocate("small")
        spilled = disk.allocate(list(range(1000)))
        disk._map.flush()  # mapped pages reach the file, manifest never does
        del disk

        reopened = MmapBackend(path, slot_bytes=64)
        assert reopened.read(inline) == "small"
        with pytest.raises(StorageError, match="overflow payload was lost"):
            reopened.read(spilled)
        reopened.close()


class TestStorageSystemPersistence:
    """Catalog round-trips: block files and hash tables survive reopen."""

    @pytest.fixture(params=PERSISTENT_BACKENDS)
    def config(self, request, tmp_path):
        return StorageConfig(backend=request.param, storage_dir=str(tmp_path))

    def test_blockfile_extents_survive_reopen(self, config):
        storage = StorageSystem(config, name="sys")
        cells = storage.new_blockfile("cells", records_per_block=4)
        cells.append_extent("a", list(range(10)))
        cells.append_extent("b", ["x", "y"])
        storage.close()

        reopened = StorageSystem(config, name="sys")
        restored = reopened.blockfile("cells")
        assert restored.extent_keys() == ["a", "b"]
        assert restored.read_extent("a") == list(range(10))
        assert restored.read_extent("b") == ["x", "y"]
        assert restored.records_per_block == 4
        reopened.close()

    def test_hashtable_survives_reopen(self, config):
        storage = StorageSystem(config, name="sys")
        table = storage.new_hashtable("lookup")
        table.build([(key, key * key) for key in range(200)])
        storage.close()

        reopened = StorageSystem(config, name="sys")
        restored = reopened.hashtable("lookup")
        assert restored.get(14) == 196
        assert restored.get(999) is None
        assert 77 in restored
        reopened.close()

    def test_never_built_hashtable_stays_unbuilt_after_reopen(self, config):
        # Regression: restoring an empty bucket list must not mark the table
        # built (get() would divide by zero buckets); it keeps raising the
        # same not-built error the pre-close table raised.
        storage = StorageSystem(config, name="sys")
        storage.new_hashtable("pending")
        storage.close()
        reopened = StorageSystem(config, name="sys")
        restored = reopened.hashtable("pending")
        assert not restored.is_built
        with pytest.raises(StorageError):
            restored.get(1)
        restored.build([(1, "one")])
        assert restored.get(1) == "one"
        reopened.close()

    def test_destroy_removes_backing_files(self, config, tmp_path):
        storage = StorageSystem(config, name="scratch")
        storage.new_blockfile("cells").append_extent("a", [1, 2, 3])
        assert any(tmp_path.iterdir())
        storage.destroy()
        assert list(tmp_path.iterdir()) == []
        storage.destroy()  # idempotent

    def test_metadata_survives_reopen(self, config):
        storage = StorageSystem(config, name="sys")
        storage.put_metadata("manifest", {"watermark": 59})
        storage.close()
        reopened = StorageSystem(config, name="sys")
        assert reopened.get_metadata("manifest") == {"watermark": 59}
        reopened.close()

    def test_two_systems_in_one_directory_need_distinct_names(self, config):
        first = StorageSystem(config, name="alpha")
        second = StorageSystem(config, name="beta")
        assert first.path != second.path
        first.close()
        second.close()

    def test_no_files_created_outside_storage_dir(self, config, tmp_path):
        storage = StorageSystem(config, name="contained")
        storage.new_blockfile("cells").append_extent("a", [1, 2, 3])
        storage.close()
        created = {str(p) for p in tmp_path.rglob("*")}
        assert created, "persistent backend should create backing files"
        assert all(path.startswith(str(tmp_path)) for path in created)


class TestStorageSystemDefaults:
    def test_sim_backend_creates_no_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            storage = StorageSystem()
            storage.new_blockfile("cells").append_extent("a", [1])
            storage.close()
            assert list(tmp_path.iterdir()) == []
        finally:
            tempfile.tempdir = None

    def test_anonymous_persistent_storage_cleans_up_on_close(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None
        try:
            storage = StorageSystem(StorageConfig(backend="file"), name="anon")
            storage.new_blockfile("cells").append_extent("a", [1])
            assert storage.path is not None and os.path.exists(storage.path)
            storage.close()
            assert list(tmp_path.iterdir()) == []
        finally:
            tempfile.tempdir = None

    def test_unknown_backend_rejected_by_config(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(backend="tape")


class TestBufferPoolWriteBack:
    """Regression: dirty pages must reach persistent devices (issue satellite)."""

    @pytest.fixture(params=PERSISTENT_BACKENDS)
    def config(self, request, tmp_path):
        return StorageConfig(backend=request.param, storage_dir=str(tmp_path))

    def test_dirty_evicted_block_survives_reopen(self, config):
        storage = StorageSystem(config, name="wb")
        blocks = storage.disk.allocate_many(8)
        pool = BufferPool(storage.disk, capacity=2)
        pool.write(blocks[0], "dirty-payload")
        # Filling the tiny pool evicts the dirty frame, which must write back
        # to the device rather than silently dropping the payload.
        storage.disk.write(blocks[1], "b1")
        storage.disk.write(blocks[2], "b2")
        pool.read(blocks[1])
        pool.read(blocks[2])
        assert not pool.contains(blocks[0])
        storage.close()

        reopened = StorageSystem(config, name="wb")
        assert reopened.disk.read(blocks[0]) == "dirty-payload"
        reopened.close()

    def test_system_flush_writes_back_resident_dirty_frames(self, config):
        storage = StorageSystem(config, name="wb-flush")
        block = storage.disk.allocate()
        storage.buffer_pool.write(block, "still-resident")
        assert storage.buffer_pool.dirty_blocks == 1
        storage.close()  # close → flush → write-back before the device syncs

        reopened = StorageSystem(config, name="wb-flush")
        assert reopened.disk.read(block) == "still-resident"
        reopened.close()
