"""Tests for the benchmark regression gate and the async CLI plumbing.

``benchmarks/check_regression.py`` is CI's last line of defense against
performance regressions; these tests pin its contract: distillation of full
pytest-benchmark documents, the >threshold failure, the missing-benchmark
failure, tolerance of new benchmarks, and ``--normalize`` cancelling a
uniform machine-speed factor while still catching relative regressions.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import (
    _CONCURRENCY_KWARGS,
    _GRAPH_MODE_KWARGS,
    _SHARD_KWARGS,
    build_parser,
)
from repro.experiments.figures import EXPERIMENTS


def _load_checker():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def write_json(tmp_path: Path, name: str, payload) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def full_document(medians):
    """A minimal pytest-benchmark ``--benchmark-json`` document."""
    return {
        "benchmarks": [
            {"name": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }


class TestLoadMedians:
    def test_distills_full_benchmark_document(self, tmp_path):
        path = write_json(tmp_path, "full.json", full_document({"a": 1.5, "b": 0.25}))
        assert checker.load_medians(path) == {"a": 1.5, "b": 0.25}

    def test_accepts_distilled_baseline(self, tmp_path):
        path = write_json(tmp_path, "base.json", {"a": 1.5})
        assert checker.load_medians(path) == {"a": 1.5}

    def test_rejects_garbage(self, tmp_path):
        path = write_json(tmp_path, "bad.json", {"a": "fast"})
        with pytest.raises(SystemExit):
            checker.load_medians(path)


class TestGate:
    def run(self, tmp_path, fresh, baseline, *extra):
        fresh_path = write_json(tmp_path, "fresh.json", full_document(fresh))
        base_path = write_json(tmp_path, "base.json", baseline)
        return checker.main([str(fresh_path), "--baseline", str(base_path), *extra])

    def test_within_threshold_passes(self, tmp_path):
        assert self.run(tmp_path, {"a": 1.2, "b": 1.0}, {"a": 1.0, "b": 1.0}) == 0

    def test_slowdown_past_threshold_fails(self, tmp_path):
        assert self.run(tmp_path, {"a": 1.4, "b": 1.0}, {"a": 1.0, "b": 1.0}) == 1

    def test_custom_threshold(self, tmp_path):
        assert (
            self.run(tmp_path, {"a": 1.4}, {"a": 1.0}, "--threshold", "0.5") == 0
        )

    def test_missing_benchmark_fails(self, tmp_path):
        assert self.run(tmp_path, {"a": 1.0}, {"a": 1.0, "gone": 1.0}) == 1

    def test_new_benchmark_is_reported_not_gated(self, tmp_path):
        assert self.run(tmp_path, {"a": 1.0, "new": 9.0}, {"a": 1.0}) == 0

    def test_normalize_cancels_uniform_machine_factor(self, tmp_path):
        # Everything 2x slower: raw gating fails, normalized gating passes.
        fresh = {"a": 2.0, "b": 2.0, "c": 2.0}
        base = {"a": 1.0, "b": 1.0, "c": 1.0}
        assert self.run(tmp_path, fresh, base) == 1
        assert self.run(tmp_path, fresh, base, "--normalize") == 0

    def test_normalize_still_catches_relative_regression(self, tmp_path):
        # One benchmark 4x slower against a 2x-slower machine: still a fail.
        fresh = {"a": 2.0, "b": 2.0, "c": 8.0}
        base = {"a": 1.0, "b": 1.0, "c": 2.0}
        assert self.run(tmp_path, fresh, base, "--normalize") == 1

    def test_normalize_does_not_dilute_a_single_regression(self, tmp_path):
        # Median factor: a 45% regression in one of three benchmarks must
        # fail even though it would drag a mean-based machine factor up to
        # 1.13x (which would have adjusted it under the 30% threshold).
        fresh = {"a": 1.45, "b": 1.0, "c": 1.0}
        base = {"a": 1.0, "b": 1.0, "c": 1.0}
        assert self.run(tmp_path, fresh, base, "--normalize") == 1

    def test_normalize_speedup_does_not_poison_other_benchmarks(self, tmp_path):
        # A legitimate 2x optimization of one benchmark must not drag the
        # machine factor down and flag the untouched benchmarks as slower.
        fresh = {"a": 0.5, "b": 1.0, "c": 1.0}
        base = {"a": 1.0, "b": 1.0, "c": 1.0}
        assert self.run(tmp_path, fresh, base, "--normalize") == 0

    def test_normalize_machine_factor_cap_catches_broad_regression(self, tmp_path):
        # All benchmarks share the streaming hot path, so a regression there
        # shifts every ratio uniformly; past the cap the gate must fail
        # rather than absorb it as "a slower machine".
        fresh = {"a": 2.5, "b": 2.5, "c": 2.5}
        base = {"a": 1.0, "b": 1.0, "c": 1.0}
        assert self.run(tmp_path, fresh, base, "--normalize") == 1
        assert (
            self.run(
                tmp_path, fresh, base, "--normalize", "--max-machine-factor", "3.0"
            )
            == 0
        )

    def test_update_writes_distilled_baseline(self, tmp_path):
        fresh_path = write_json(tmp_path, "fresh.json", full_document({"a": 1.5}))
        base_path = tmp_path / "base.json"
        assert (
            checker.main(
                [str(fresh_path), "--baseline", str(base_path), "--update"]
            )
            == 0
        )
        assert json.loads(base_path.read_text()) == {"a": 1.5}
        # An update round-trips: gating the same fresh run passes.
        assert checker.main([str(fresh_path), "--baseline", str(base_path)]) == 0

    def test_committed_baseline_covers_streaming_benchmarks(self):
        baseline = checker.load_medians(checker.DEFAULT_BASELINE)
        assert set(baseline) == {
            "test_streaming_ingest_and_query",
            "test_sharded_scaling_curve",
            "test_async_vs_sync_serving",
            "test_storage_backend_comparison",
            "test_graph_merge_cost",
            "test_space_reclamation",
            "test_parallel_merge_scaling",
            "test_query_latency",
        }


class TestCliPlumbing:
    def test_concurrency_flag_parses(self):
        args = build_parser().parse_args(["stream-async", "--concurrency", "8"])
        assert args.concurrency == 8
        assert build_parser().parse_args(["stream"]).concurrency is None

    def test_graph_mode_flag_parses(self):
        args = build_parser().parse_args(["stream-graph", "--graph-mode", "rebuild"])
        assert args.graph_mode == "rebuild"
        assert build_parser().parse_args(["stream-graph"]).graph_mode is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream-graph", "--graph-mode", "bogus"])

    def test_injection_tables_reference_known_experiments(self):
        assert set(_SHARD_KWARGS) <= set(EXPERIMENTS)
        assert set(_CONCURRENCY_KWARGS) <= set(EXPERIMENTS)
        assert set(_GRAPH_MODE_KWARGS) <= set(EXPERIMENTS)
