"""Unit tests for ReachGraph construction: reduction, augmentation, partitioning.

The Figure 1 scenario gives paper-stated ground truth for the reduction
(Figures 4 and 5): the per-snapshot components, the component that persists
over [2, 3] (the paper's merged c5/c7), and the resulting vertex count.
"""

from __future__ import annotations

import pytest

from repro.core import IndexConstructionError, TimeInterval
from repro.reachgraph import (
    ContactDag,
    LongEdgeLayer,
    augment_dag,
    build_layer,
    partition_hypergraph,
    reduce_contact_network,
)
from repro.reachgraph.dag import HyperGraph


class TestReductionOnFigure1:
    def test_vertex_count_matches_figure5(self, figure1_dag):
        # Components per snapshot: t0 -> {1,2},{3},{4}; t1 -> {1},{2,3,4};
        # t2 -> {1,2},{3,4}; t3 -> {1,2},{3},{4}.  The {1,2} component of t2
        # persists through t3 (the paper's merged c5/c7), giving 9 vertices.
        assert figure1_dag.num_nodes == 9

    def test_merged_component_spans_two_instants(self, figure1_dag):
        spans = {
            (node.interval.start, node.interval.end, node.members)
            for node in figure1_dag
        }
        assert (2, 3, frozenset({1, 2})) in spans

    def test_every_object_has_a_component_at_every_instant(self, figure1_dag, figure1_network):
        for t in figure1_network.horizon.instants():
            for object_id in figure1_network.object_ids:
                node_id = figure1_dag.node_of(object_id, t)
                node = figure1_dag.node(node_id)
                assert node.active_at(t)
                assert object_id in node.members

    def test_components_partition_objects_at_each_instant(self, figure1_dag, figure1_network):
        for t in figure1_network.horizon.instants():
            members = [
                node.members for node in figure1_dag.nodes_active_at(t)
            ]
            flattened = [obj for group in members for obj in group]
            assert sorted(flattened) == sorted(figure1_network.object_ids)

    def test_edges_connect_components_sharing_an_object(self, figure1_dag):
        for source_id, targets in figure1_dag.forward.items():
            source = figure1_dag.node(source_id)
            for target_id in targets:
                target = figure1_dag.node(target_id)
                assert source.members & target.members, "DN edge without shared object"
                assert source.interval.end < target.interval.start

    def test_edges_are_topologically_ordered(self, figure1_dag):
        for source_id, targets in figure1_dag.forward.items():
            assert all(source_id < target_id for target_id in targets)

    def test_reduction_report_ratios(self, figure1_network):
        _, report = reduce_contact_network(figure1_network)
        assert report.ten_vertices == 16
        assert report.dag_vertices == 9
        assert 0 < report.vertex_reduction < 1
        assert 0 < report.edge_reduction < 1

    def test_windowed_reduction(self, figure1_network):
        dag, report = reduce_contact_network(
            figure1_network, window=TimeInterval(0, 1)
        )
        assert dag.horizon == TimeInterval(0, 1)
        # t0: {1,2},{3},{4}; t1: {1},{2,3,4} -> 5 vertices.
        assert dag.num_nodes == 5
        assert report.ten_vertices == 8

    def test_reduction_shrinks_generated_networks(self, tiny_network):
        _, report = reduce_contact_network(tiny_network)
        assert report.dag_vertices < report.ten_vertices
        assert report.dag_edges < report.ten_edges
        assert report.vertex_reduction > 0.3


class TestContactDagPrimitives:
    def test_extend_node_cannot_shrink(self):
        dag = ContactDag(TimeInterval(0, 5), num_objects=2)
        node = dag.add_node(TimeInterval(0, 2), frozenset({0, 1}))
        with pytest.raises(IndexConstructionError):
            dag.extend_node(node.node_id, 1)

    def test_add_edge_deduplicates(self):
        dag = ContactDag(TimeInterval(0, 5), num_objects=2)
        a = dag.add_node(TimeInterval(0, 0), frozenset({0}))
        b = dag.add_node(TimeInterval(1, 1), frozenset({0, 1}))
        dag.add_edge(a.node_id, b.node_id)
        dag.add_edge(a.node_id, b.node_id)
        assert dag.successors(a.node_id) == [b.node_id]
        assert dag.predecessors(b.node_id) == [a.node_id]
        assert dag.num_edges == 1

    def test_node_of_unknown_object_raises(self):
        dag = ContactDag(TimeInterval(0, 5), num_objects=1)
        dag.add_node(TimeInterval(0, 5), frozenset({0}))
        with pytest.raises(IndexConstructionError):
            dag.node_of(99, 0)

    def test_node_of_time_without_assignment_raises(self):
        dag = ContactDag(TimeInterval(0, 5), num_objects=1)
        dag.add_node(TimeInterval(2, 5), frozenset({0}))
        with pytest.raises(IndexConstructionError):
            dag.node_of(0, 0)


class TestAugmentation:
    def test_long_edges_connect_reachable_boundary_components(self, figure1_dag):
        layer = build_layer(figure1_dag, resolution=2)
        # o1's component at t=0 ({1,2}) reaches o4's component at t=2 ({3,4})
        # via o2 -> o4 (t=1) -> {3,4} (t=2): a long edge must exist.
        source = figure1_dag.node_of(1, 0)
        target = figure1_dag.node_of(4, 2)
        assert target in layer.successors(source)

    def test_long_edges_are_sound_wrt_reference_reachability(self, figure1_dag, figure1_network):
        from repro.baselines import evaluate_reachability
        from repro.core import ReachabilityQuery

        layer = build_layer(figure1_dag, resolution=2)
        # Every long edge must correspond to genuine object-level reachability
        # within the window it spans.
        for source_id, targets in layer.forward.items():
            source = figure1_dag.node(source_id)
            for target_id in targets:
                target = figure1_dag.node(target_id)
                window = TimeInterval(0, 2)
                assert any(
                    evaluate_reachability(
                        figure1_network, ReachabilityQuery(a, b, window)
                    ).reachable
                    for a in source.members
                    for b in target.members
                ), (source, target)

    def test_long_edge_endpoints_are_l_apart(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        layer = build_layer(dag, resolution=8)
        for source_id, targets in layer.forward.items():
            source = dag.node(source_id)
            for target_id in targets:
                target = dag.node(target_id)
                # Source is active at some boundary ta and target at ta + 8.
                boundaries = [
                    ta
                    for ta in range(dag.horizon.start, dag.horizon.end - 7, 8)
                    if source.active_at(ta) and target.active_at(ta + 8)
                ]
                assert boundaries, (source.interval, target.interval)

    def test_augment_dag_builds_every_requested_resolution(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        hypergraph, report = augment_dag(dag, (2, 4, 8))
        assert hypergraph.resolutions == [2, 4, 8]
        assert set(report.long_edges_per_resolution) == {2, 4, 8}
        assert report.total_long_edges == hypergraph.num_long_edges

    def test_average_degree_grows_with_resolution(self, tiny_network):
        # Table 4's trend: over longer windows, objects reach more objects.
        dag, _ = reduce_contact_network(tiny_network)
        _, report = augment_dag(dag, (2, 16))
        assert (
            report.average_degree_per_resolution[16]
            >= report.average_degree_per_resolution[2]
        )

    def test_duplicate_layer_rejected(self, figure1_dag):
        layer = LongEdgeLayer(2)
        hypergraph = HyperGraph(figure1_dag, [layer])
        with pytest.raises(IndexConstructionError):
            hypergraph.add_layer(LongEdgeLayer(2))


class TestPartitioning:
    def test_every_vertex_is_assigned_exactly_once(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        hypergraph, _ = augment_dag(dag, (2, 4))
        partitioning = partition_hypergraph(hypergraph, depth=4)
        assert set(partitioning.partition_of) == set(range(dag.num_nodes))
        counted = sum(len(members) for members in partitioning.members)
        assert counted == dag.num_nodes

    def test_partition_members_are_reachable_from_their_root(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        hypergraph, _ = augment_dag(dag, ())
        partitioning = partition_hypergraph(hypergraph, depth=3)
        for members in partitioning.members:
            root = members[0]
            # BFS from the root within depth 3 must cover every member.
            frontier = {root}
            covered = {root}
            for _ in range(3):
                frontier = {
                    successor
                    for node in frontier
                    for successor in dag.successors(node)
                }
                covered |= frontier
            assert set(members) <= covered

    def test_depth_one_gives_more_partitions_than_depth_sixteen(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        hypergraph, _ = augment_dag(dag, ())
        shallow = partition_hypergraph(hypergraph, depth=1)
        deep = partition_hypergraph(hypergraph, depth=16)
        assert shallow.num_partitions >= deep.num_partitions
        assert shallow.average_partition_size() <= deep.average_partition_size()

    def test_partition_sizes_sum_to_vertex_count(self, figure1_dag):
        hypergraph, _ = augment_dag(figure1_dag, (2,))
        partitioning = partition_hypergraph(hypergraph, depth=2)
        assert sum(partitioning.partition_sizes()) == figure1_dag.num_nodes
