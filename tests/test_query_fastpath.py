"""Tests for the query fast path: interval labels, zone maps, partition cache.

Three pruning layers ride in front of the exact evaluators, and each is
one-sided — a positive pruning verdict must be *provably* exact, a negative
one falls through to the traversal that was always correct:

* :class:`~repro.reachgraph.ReachLabelIndex` — GRAIL-style interval labels
  over the reduced DAG, patched incrementally across streaming merges;
* per-run zone maps on the LSM snapshot store (min/max contact time plus an
  object-id Bloom filter), skipping provably disjoint runs without IO;
* the cross-query :class:`~repro.reachgraph.PartitionCache`, shared by every
  query path and invalidated whenever the graph mutates.

The acceptance bar is the repo-wide one: with every layer on or off, in any
combination, answers are bit-identical to the batch reference at every
watermark — including after close/reopen and for queries issued between the
build and adopt phases of a merge.
"""

from __future__ import annotations

import pytest

from equivalence import (
    EQUIVALENCE_LABEL_MODES,
    assert_methods_agree,
    assert_reopened_matches_prefix,
    backend_storage_config,
    prefix_network,
    reference_evaluator,
)
from repro.core import (
    ReachabilityQuery,
    StreamingConfig,
    TimeInterval,
)
from repro.reachgraph import (
    ContactDag,
    DagPatch,
    PartitionCache,
    ReachLabelIndex,
    reduce_contact_network,
)
from repro.streaming import (
    DatasetReplaySource,
    SnapshotQueryService,
    StreamingReachabilityService,
    build_merge,
)
from repro.streaming.delta import ObjectBloomFilter
from repro.workloads.queries import random_queries

TINY_THRESHOLD = 30.0

# The label axis itself is parametrized by tests/conftest.py's
# pytest_generate_tests (honouring --labels); assert the canned axis here so
# a drive-by edit to the tuple cannot silently drop a mode from CI.
assert EQUIVALENCE_LABEL_MODES == (True, False)


def exhaustive_reachability(dag: ContactDag) -> set:
    """Every reachable ``(source_id, target_id)`` pair of ``dag``, by DFS."""
    pairs = set()
    for source in range(dag.num_nodes):
        stack = [source]
        seen = {source}
        while stack:
            node = stack.pop()
            pairs.add((source, node))
            for child in dag.successors(node):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
    return pairs


def assert_rejections_exact(labels: ReachLabelIndex, dag: ContactDag) -> None:
    """A ``rejects`` verdict must never contradict exhaustive reachability."""
    reachable = exhaustive_reachability(dag)
    for source in range(dag.num_nodes):
        for target in range(dag.num_nodes):
            if labels.rejects(source, target):
                assert (source, target) not in reachable, (
                    f"labels rejected reachable pair {source}->{target}"
                )


def chain_dag(length: int) -> ContactDag:
    """A single path ``0 -> 1 -> ... -> length-1`` (ids are topological)."""
    dag = ContactDag(TimeInterval(0, length), num_objects=2)
    for position in range(length):
        dag.add_node(TimeInterval(position, position), frozenset({1, 2}))
        if position:
            dag.add_edge(position - 1, position)
    return dag


def suffix_patch(dag: ContactDag, base_nodes: int) -> DagPatch:
    """A patch describing how ``dag`` extends a ``base_nodes``-vertex prefix."""
    return DagPatch(
        base_end=dag.nodes[base_nodes - 1].interval.end,
        base_nodes=base_nodes,
        new_end=dag.horizon.end,
        extensions=(),
        new_nodes=tuple(
            (node.node_id, node.interval.start, node.interval.end, tuple(node.members))
            for node in dag.nodes[base_nodes:]
        ),
        new_edges=tuple(
            (source, target)
            for source in range(dag.num_nodes)
            for target in dag.successors(source)
            if target >= base_nodes
        ),
        new_long_edges=(),
        window_cursors=(),
    )


# ----------------------------------------------------------------------
# interval labels (unit)
# ----------------------------------------------------------------------
class TestReachLabelIndex:
    def test_build_is_exact_on_figure1(self, figure1_dag):
        labels = ReachLabelIndex.build(figure1_dag)
        labels.check_consistency(figure1_dag)
        assert labels.num_labels == figure1_dag.num_nodes
        assert_rejections_exact(labels, figure1_dag)

    def test_build_is_exact_on_generated_dag(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        labels = ReachLabelIndex.build(dag)
        labels.check_consistency(dag)
        assert_rejections_exact(labels, dag)
        # The axis is useful, not vacuous: a real contact DAG has provably
        # unreachable pairs and the labels must find some of them for free.
        labels.rejections = 0
        reachable = exhaustive_reachability(dag)
        unreachable = dag.num_nodes * dag.num_nodes - len(reachable)
        assert unreachable > 0
        for source in range(dag.num_nodes):
            for target in range(dag.num_nodes):
                labels.rejects(source, target)
        assert 0 < labels.rejections <= unreachable

    def test_rejects_never_fires_on_identity(self, figure1_dag):
        labels = ReachLabelIndex.build(figure1_dag)
        for node_id in range(figure1_dag.num_nodes):
            assert not labels.rejects(node_id, node_id)

    def test_dirty_ratio_is_validated(self):
        with pytest.raises(ValueError):
            ReachLabelIndex(dirty_ratio=-0.1)
        with pytest.raises(ValueError):
            ReachLabelIndex(dirty_ratio=1.5)

    def test_patch_base_mismatch_is_rejected(self):
        dag = chain_dag(6)
        labels = ReachLabelIndex.build(dag)
        with pytest.raises(ValueError):
            labels.apply_patch(suffix_patch(dag, base_nodes=3), dag)

    def test_incremental_patch_stays_exact(self):
        dag = chain_dag(8)
        # Branch the tail so the patch carries real fan-out, not just a path.
        dag.add_node(TimeInterval(8, 8), frozenset({1, 2}))
        dag.add_node(TimeInterval(8, 9), frozenset({1, 2}))
        dag.add_edge(7, 8)
        dag.add_edge(7, 9)
        dag.add_node(TimeInterval(9, 9), frozenset({1, 2}))
        dag.add_edge(8, 10)

        prefix = chain_dag(8)
        labels = ReachLabelIndex.build(prefix)
        labels.apply_patch(suffix_patch(dag, base_nodes=8), dag)
        labels.check_consistency(dag)
        assert labels.num_labels == dag.num_nodes
        assert labels.incremental_passes == 1
        assert labels.full_relabels == 0
        assert labels.patched_labels > 0
        assert_rejections_exact(labels, dag)

    def test_overflowing_dirty_bound_falls_back_to_full_relabel(self):
        # A 20-deep chain: one new frontier vertex dirties every ancestor,
        # exceeding the floor bound of 16 when dirty_ratio pins it there.
        dag = chain_dag(21)
        prefix = chain_dag(20)
        labels = ReachLabelIndex.build(prefix, dirty_ratio=0.0)
        labels.apply_patch(suffix_patch(dag, base_nodes=20), dag)
        assert labels.full_relabels == 1
        assert labels.incremental_passes == 0
        labels.check_consistency(dag)
        assert_rejections_exact(labels, dag)
        # The relabel restored tight positive postorder ranks throughout.
        assert all(labels.label(n)[1] > 0 for n in range(dag.num_nodes))

    def test_dirty_ratio_one_never_falls_back(self):
        # With the bound at the whole vertex count the dirty closure can
        # never exceed it — the incremental pass must always survive.
        dag = chain_dag(21)
        prefix = chain_dag(20)
        labels = ReachLabelIndex.build(prefix, dirty_ratio=1.0)
        labels.apply_patch(suffix_patch(dag, base_nodes=20), dag)
        assert labels.incremental_passes == 1
        assert labels.full_relabels == 0
        labels.check_consistency(dag)
        assert_rejections_exact(labels, dag)

    def test_catalog_restore_roundtrip(self):
        dag = chain_dag(10)
        prefix = chain_dag(7)
        labels = ReachLabelIndex.build(prefix, dirty_ratio=1.0)
        labels.apply_patch(suffix_patch(dag, base_nodes=7), dag)
        restored = ReachLabelIndex.restore(labels.catalog())
        assert restored.num_labels == labels.num_labels
        for node_id in range(dag.num_nodes):
            assert restored.label(node_id) == labels.label(node_id)
        assert restored.dirty_ratio == labels.dirty_ratio
        assert restored.incremental_passes == labels.incremental_passes
        assert restored.full_relabels == labels.full_relabels
        # The negative-rank counter must survive the roundtrip, or the next
        # patch after a reopen would hand out colliding ranks.
        longer = chain_dag(12)
        restored.apply_patch(suffix_patch(longer, base_nodes=10), longer)
        restored.check_consistency(longer)
        assert_rejections_exact(restored, longer)


# ----------------------------------------------------------------------
# interval labels (maintained through the streaming service)
# ----------------------------------------------------------------------
def _service(dataset, contact_config, **overrides):
    overrides.setdefault("max_delta_contacts", 48)
    return StreamingReachabilityService.for_dataset(
        dataset,
        contact_config=contact_config,
        streaming_config=StreamingConfig(**overrides),
    )


class TestLabelsInService:
    def test_labels_are_patched_across_incremental_merges(
        self, tiny_dataset, tiny_contact_config
    ):
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            graph_mode="incremental",
            label_dirty_ratio=1.0,
        )
        service.drain(tiny_dataset)
        service.merge()
        assert service.num_merges > 1
        index = service.overlay.snapshot_processor.index
        labels = index.labels
        assert labels is not None
        assert labels.num_labels == index.dag.num_nodes
        # dirty_ratio=1.0 makes the fallback unreachable: every increment
        # must have gone through the bounded incremental pass.
        assert labels.incremental_passes == index.num_increments
        assert labels.full_relabels == 0
        labels.check_consistency(index.dag)
        assert_rejections_exact(labels, index.dag)
        service.close()

    def test_default_ratio_falls_back_but_stays_exact(
        self, tiny_dataset, tiny_contact_config
    ):
        service = _service(tiny_dataset, tiny_contact_config, graph_mode="incremental")
        service.drain(tiny_dataset)
        service.merge()
        index = service.overlay.snapshot_processor.index
        labels = index.labels
        assert labels is not None
        stats = service.stats
        assert (
            stats.label_relabels + stats.label_full_relabels
            == index.num_increments
        ), "every increment must be ledger-counted, whichever path it took"
        labels.check_consistency(index.dag)
        service.close()

    def test_labels_follow_frontier_repacks(self, tiny_dataset, tiny_contact_config):
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            graph_mode="incremental",
            graph_repack_min_partitions=2,
        )
        generation_log = set()
        for batch in DatasetReplaySource(tiny_dataset, batch_ticks=8).batches():
            service.ingest(batch)
            generation_log.add(service.overlay.partition_cache.generation)
        service.merge()
        index = service.overlay.snapshot_processor.index
        if service.stats.graph_repacks:
            # A repack rewrites partition placement but not vertex identity:
            # the labels must still cover and satisfy the patched DAG.
            assert index.labels is not None
            index.labels.check_consistency(index.dag)
        assert len(generation_log) > 1, "merges must bump the cache generation"
        service.close()

    def test_disabling_labels_leaves_index_bare(
        self, tiny_dataset, tiny_contact_config
    ):
        service = _service(tiny_dataset, tiny_contact_config, graph_labels=False)
        service.drain(tiny_dataset)
        service.merge()
        assert service.overlay.snapshot_processor.index.labels is None
        for query in random_queries(tiny_dataset, count=10, seed=3):
            service.query(query)
        stats = service.stats
        assert stats.label_rejections == 0
        assert stats.label_frontier_prunes == 0
        service.close()

    def test_labels_survive_close_reopen(
        self, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(max_delta_contacts=48),
            storage_config=storage_config,
        )
        service.drain(tiny_dataset)
        service.merge()
        live = service.overlay.snapshot_processor.index.labels
        live_labels = [live.label(n) for n in range(live.num_labels)]
        service.close()
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        index = reopened.overlay.snapshot_processor.index
        assert index.labels is not None
        assert index.labels.num_labels == index.dag.num_nodes
        assert [
            index.labels.label(n) for n in range(index.labels.num_labels)
        ] == live_labels, "restored labels must be bit-identical to the flushed ones"
        assert_reopened_matches_prefix(
            reopened,
            tiny_dataset,
            TINY_THRESHOLD,
            random_queries(tiny_dataset, count=20, seed=11),
            context="labels restored",
        )
        reopened.close()


# ----------------------------------------------------------------------
# zone maps: Bloom filters and run pruning
# ----------------------------------------------------------------------
class TestObjectBloomFilter:
    def test_no_false_negatives(self):
        bloom = ObjectBloomFilter.from_objects(range(0, 400, 3))
        for object_id in range(0, 400, 3):
            assert bloom.may_contain(object_id)

    def test_rejects_most_absent_ids(self):
        bloom = ObjectBloomFilter.from_objects(range(64))
        false_positives = sum(
            1 for object_id in range(10_000, 11_000) if bloom.may_contain(object_id)
        )
        # 10 bits/object with k=4 gives ~1% theoretical FP; leave headroom.
        assert false_positives < 100

    def test_deterministic_across_instances(self):
        first = ObjectBloomFilter.from_objects([5, 9, 1_000_003])
        second = ObjectBloomFilter.from_objects([1_000_003, 9, 5])
        assert first.bits == second.bits

    def test_manifest_roundtrip(self):
        bloom = ObjectBloomFilter.from_objects(range(17))
        restored = ObjectBloomFilter.from_manifest(bloom.to_manifest())
        assert restored.bits == bloom.bits
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes


class TestRunPruning:
    @staticmethod
    def _multi_run_service(dataset, contact_config):
        """An LSM service whose snapshot holds several time-disjoint runs."""
        service = _service(
            dataset,
            contact_config,
            snapshot_mode="lsm",
            merge_policy="delta-size",
            max_delta_contacts=10_000,
            compaction_max_runs=64,  # keep the runs separate for the test
        )
        for batch in DatasetReplaySource(dataset, batch_ticks=20).batches():
            service.ingest(batch)
            service.merge()
        return service

    def test_read_overlapping_skips_disjoint_runs(
        self, tiny_dataset, tiny_contact_config
    ):
        """Regression: a narrow-interval read used to load every run's blocks;
        the zone maps must now skip runs whose whole span misses the query."""
        service = self._multi_run_service(tiny_dataset, tiny_contact_config)
        store = service.overlay.snapshot_store
        assert store.num_runs > 1, "the workload must produce several runs"
        horizon = tiny_dataset.horizon
        everything = store.read_overlapping(horizon)
        skipped_runs_before = store.runs_skipped
        skipped_blocks_before = store.blocks_skipped
        narrow = TimeInterval(horizon.start, horizon.start + 10)
        pruned = store.read_overlapping(narrow)
        assert store.runs_skipped > skipped_runs_before
        assert store.blocks_skipped > skipped_blocks_before
        expected = [
            contact for contact in everything if contact.validity.overlaps(narrow)
        ]
        assert sorted(
            (c.first, c.second, c.validity.start, c.validity.end) for c in pruned
        ) == sorted(
            (c.first, c.second, c.validity.start, c.validity.end) for c in expected
        ), "pruning must never change the contacts a read returns"
        service.close()

    def test_zone_maps_survive_close_reopen(
        self, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(
                max_delta_contacts=10_000, compaction_max_runs=64
            ),
            storage_config=storage_config,
        )
        for batch in DatasetReplaySource(tiny_dataset, batch_ticks=20).batches():
            service.ingest(batch)
            service.merge()
        live_store = service.overlay.snapshot_store
        assert live_store.num_runs > 1
        missing = max(tiny_dataset.object_ids) + 1_000
        assert not live_store.may_contain(missing)
        service.close()
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        store = reopened.overlay.snapshot_store
        assert store.num_runs == live_store.num_runs
        # The restored zone maps answer identically: absent objects stay
        # provably absent, and narrow reads still skip disjoint runs.
        assert not store.may_contain(missing)
        for object_id in tiny_dataset.object_ids:
            assert store.may_contain(object_id) == live_store.may_contain(object_id)
        narrow = TimeInterval(
            tiny_dataset.horizon.start, tiny_dataset.horizon.start + 10
        )
        store.read_overlapping(narrow)
        assert store.runs_skipped > 0
        reopened.close()

    def test_bloom_rejection_answers_without_io(
        self, tiny_dataset, tiny_contact_config
    ):
        service = self._multi_run_service(tiny_dataset, tiny_contact_config)
        missing = max(tiny_dataset.object_ids) + 1_000
        known = tiny_dataset.object_ids[0]
        result = service.query(
            ReachabilityQuery(missing, known, TimeInterval(0, tiny_dataset.horizon.end))
        )
        assert not result.reachable
        assert result.io == 0.0
        assert service.stats.bloom_rejections > 0
        service.close()


# ----------------------------------------------------------------------
# the cross-query partition cache
# ----------------------------------------------------------------------
class TestPartitionCache:
    def test_lru_eviction_order(self):
        cache = PartitionCache(capacity=2)
        cache.insert(1, ())
        cache.insert(2, ())
        assert cache.lookup(1) is not None  # 1 is now the most recent
        cache.insert(3, ())  # evicts 2, the least recent
        assert cache.lookup(2) is None
        assert cache.lookup(1) is not None
        assert cache.lookup(3) is not None
        assert len(cache) == 2

    def test_capacity_zero_disables_caching(self):
        cache = PartitionCache(capacity=0)
        cache.insert(1, ())
        assert cache.lookup(1) is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.hits == 0

    def test_negative_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            PartitionCache(capacity=-1)

    def test_invalidate_clears_and_bumps_generation(self):
        cache = PartitionCache(capacity=4)
        cache.insert(1, ())
        generation = cache.generation
        cache.invalidate()
        assert cache.generation == generation + 1
        assert cache.lookup(1) is None

    def test_service_queries_share_one_cache(self, tiny_dataset, tiny_contact_config):
        service = _service(tiny_dataset, tiny_contact_config)
        service.drain(tiny_dataset)
        service.merge()
        for query in random_queries(tiny_dataset, count=30, seed=7):
            service.query(query)
        stats = service.stats
        assert stats.partition_cache_hits > 0, (
            "a varied workload over one graph must re-touch partitions"
        )
        assert stats.partition_cache_misses > 0
        service.close()

    def test_cache_size_zero_disables_sharing(self, tiny_dataset, tiny_contact_config):
        service = _service(tiny_dataset, tiny_contact_config, partition_cache_size=0)
        service.drain(tiny_dataset)
        service.merge()
        for query in random_queries(tiny_dataset, count=30, seed=7):
            service.query(query)
        assert service.stats.partition_cache_hits == 0
        service.close()

    def test_mutation_invalidates_the_cache(self, tiny_dataset, tiny_contact_config):
        service = _service(tiny_dataset, tiny_contact_config, max_delta_contacts=10_000)
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=20).batches())
        for batch in batches[: len(batches) // 2]:
            service.ingest(batch)
        service.merge()
        generation = service.overlay.partition_cache.generation
        for batch in batches[len(batches) // 2 :]:
            service.ingest(batch)
        service.merge()
        assert service.overlay.partition_cache.generation > generation, (
            "adopting a merge mutates the graph and must invalidate the cache"
        )
        service.close()


# ----------------------------------------------------------------------
# whole-path equivalence (the graph_labels axis)
# ----------------------------------------------------------------------
class TestFastPathEquivalence:
    def test_equivalence_at_every_watermark(
        self, graph_labels, graph_mode, tiny_dataset, tiny_contact_config
    ):
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            graph_labels=graph_labels,
            graph_mode=graph_mode,
        )
        workload = random_queries(tiny_dataset, count=12, seed=29)
        for position, batch in enumerate(
            DatasetReplaySource(tiny_dataset, batch_ticks=8).batches()
        ):
            service.ingest(batch)
            if position % 3 != 1:
                continue
            assert_methods_agree(
                reference_evaluator(
                    prefix_network(
                        tiny_dataset, TINY_THRESHOLD, through=service.watermark
                    )
                ),
                {f"labels-{graph_labels}": service.query},
                workload,
                context=(
                    f"graph_labels={graph_labels}, graph_mode={graph_mode}, "
                    f"watermark={service.watermark}"
                ),
            )
        assert service.num_merges > 1
        service.close()

    def test_mid_merge_queries_stay_exact(
        self, graph_labels, tiny_dataset, tiny_contact_config
    ):
        """Queries issued between a merge's build and adopt phases see the old
        snapshot plus the live delta — with or without labels, answers must
        match the reference over the full ingested prefix throughout."""
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            graph_labels=graph_labels,
            max_delta_contacts=10_000,
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=12).batches())
        for batch in batches[: len(batches) - 2]:
            service.ingest(batch)
        service.merge()
        for batch in batches[len(batches) - 2 :]:
            service.ingest(batch)
        workload = random_queries(tiny_dataset, count=12, seed=41)
        reference = reference_evaluator(
            prefix_network(tiny_dataset, TINY_THRESHOLD, through=service.watermark)
        )
        inputs = service.prepare_merge()
        build = build_merge(inputs, None)
        assert_methods_agree(
            reference,
            {"mid-merge": service.query},
            workload,
            context=f"graph_labels={graph_labels}, between build and adopt",
        )
        service.adopt_merge(build, inputs)
        assert_methods_agree(
            reference,
            {"post-adopt": service.query},
            workload,
            check_earliest=True,
            context=f"graph_labels={graph_labels}, after adopt",
        )
        service.close()

    def test_close_reopen_with_and_without_labels(
        self, graph_labels, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(
                max_delta_contacts=48, graph_labels=graph_labels
            ),
            storage_config=storage_config,
        )
        service.drain(tiny_dataset)
        service.merge()
        service.close()
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        index = reopened.overlay.snapshot_processor.index
        assert (index.labels is not None) == graph_labels
        assert_reopened_matches_prefix(
            reopened,
            tiny_dataset,
            TINY_THRESHOLD,
            random_queries(tiny_dataset, count=20, seed=47),
            context=f"graph_labels={graph_labels}, reopened",
        )
        reopened.close()

    def test_negative_heavy_mix_rejects_and_matches_reference(
        self, tiny_dataset, tiny_contact_config
    ):
        """The point of the fast path: on a negative-heavy mix the pruning
        layers must actually fire — and never flip an answer doing so."""
        service = _service(tiny_dataset, tiny_contact_config)
        service.drain(tiny_dataset)
        service.merge()
        objects = tiny_dataset.object_ids
        horizon = tiny_dataset.horizon
        workload = [
            # Tight one-tick windows: most pairs cannot meet in time.
            ReachabilityQuery(
                objects[i % len(objects)],
                objects[(i * 7 + 3) % len(objects)],
                TimeInterval(start, start + 1),
            )
            for i, start in enumerate(range(horizon.start, horizon.end - 1, 7))
        ] + [
            # Unknown endpoints: the Bloom layer's bread and butter.
            ReachabilityQuery(max(objects) + 50, objects[0], horizon),
            ReachabilityQuery(objects[1], max(objects) + 51, horizon),
        ]
        assert_methods_agree(
            reference_evaluator(
                prefix_network(tiny_dataset, TINY_THRESHOLD, through=horizon.end)
            ),
            {"negative-heavy": service.query},
            workload,
            context="negative-heavy mix",
        )
        stats = service.stats
        assert stats.bloom_rejections > 0
        assert stats.label_rejections + stats.label_frontier_prunes > 0, (
            "the label layer must prune something on a negative-heavy mix"
        )
        service.close()
