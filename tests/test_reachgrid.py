"""Unit and integration tests for ReachGrid: geometry, index, query processing."""

from __future__ import annotations

import random

import pytest

from repro.baselines import evaluate_reachability
from repro.core import (
    ConfigurationError,
    ContactConfig,
    IndexConstructionError,
    IndexNotBuiltError,
    Point,
    QueryError,
    ReachabilityQuery,
    ReachGridConfig,
    TimeInterval,
    UnknownObjectError,
)
from repro.reachgrid import GridGeometry, ReachGridIndex, ReachGridQueryProcessor
from repro.trajectory.mbr import MBR


class TestGridGeometry:
    @pytest.fixture()
    def geometry(self):
        return GridGeometry(
            horizon=TimeInterval(0, 99),
            environment_size=(1000.0, 500.0),
            config=ReachGridConfig(temporal_resolution=20, spatial_resolution=100.0),
        )

    def test_temporal_partitioning(self, geometry):
        assert geometry.num_temporal_intervals == 5
        assert geometry.temporal_index(0) == 0
        assert geometry.temporal_index(19) == 0
        assert geometry.temporal_index(20) == 1
        assert geometry.temporal_interval(0) == TimeInterval(0, 19)
        assert geometry.temporal_interval(4) == TimeInterval(80, 99)

    def test_last_temporal_interval_is_clipped(self):
        geometry = GridGeometry(
            horizon=TimeInterval(0, 49),
            environment_size=(100.0, 100.0),
            config=ReachGridConfig(temporal_resolution=20, spatial_resolution=50.0),
        )
        assert geometry.num_temporal_intervals == 3
        assert geometry.temporal_interval(2) == TimeInterval(40, 49)

    def test_temporal_index_outside_horizon_raises(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.temporal_index(100)

    def test_temporal_interval_out_of_range_raises(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.temporal_interval(5)

    def test_temporal_indices_overlapping(self, geometry):
        assert geometry.temporal_indices_overlapping(TimeInterval(15, 45)) == [0, 1, 2]
        assert geometry.temporal_indices_overlapping(TimeInterval(200, 300)) == []

    def test_spatial_grid_dimensions(self, geometry):
        assert geometry.num_columns == 10
        assert geometry.num_rows == 5
        assert geometry.num_spatial_cells == 50

    def test_spatial_cell_assignment_and_clamping(self, geometry):
        assert geometry.spatial_cell(Point(50, 50)) == (0, 0)
        assert geometry.spatial_cell(Point(950, 450)) == (9, 4)
        # Outside positions are clamped to the border cells.
        assert geometry.spatial_cell(Point(-5, 5000)) == (0, 4)

    def test_cell_key_combines_time_and_space(self, geometry):
        assert geometry.cell_key(25, Point(150, 250)) == (1, 1, 2)

    def test_cell_bounds(self, geometry):
        bounds = geometry.cell_bounds(2, 3)
        assert (bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y) == (
            200.0,
            300.0,
            300.0,
            400.0,
        )

    def test_cells_intersecting_rectangle(self, geometry):
        rect = MBR(90.0, 0.0, 210.0, 90.0)
        keys = set(geometry.cells_intersecting(rect, temporal_index=3))
        assert keys == {(3, 0, 0), (3, 1, 0), (3, 2, 0)}

    def test_rejects_non_positive_environment(self):
        with pytest.raises(ConfigurationError):
            GridGeometry(TimeInterval(0, 9), (0.0, 10.0), ReachGridConfig())


class TestReachGridIndex:
    def test_build_reports_statistics(self, tiny_reachgrid):
        report = tiny_reachgrid.build_report
        assert report is not None
        assert report.num_cells == tiny_reachgrid.num_cells
        assert report.num_records == tiny_reachgrid.dataset.num_objects * tiny_reachgrid.dataset.num_instants
        assert report.build_seconds >= 0
        assert tiny_reachgrid.num_blocks > 0

    def test_double_build_rejected(self, tiny_reachgrid):
        with pytest.raises(IndexConstructionError):
            tiny_reachgrid.build()

    def test_double_build_rejected_on_fresh_index(
        self, tiny_dataset, tiny_contact_config
    ):
        # Same guard on an index built locally (not via the shared fixture), so
        # the error cannot be an artifact of fixture reuse across tests.
        index = ReachGridIndex(
            tiny_dataset,
            ReachGridConfig(temporal_resolution=10, spatial_resolution=100.0),
            tiny_contact_config,
        ).build()
        with pytest.raises(IndexConstructionError):
            index.build()

    def test_unbuilt_index_refuses_queries(self, tiny_dataset, tiny_contact_config):
        index = ReachGridIndex(tiny_dataset, contact_config=tiny_contact_config)
        with pytest.raises(IndexNotBuiltError):
            index.read_cell((0, 0, 0))
        with pytest.raises(QueryError):
            ReachGridQueryProcessor(index)

    def test_cell_records_are_sorted_by_time(self, tiny_reachgrid):
        key = tiny_reachgrid._cells_file.extent_keys()[0]
        records = tiny_reachgrid.read_cell(key)
        times = [record[1] for record in records]
        assert times == sorted(times)

    def test_cells_are_placed_time_major_on_disk(self, tiny_reachgrid):
        keys = tiny_reachgrid._cells_file.extent_keys()
        temporal_indices = [key[0] for key in keys]
        assert temporal_indices == sorted(temporal_indices)

    def test_every_sample_is_in_exactly_one_cell(self, tiny_reachgrid, tiny_dataset):
        total = sum(
            len(tiny_reachgrid.read_cell(key))
            for key in tiny_reachgrid._cells_file.extent_keys()
        )
        assert total == tiny_dataset.num_objects * tiny_dataset.num_instants

    def test_cells_of_object_locates_the_object(self, tiny_reachgrid, tiny_dataset):
        object_id = tiny_dataset.object_ids[0]
        geometry = tiny_reachgrid.geometry
        cells = tiny_reachgrid.cells_of_object(object_id, 0)
        assert cells, "the object must occupy at least one cell in interval 0"
        expected = geometry.cell_key(0, tiny_dataset.trajectory(object_id).position_at(0))
        assert expected[1:] in [tuple(cell) for cell in cells]

    def test_cells_of_unknown_object_is_empty(self, tiny_reachgrid):
        assert tiny_reachgrid.cells_of_object(10_000, 0) == []


class TestReachGridQueryProcessing:
    def test_figure1_ground_truth(self, figure1_dataset):
        config = ReachGridConfig(temporal_resolution=2, spatial_resolution=25.0)
        index = ReachGridIndex(
            figure1_dataset, config, ContactConfig(distance_threshold=10.0)
        ).build()
        processor = ReachGridQueryProcessor(index)
        assert processor.evaluate(
            ReachabilityQuery(1, 4, TimeInterval(0, 1))
        ).reachable
        assert not processor.evaluate(
            ReachabilityQuery(4, 1, TimeInterval(0, 1))
        ).reachable
        assert processor.evaluate(
            ReachabilityQuery(4, 1, TimeInterval(0, 3))
        ).reachable

    def test_matches_reference_on_random_queries(self, tiny_reachgrid, tiny_network):
        processor = ReachGridQueryProcessor(tiny_reachgrid)
        rng = random.Random(13)
        horizon = tiny_network.horizon
        for _ in range(40):
            source, destination = rng.sample(tiny_network.object_ids, 2)
            start = rng.randint(horizon.start, horizon.end - 20)
            end = min(start + rng.randint(5, 60), horizon.end)
            query = ReachabilityQuery(source, destination, TimeInterval(start, end))
            expected = evaluate_reachability(tiny_network, query)
            actual = processor.evaluate(query)
            assert actual.reachable == expected.reachable, query
            if expected.reachable:
                assert actual.earliest_time == expected.earliest_time, query

    def test_query_charges_io(self, tiny_reachgrid, tiny_network):
        processor = ReachGridQueryProcessor(tiny_reachgrid)
        objects = tiny_network.object_ids
        result = processor.evaluate(
            ReachabilityQuery(objects[0], objects[-1], TimeInterval(0, 60))
        )
        assert result.io > 0
        assert result.visited > 0
        assert result.cpu_seconds >= 0

    def test_source_equals_destination_costs_nothing(self, tiny_reachgrid):
        processor = ReachGridQueryProcessor(tiny_reachgrid)
        result = processor.evaluate(ReachabilityQuery(0, 0, TimeInterval(5, 50)))
        assert result.reachable
        assert result.io == 0.0

    def test_unknown_objects_rejected(self, tiny_reachgrid):
        processor = ReachGridQueryProcessor(tiny_reachgrid)
        with pytest.raises(UnknownObjectError):
            processor.evaluate(ReachabilityQuery(9_999, 0, TimeInterval(0, 10)))
        with pytest.raises(UnknownObjectError):
            processor.evaluate(ReachabilityQuery(0, 9_999, TimeInterval(0, 10)))

    def test_query_outside_horizon_rejected(self, tiny_reachgrid):
        processor = ReachGridQueryProcessor(tiny_reachgrid)
        with pytest.raises(QueryError):
            processor.evaluate(ReachabilityQuery(0, 1, TimeInterval(5_000, 5_100)))

    def test_early_termination_reads_fewer_cells_for_adjacent_objects(
        self, tiny_reachgrid, tiny_network
    ):
        """A query whose destination is met almost immediately should touch far
        fewer cells than one that needs the whole interval."""
        processor = ReachGridQueryProcessor(tiny_reachgrid)
        contact = tiny_network.contacts[0]
        easy = processor.evaluate(
            ReachabilityQuery(
                contact.first,
                contact.second,
                TimeInterval(contact.validity.start, tiny_network.horizon.end),
            )
        )
        assert easy.reachable
        # An unreachable (or late-reachable) pair over the same interval.
        hard_io = max(
            processor.evaluate(
                ReachabilityQuery(contact.first, other, TimeInterval(contact.validity.start, tiny_network.horizon.end))
            ).io
            for other in tiny_network.object_ids[:10]
            if other not in contact.objects
        )
        assert easy.io <= hard_io
