"""Cross-method integration tests.

Every disk-resident index and every baseline must return exactly the same
reachability verdict as the in-memory reference evaluator, on both movement
families (random-waypoint individuals and road-network vehicles).  This is the
strongest end-to-end guarantee of the reproduction: whatever their cost
profiles, ReachGrid, ReachGraph (all traversal strategies), SPJ, and GRAIL are
answering the same question correctly.
"""

from __future__ import annotations

import random

import pytest

from equivalence import assert_methods_agree, reference_evaluator
from repro.baselines import GrailIndex, SpjBaseline
from repro.core import ContactConfig, ReachabilityQuery, ReachGraphConfig, ReachGridConfig, TimeInterval
from repro.reachgraph import ReachGraphIndex, ReachGraphQueryProcessor, reduce_contact_network
from repro.reachgrid import ReachGridIndex, ReachGridQueryProcessor
from repro.trajectory import TrajectoryStore


def make_queries(network, count, seed):
    rng = random.Random(seed)
    horizon = network.horizon
    queries = []
    for _ in range(count):
        source, destination = rng.sample(network.object_ids, 2)
        start = rng.randint(horizon.start, max(horizon.start, horizon.end - 10))
        end = min(start + rng.randint(5, horizon.length), horizon.end)
        queries.append(ReachabilityQuery(source, destination, TimeInterval(start, end)))
    return queries


@pytest.fixture(scope="module")
def vn_methods(vn_tiny_dataset, vn_tiny_network):
    """Every query-evaluation method built over the road-network dataset."""
    contact_config = ContactConfig(distance_threshold=300.0)
    grid = ReachGridIndex(
        vn_tiny_dataset,
        ReachGridConfig(temporal_resolution=10, spatial_resolution=1500.0),
        contact_config,
    ).build()
    graph = ReachGraphIndex(
        vn_tiny_dataset,
        ReachGraphConfig(resolutions=(2, 4, 8), partition_depth=8),
        contact_config,
        contact_network=vn_tiny_network,
    ).build()
    graph_processor = ReachGraphQueryProcessor(graph)
    store = TrajectoryStore(vn_tiny_dataset).build()
    spj = SpjBaseline(store, 300.0)
    dag, _ = reduce_contact_network(vn_tiny_network)
    grail = GrailIndex(dag).build()
    return {
        "reachgrid": ReachGridQueryProcessor(grid).evaluate,
        "bm-bfs": lambda q: graph_processor.evaluate(q, strategy="bm-bfs"),
        "b-bfs": lambda q: graph_processor.evaluate(q, strategy="b-bfs"),
        "e-dfs": lambda q: graph_processor.evaluate(q, strategy="e-dfs"),
        "spj": spj.evaluate,
        "grail-memory": grail.evaluate_memory,
        "grail-disk": grail.evaluate_disk,
    }


class TestAllMethodsAgreeOnVehicleData:
    def test_verdicts_match_reference(self, vn_methods, vn_tiny_network):
        assert_methods_agree(
            reference_evaluator(vn_tiny_network),
            vn_methods,
            make_queries(vn_tiny_network, 25, seed=101),
            context="vehicle data",
        )

    def test_reachability_is_monotone_in_interval(self, vn_methods, vn_tiny_network):
        """Extending the query interval can only turn 'not reachable' into
        'reachable', never the other way (for every method)."""
        horizon = vn_tiny_network.horizon
        rng = random.Random(7)
        for _ in range(10):
            source, destination = rng.sample(vn_tiny_network.object_ids, 2)
            short = ReachabilityQuery(
                source, destination, TimeInterval(horizon.start, horizon.start + 30)
            )
            longer = ReachabilityQuery(
                source, destination, TimeInterval(horizon.start, horizon.end)
            )
            for name, evaluate in vn_methods.items():
                if evaluate(short).reachable:
                    assert evaluate(longer).reachable, name


class TestAllMethodsAgreeOnIndividualData:
    def test_verdicts_match_reference(
        self, tiny_reachgrid, tiny_reachgraph, tiny_store, tiny_network
    ):
        grid_processor = ReachGridQueryProcessor(tiny_reachgrid)
        graph_processor = ReachGraphQueryProcessor(tiny_reachgraph)
        spj = SpjBaseline(tiny_store, tiny_network.distance_threshold)
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {
                "reachgrid": grid_processor.evaluate,
                "bm-bfs": lambda q: graph_processor.evaluate(q, strategy="bm-bfs"),
                "e-dfs": lambda q: graph_processor.evaluate(q, strategy="e-dfs"),
                "spj": spj.evaluate,
            },
            make_queries(tiny_network, 25, seed=202),
            context="individual data",
        )

    def test_earliest_times_agree_between_grid_and_spj(
        self, tiny_reachgrid, tiny_store, tiny_network
    ):
        """Both methods compute the earliest reach time exactly, so on
        reachable queries they must agree with the reference evaluator."""
        grid_processor = ReachGridQueryProcessor(tiny_reachgrid)
        spj = SpjBaseline(tiny_store, tiny_network.distance_threshold)
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {"reachgrid": grid_processor.evaluate, "spj": spj.evaluate},
            make_queries(tiny_network, 20, seed=303),
            check_earliest=True,
            require_earliest=True,
            context="earliest times, individual data",
        )
