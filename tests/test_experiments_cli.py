"""Tests for the experiment harness, drivers, reporting, and the CLI."""

from __future__ import annotations

import pytest

from repro.core import QueryResult
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    aggregate_results,
    format_result,
    format_results,
    render_table,
    run_workload,
)
from repro.experiments.figures import (
    clear_cache,
    figure13_traversal_strategies,
    figure10_contact_network_size,
    reachgrid_vs_spj,
    reduction_ratio,
    table1_complexity,
    table4_average_degree,
)
from repro.experiments.report import format_results_json, result_to_dict
from repro.cli import _QUICK_OVERRIDES, build_parser, main


class TestHarness:
    def test_aggregate_results_means(self):
        results = [
            QueryResult(reachable=True, io=10.0, random_ios=8, cpu_seconds=0.002, visited=4),
            QueryResult(reachable=False, io=20.0, random_ios=16, cpu_seconds=0.004, visited=8),
        ]
        aggregate = aggregate_results("m", results)
        assert aggregate.mean_io == pytest.approx(15.0)
        assert aggregate.mean_random_ios == pytest.approx(12.0)
        assert aggregate.reachable_fraction == pytest.approx(0.5)
        assert aggregate.as_row()["method"] == "m"

    def test_aggregate_of_empty_results(self):
        aggregate = aggregate_results("m", [])
        assert aggregate.num_queries == 0
        assert aggregate.mean_io == 0.0

    def test_run_workload_with_limit(self):
        calls = []

        def evaluate(query):
            calls.append(query)
            return QueryResult(reachable=True, io=1.0)

        aggregate = run_workload(evaluate, range(10), method="count", limit=4)
        assert aggregate.num_queries == 4
        assert len(calls) == 4

    def test_experiment_result_columns(self):
        result = ExperimentResult("x", "desc")
        result.add_row(a=1, b=2)
        result.add_row(a=3, c=4)
        assert result.column_names() == ["a", "b", "c"]
        assert result.column("a") == [1, 3]
        assert result.column("c") == [4]


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_result_includes_notes(self):
        result = ExperimentResult("exp", "a description")
        result.add_row(x=1)
        result.add_note("something to remember")
        text = format_result(result)
        assert "exp" in text and "a description" in text
        assert "something to remember" in text

    def test_format_result_with_no_rows(self):
        text = format_result(ExperimentResult("empty", "nothing"))
        assert "(no rows)" in text

    def test_format_results_joins_sections(self):
        a = ExperimentResult("a", "first")
        b = ExperimentResult("b", "second")
        text = format_results([a, b])
        assert "== a:" in text and "== b:" in text


class TestExperimentDrivers:
    """Quick sanity runs of representative drivers on the tiny datasets."""

    @classmethod
    def teardown_class(cls):
        clear_cache()

    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "reduction",
            "table4",
            "figure12",
            "figure13",
            "spj",
            "figure14",
            "figure15",
            "table5",
            "stream",
            "stream-sharded",
            "stream-async",
            "stream-disk",
            "stream-graph",
            "stream-space",
            "stream-parallel",
            "stream-query",
        }

    def test_table1_is_static(self):
        result = table1_complexity()
        assert len(result.rows) == 3
        approaches = result.column("approach")
        assert approaches == ["GRAIL", "ReachGraph", "ReachGrid"]

    def test_reduction_ratio_on_tiny_datasets(self):
        result = reduction_ratio(dataset_names=("rwp-tiny",))
        row = result.rows[0]
        assert row["dn_vertices"] < row["ten_vertices"]
        assert 0 < row["vertex_reduction_pct"] < 100

    def test_figure10_sizes_grow_with_horizon(self):
        result = figure10_contact_network_size(
            dataset_names=("rwp-tiny",), horizon_fractions=(0.5, 1.0)
        )
        vertices = result.column("dn_vertices")
        assert vertices[0] <= vertices[1]

    def test_table4_degree_grows_with_resolution(self):
        result = table4_average_degree(dataset_names=("rwp-tiny",), resolutions=(2, 8))
        degrees = {row["resolution"]: row["average_degree"] for row in result.rows}
        assert degrees[8] >= degrees[2]

    def test_figure13_strategy_rows(self):
        result = figure13_traversal_strategies(
            dataset_names=("rwp-tiny",), num_queries=5
        )
        strategies = result.column("strategy")
        assert strategies == ["bm-bfs", "b-bfs", "e-dfs"]
        by_strategy = {row["strategy"]: row["mean_visited"] for row in result.rows}
        assert by_strategy["bm-bfs"] <= by_strategy["e-dfs"]

    def test_spj_driver_reports_improvement_column(self):
        result = reachgrid_vs_spj(dataset_names=("rwp-tiny",), num_queries=3)
        assert "improvement_pct" in result.column_names()


class TestReportingJson:
    def test_result_to_dict_shape(self):
        result = ExperimentResult("exp", "a description")
        result.add_row(x=1, y="a")
        result.add_note("remember")
        payload = result_to_dict(result)
        assert payload["experiment"] == "exp"
        assert payload["columns"] == ["x", "y"]
        assert payload["rows"] == [{"x": 1, "y": "a"}]
        assert payload["notes"] == ["remember"]

    def test_format_results_json_is_parseable(self):
        import json

        result = ExperimentResult("exp", "desc")
        result.add_row(value=3.5)
        document = json.loads(format_results_json([result]))
        assert document["results"][0]["rows"] == [{"value": 3.5}]


class TestCli:
    def test_parser_accepts_known_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["figure13", "--quick", "--output", "report.txt"])
        assert args.experiment == "figure13"
        assert args.quick is True
        assert args.output == "report.txt"
        assert args.json is None
        assert args.storage_backend is None

    def test_parser_validates_storage_backend(self):
        parser = build_parser()
        assert (
            parser.parse_args(["stream", "--storage-backend", "file"]).storage_backend
            == "file"
        )
        with pytest.raises(SystemExit):
            parser.parse_args(["stream", "--storage-backend", "tape"])

    def test_quick_overrides_reference_known_experiments(self):
        # Guards against drift when experiments are added or renamed: every
        # --quick override must target a registered experiment.
        assert set(_QUICK_OVERRIDES) <= set(EXPERIMENTS)

    def test_quick_overrides_use_valid_driver_keywords(self):
        import inspect

        for name, overrides in _QUICK_OVERRIDES.items():
            driver = EXPERIMENTS[name]
            parameters = inspect.signature(driver).parameters
            if any(
                parameter.kind is inspect.Parameter.VAR_KEYWORD
                for parameter in parameters.values()
            ):
                continue  # driver forwards **kwargs; nothing to check here
            unknown = set(overrides) - set(parameters)
            assert not unknown, f"{name}: unknown override keys {unknown}"

    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_unknown_experiment_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])

    def test_running_table1_prints_table(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "ReachGraph" in output and "ReachGrid" in output

    def test_output_file_is_written(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table1", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "GRAIL" in target.read_text()

    def test_json_file_is_written(self, tmp_path, capsys):
        import json

        target = tmp_path / "results.json"
        assert main(["table1", "--json", str(target)]) == 0
        capsys.readouterr()
        document = json.loads(target.read_text())
        assert document["results"][0]["experiment"] == "table1"
        assert len(document["results"][0]["rows"]) == 3

    def test_json_dash_prints_to_stdout(self, capsys):
        import json

        assert main(["table1", "--json", "-"]) == 0
        output = capsys.readouterr().out
        # The text report comes first, then the JSON document.
        document = json.loads(output[output.index("{") :])
        assert document["results"][0]["experiment"] == "table1"
