"""Tests for the experiment harness, drivers, reporting, and the CLI."""

from __future__ import annotations

import pytest

from repro.core import QueryResult
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    aggregate_results,
    format_result,
    format_results,
    render_table,
    run_workload,
)
from repro.experiments.figures import (
    clear_cache,
    figure13_traversal_strategies,
    figure10_contact_network_size,
    reachgrid_vs_spj,
    reduction_ratio,
    table1_complexity,
    table4_average_degree,
)
from repro.cli import build_parser, main


class TestHarness:
    def test_aggregate_results_means(self):
        results = [
            QueryResult(reachable=True, io=10.0, random_ios=8, cpu_seconds=0.002, visited=4),
            QueryResult(reachable=False, io=20.0, random_ios=16, cpu_seconds=0.004, visited=8),
        ]
        aggregate = aggregate_results("m", results)
        assert aggregate.mean_io == pytest.approx(15.0)
        assert aggregate.mean_random_ios == pytest.approx(12.0)
        assert aggregate.reachable_fraction == pytest.approx(0.5)
        assert aggregate.as_row()["method"] == "m"

    def test_aggregate_of_empty_results(self):
        aggregate = aggregate_results("m", [])
        assert aggregate.num_queries == 0
        assert aggregate.mean_io == 0.0

    def test_run_workload_with_limit(self):
        calls = []

        def evaluate(query):
            calls.append(query)
            return QueryResult(reachable=True, io=1.0)

        aggregate = run_workload(evaluate, range(10), method="count", limit=4)
        assert aggregate.num_queries == 4
        assert len(calls) == 4

    def test_experiment_result_columns(self):
        result = ExperimentResult("x", "desc")
        result.add_row(a=1, b=2)
        result.add_row(a=3, c=4)
        assert result.column_names() == ["a", "b", "c"]
        assert result.column("a") == [1, 3]
        assert result.column("c") == [4]


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_result_includes_notes(self):
        result = ExperimentResult("exp", "a description")
        result.add_row(x=1)
        result.add_note("something to remember")
        text = format_result(result)
        assert "exp" in text and "a description" in text
        assert "something to remember" in text

    def test_format_result_with_no_rows(self):
        text = format_result(ExperimentResult("empty", "nothing"))
        assert "(no rows)" in text

    def test_format_results_joins_sections(self):
        a = ExperimentResult("a", "first")
        b = ExperimentResult("b", "second")
        text = format_results([a, b])
        assert "== a:" in text and "== b:" in text


class TestExperimentDrivers:
    """Quick sanity runs of representative drivers on the tiny datasets."""

    @classmethod
    def teardown_class(cls):
        clear_cache()

    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "reduction",
            "table4",
            "figure12",
            "figure13",
            "spj",
            "figure14",
            "figure15",
            "table5",
        }

    def test_table1_is_static(self):
        result = table1_complexity()
        assert len(result.rows) == 3
        approaches = result.column("approach")
        assert approaches == ["GRAIL", "ReachGraph", "ReachGrid"]

    def test_reduction_ratio_on_tiny_datasets(self):
        result = reduction_ratio(dataset_names=("rwp-tiny",))
        row = result.rows[0]
        assert row["dn_vertices"] < row["ten_vertices"]
        assert 0 < row["vertex_reduction_pct"] < 100

    def test_figure10_sizes_grow_with_horizon(self):
        result = figure10_contact_network_size(
            dataset_names=("rwp-tiny",), horizon_fractions=(0.5, 1.0)
        )
        vertices = result.column("dn_vertices")
        assert vertices[0] <= vertices[1]

    def test_table4_degree_grows_with_resolution(self):
        result = table4_average_degree(dataset_names=("rwp-tiny",), resolutions=(2, 8))
        degrees = {row["resolution"]: row["average_degree"] for row in result.rows}
        assert degrees[8] >= degrees[2]

    def test_figure13_strategy_rows(self):
        result = figure13_traversal_strategies(
            dataset_names=("rwp-tiny",), num_queries=5
        )
        strategies = result.column("strategy")
        assert strategies == ["bm-bfs", "b-bfs", "e-dfs"]
        by_strategy = {row["strategy"]: row["mean_visited"] for row in result.rows}
        assert by_strategy["bm-bfs"] <= by_strategy["e-dfs"]

    def test_spj_driver_reports_improvement_column(self):
        result = reachgrid_vs_spj(dataset_names=("rwp-tiny",), num_queries=3)
        assert "improvement_pct" in result.column_names()


class TestCli:
    def test_parser_accepts_known_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["figure13", "--quick", "--output", "report.txt"])
        assert args.experiment == "figure13"
        assert args.quick is True
        assert args.output == "report.txt"

    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_unknown_experiment_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])

    def test_running_table1_prints_table(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "ReachGraph" in output and "ReachGrid" in output

    def test_output_file_is_written(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table1", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "GRAIL" in target.read_text()
