"""Tests for the ReachabilityEngine facade and the workload generators."""

from __future__ import annotations

import pytest

from repro import ReachabilityEngine, ReachabilityQuery, TimeInterval
from repro.core import DatasetError, IndexNotBuiltError, QueryError
from repro.workloads import (
    DATASETS,
    dataset_names,
    fixed_length_queries,
    make_dataset,
    random_queries,
)


@pytest.fixture(scope="module")
def engine():
    built = ReachabilityEngine.from_dataset_name("rwp-tiny")
    built.build_reachgrid()
    built.build_reachgraph()
    built.build_trajectory_store()
    built.build_grail()
    return built


class TestReachabilityEngine:
    def test_from_dataset_name_uses_spec_threshold(self, engine):
        assert engine.contact_config.distance_threshold == DATASETS["rwp-tiny"].contact_threshold

    def test_contact_network_is_cached(self, engine):
        assert engine.contact_network is engine.contact_network

    def test_every_method_agrees_with_reference(self, engine):
        methods = (
            "reachgrid",
            "reachgraph",
            "reachgraph-b-bfs",
            "reachgraph-e-dfs",
            "spj",
            "grail-memory",
            "grail-disk",
        )
        horizon = engine.dataset.horizon
        objects = engine.dataset.object_ids
        for index in range(8):
            query = ReachabilityQuery(
                objects[index],
                objects[-(index + 1)],
                TimeInterval(horizon.start, horizon.start + 80),
            )
            expected = engine.evaluate(query, "reference").reachable
            for method in methods:
                assert engine.evaluate(query, method).reachable == expected, method

    def test_compare_returns_one_result_per_method(self, engine):
        query = ReachabilityQuery(0, 1, TimeInterval(0, 60))
        results = engine.compare(query, methods=("reachgrid", "reachgraph"))
        assert set(results) == {"reachgrid", "reachgraph"}

    def test_unknown_method_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.evaluate(ReachabilityQuery(0, 1, TimeInterval(0, 10)), "magic")

    def test_unbuilt_indexes_raise(self):
        fresh = ReachabilityEngine.from_dataset_name("rwp-tiny")
        query = ReachabilityQuery(0, 1, TimeInterval(0, 10))
        with pytest.raises(IndexNotBuiltError):
            fresh.evaluate(query, "reachgrid")
        with pytest.raises(IndexNotBuiltError):
            fresh.evaluate(query, "reachgraph")
        with pytest.raises(IndexNotBuiltError):
            fresh.evaluate(query, "spj")
        with pytest.raises(IndexNotBuiltError):
            fresh.reachgrid
        with pytest.raises(IndexNotBuiltError):
            fresh.reachgraph
        with pytest.raises(IndexNotBuiltError):
            fresh.grail


class TestDatasetSpecs:
    def test_all_families_are_present(self):
        families = {spec.family for spec in DATASETS.values()}
        assert families == {"rwp", "vn", "vnr"}

    def test_dataset_names_match_registry(self):
        assert set(dataset_names()) == set(DATASETS)

    def test_make_dataset_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            make_dataset("no-such-dataset")

    def test_make_dataset_produces_spec_dimensions(self):
        spec = DATASETS["rwp-tiny"]
        dataset = make_dataset("rwp-tiny")
        assert dataset.num_objects == spec.num_objects
        assert dataset.num_instants == spec.horizon
        assert dataset.name == "rwp-tiny"

    def test_contact_thresholds_match_paper(self):
        assert DATASETS["rwp-small"].contact_threshold == 25.0
        assert DATASETS["vn-small"].contact_threshold == 300.0

    def test_specs_are_deterministic(self):
        first = make_dataset("vn-tiny")
        second = make_dataset("vn-tiny")
        assert first.trajectory(3).position_at(50) == second.trajectory(3).position_at(50)


class TestQueryWorkloads:
    def test_random_queries_respect_length_range(self, tiny_dataset):
        workload = random_queries(tiny_dataset, count=50, length_range=(10, 30), seed=1)
        assert len(workload) == 50
        for query in workload:
            assert 10 <= query.interval.length <= 30
            assert query.source != query.destination
            assert tiny_dataset.horizon.contains_interval(query.interval)

    def test_random_queries_clamp_length_to_horizon(self, tiny_dataset):
        workload = random_queries(
            tiny_dataset, count=10, length_range=(10_000, 20_000), seed=2
        )
        for query in workload:
            assert query.interval.length == tiny_dataset.num_instants

    def test_random_queries_are_deterministic_per_seed(self, tiny_dataset):
        first = random_queries(tiny_dataset, count=10, seed=5)
        second = random_queries(tiny_dataset, count=10, seed=5)
        assert first.queries == second.queries
        different = random_queries(tiny_dataset, count=10, seed=6)
        assert first.queries != different.queries

    def test_fixed_length_queries(self, tiny_dataset):
        workload = fixed_length_queries(tiny_dataset, length=40, count=12, seed=3)
        assert len(workload) == 12
        assert all(query.interval.length == 40 for query in workload)

    def test_invalid_parameters_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            random_queries(tiny_dataset, count=0)
        with pytest.raises(DatasetError):
            random_queries(tiny_dataset, count=5, length_range=(0, 10))
        with pytest.raises(DatasetError):
            random_queries(tiny_dataset, count=5, length_range=(10, 5))
