"""Shared fixtures for the test suite.

Two kinds of data are used throughout:

* ``figure1_*`` — a hand-built four-object scenario that realizes exactly the
  contact network of Figure 1 of the paper (contacts c1..c4 with the validity
  intervals given in Section 3.1), so tests can assert against ground truth
  stated in the paper itself.
* ``tiny_*`` / ``vn_tiny_*`` — small generated datasets shared (session scope)
  by the index/baseline tests to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.contacts import build_contact_network
from repro.core import ContactConfig, Point, ReachGraphConfig, ReachGridConfig
from repro.generators import RandomWaypointGenerator, RoadNetworkGenerator
from repro.reachgraph import ReachGraphIndex, reduce_contact_network
from repro.reachgrid import ReachGridIndex
from repro.trajectory import Trajectory, TrajectoryDataset, TrajectoryStore


def pytest_addoption(parser):
    """Register --shards: restrict the sharding suite to one shard count.

    CI runs ``pytest tests/test_sharding.py --shards N`` per matrix entry.
    The flag exists only when pytest targets a path inside ``tests/`` (this
    conftest must be *initial* to register options); a full-repo run simply
    exercises every canned shard count.
    """
    parser.addoption(
        "--shards",
        type=int,
        default=None,
        help="run sharding tests with this shard count only (default: all)",
    )
    parser.addoption(
        "--graph-mode",
        choices=("incremental", "rebuild"),
        default=None,
        help=(
            "run graph-mode-parametrized streaming tests with this ReachGraph "
            "maintenance mode only (default: both)"
        ),
    )
    parser.addoption(
        "--labels",
        choices=("on", "off"),
        default=None,
        help=(
            "run label-parametrized query-fast-path tests with the interval "
            "label index enabled or disabled only (default: both)"
        ),
    )


@pytest.fixture(autouse=True)
def _disarm_fault_points():
    """Leave no fault point armed across tests.

    The crash-injection registry (:mod:`repro.testing.faults`) is process
    global; a test that arms a point and then fails before the probe fires
    must not leak a pending ``SimulatedCrash`` into an unrelated test.
    """
    from repro.testing import faults

    faults.clear()
    yield
    faults.clear()


def pytest_generate_tests(metafunc):
    """Parametrize every ``graph_mode`` test, honouring the --graph-mode flag.

    Lives here (not in one test module) so the flag pins the mode uniformly
    across the streaming, sharding, and async suites — CI's graph-modes
    matrix relies on that.
    """
    if "graph_mode" in metafunc.fixturenames:
        chosen = metafunc.config.getoption("graph_mode", default=None)
        modes = (chosen,) if chosen else ("incremental", "rebuild")
        metafunc.parametrize("graph_mode", modes)
    if "graph_labels" in metafunc.fixturenames:
        chosen = metafunc.config.getoption("labels", default=None)
        label_modes = (chosen == "on",) if chosen else (True, False)
        metafunc.parametrize("graph_labels", label_modes)

# ----------------------------------------------------------------------
# Figure 1 scenario (ground truth from the paper)
# ----------------------------------------------------------------------
FIGURE1_THRESHOLD = 10.0


def _figure1_positions():
    """Positions of o1..o4 at ticks 0..3 realizing the paper's Figure 1.

    Resulting contacts (dT = 10):
      c1 = {o1, o2} valid [0, 0]
      c2 = {o2, o4} valid [1, 1]
      c3 = {o3, o4} valid [1, 2]
      c4 = {o1, o2} valid [2, 3]
    """
    return {
        1: [Point(10, 10), Point(10, 40), Point(20, 20), Point(30, 30)],
        2: [Point(15, 10), Point(60, 60), Point(26, 20), Point(36, 30)],
        3: [Point(50, 50), Point(76, 60), Point(80, 20), Point(10, 80)],
        4: [Point(80, 80), Point(68, 60), Point(86, 20), Point(40, 80)],
    }


@pytest.fixture(scope="session")
def figure1_dataset() -> TrajectoryDataset:
    trajectories = [
        Trajectory(object_id, positions)
        for object_id, positions in _figure1_positions().items()
    ]
    return TrajectoryDataset(
        trajectories, environment_size=(100.0, 100.0), name="figure1"
    )


@pytest.fixture(scope="session")
def figure1_network(figure1_dataset):
    return build_contact_network(figure1_dataset, threshold=FIGURE1_THRESHOLD)


@pytest.fixture(scope="session")
def figure1_dag(figure1_network):
    dag, _ = reduce_contact_network(figure1_network)
    return dag


# ----------------------------------------------------------------------
# Small generated datasets (shared across index tests)
# ----------------------------------------------------------------------
TINY_THRESHOLD = 30.0


@pytest.fixture(scope="session")
def tiny_dataset() -> TrajectoryDataset:
    return RandomWaypointGenerator(
        num_objects=36, horizon=120, environment_size=(700.0, 700.0), seed=7
    ).generate()


@pytest.fixture(scope="session")
def tiny_network(tiny_dataset):
    return build_contact_network(tiny_dataset, threshold=TINY_THRESHOLD)


@pytest.fixture(scope="session")
def tiny_contact_config():
    return ContactConfig(distance_threshold=TINY_THRESHOLD)


@pytest.fixture(scope="session")
def tiny_reachgrid(tiny_dataset, tiny_contact_config):
    config = ReachGridConfig(temporal_resolution=10, spatial_resolution=100.0)
    return ReachGridIndex(tiny_dataset, config, tiny_contact_config).build()


@pytest.fixture(scope="session")
def tiny_reachgraph(tiny_dataset, tiny_network, tiny_contact_config):
    return ReachGraphIndex(
        tiny_dataset,
        ReachGraphConfig(resolutions=(2, 4, 8, 16), partition_depth=8),
        tiny_contact_config,
        contact_network=tiny_network,
    ).build()


@pytest.fixture(scope="session")
def tiny_store(tiny_dataset):
    return TrajectoryStore(tiny_dataset).build()


@pytest.fixture(scope="session")
def vn_tiny_dataset() -> TrajectoryDataset:
    return RoadNetworkGenerator(
        num_objects=20, horizon=100, environment_size=(6_000.0, 6_000.0), seed=9
    ).generate()


@pytest.fixture(scope="session")
def vn_tiny_network(vn_tiny_dataset):
    return build_contact_network(vn_tiny_dataset, threshold=300.0)
