"""Tests for true multi-core execution: merge executors and query workers.

The correctness bar mirrors the rest of the streaming matrix: *where* the
pure build phase of a merge runs (calling thread, thread pool, worker
process) and *who* answers a query (the owning thread or a process-pool
worker over a reopened snapshot) must never change an answer.  Every
equivalence test here compares against the batch ``reference`` evaluator
over the exact committed prefix, the same way ``test_streaming.py`` and
``test_sharding.py`` do for their axes.
"""

from __future__ import annotations

import pytest

from equivalence import (
    EQUIVALENCE_BACKENDS,
    EQUIVALENCE_MERGE_EXECUTORS,
    assert_methods_agree,
    assert_reopened_matches_prefix,
    backend_storage_config,
    prefix_network,
    reference_evaluator,
)
from repro.core import (
    ConfigurationError,
    StreamingConfig,
    StreamingError,
)
from repro.core.engine import ReachabilityEngine
from repro.streaming import (
    DatasetReplaySource,
    InlineMergeExecutor,
    ParallelQueryService,
    PoolMergeExecutor,
    ShardedReachabilityService,
    StreamingReachabilityService,
    make_merge_executor,
)
from repro.testing import faults
from repro.testing.faults import SimulatedCrash
from repro.workloads.queries import random_queries

# The contact threshold of the shared tiny_* fixtures (see test_streaming.py
# for why it is repeated here instead of imported from conftest).
TINY_THRESHOLD = 30.0

assert EQUIVALENCE_MERGE_EXECUTORS == ("inline", "thread", "process")

#: Small delta bound so replays force several merges through the executor —
#: small enough that even a 3-way sharded split of the tiny dataset trips
#: every shard's policy more than once.
MERGY = dict(max_delta_contacts=20, batch_ticks=8)


def _service(dataset, contact_config, storage_config=None, **overrides):
    config = StreamingConfig(**{**MERGY, **overrides})
    cls = (
        ShardedReachabilityService
        if config.shards > 1
        else StreamingReachabilityService
    )
    return cls.for_dataset(
        dataset,
        contact_config=contact_config,
        streaming_config=config,
        storage_config=storage_config,
    )


# ----------------------------------------------------------------------
# construction and config wiring
# ----------------------------------------------------------------------
class TestExecutorConstruction:
    def test_make_merge_executor_dispatch(self):
        assert isinstance(make_merge_executor("inline"), InlineMergeExecutor)
        for kind in ("thread", "process"):
            executor = make_merge_executor(kind, workers=3)
            assert isinstance(executor, PoolMergeExecutor)
            assert executor.kind == kind and executor.workers == 3
            executor.close()

    def test_make_merge_executor_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="merge executor"):
            make_merge_executor("fibers")

    def test_pool_executor_validates_arguments(self):
        with pytest.raises(ConfigurationError):
            PoolMergeExecutor("inline", workers=2)
        with pytest.raises(ConfigurationError):
            PoolMergeExecutor("thread", workers=0)

    def test_streaming_config_validates_executor(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(merge_executor="fibers")
        with pytest.raises(ConfigurationError):
            StreamingConfig(merge_workers=0)
        derived = StreamingConfig().with_merge_executor("process", 4)
        assert derived.merge_executor == "process" and derived.merge_workers == 4
        kept = StreamingConfig(merge_workers=3).with_merge_executor("thread")
        assert kept.merge_workers == 3, "workers survive when not overridden"

    def test_engine_streaming_wires_executor(self, tiny_dataset):
        engine = ReachabilityEngine(tiny_dataset)
        service = engine.streaming(merge_executor="thread", merge_workers=1)
        try:
            assert service.merge_executor.kind == "thread"
            assert service.merge_executor.workers == 1
        finally:
            service.close()

    def test_closed_pool_executor_rejects_submits(self):
        executor = make_merge_executor("thread", workers=1)
        executor.close()
        with pytest.raises(StreamingError):
            executor._ensure_pool()
        executor.close()  # idempotent


# ----------------------------------------------------------------------
# the merge-executor axis of the equivalence matrix
# ----------------------------------------------------------------------
class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", EQUIVALENCE_MERGE_EXECUTORS)
    @pytest.mark.parametrize("shards", (1, 3))
    def test_equivalence_at_every_watermark(
        self, executor, shards, tiny_dataset, tiny_contact_config
    ):
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            shards=shards,
            merge_executor=executor,
            merge_workers=2,
        )
        workload = random_queries(tiny_dataset, count=10, seed=3)
        try:
            source = DatasetReplaySource(tiny_dataset, batch_ticks=8)
            for position, batch in enumerate(source.batches()):
                service.ingest(batch)
                if position % 5 != 4:
                    continue
                watermark = service.watermark
                assert_methods_agree(
                    reference_evaluator(
                        prefix_network(tiny_dataset, TINY_THRESHOLD, through=watermark)
                    ),
                    {"streaming": service.query},
                    workload,
                    context=f"executor={executor}, shards={shards}, wm={watermark}",
                )
            assert service.num_merges > 0, "the delta bound should force merges"
            service.merge()  # the executor also serves the forced tail merge
            assert_methods_agree(
                reference_evaluator(prefix_network(tiny_dataset, TINY_THRESHOLD)),
                {"streaming": service.query},
                workload,
                check_earliest=True,
                context=f"executor={executor}, shards={shards}, post-merge",
            )
        finally:
            service.close()

    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_equivalence_in_rebuild_snapshot_mode(
        self, executor, tiny_dataset, tiny_contact_config
    ):
        # The process executor cannot ship rebuild-mode builds across the
        # process boundary (they carry a live StorageSystem) and must fall
        # back to its sidecar thread — same answers either way.
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            snapshot_mode="rebuild",
            merge_executor=executor,
            merge_workers=2,
        )
        try:
            service.drain(tiny_dataset)
            assert service.num_merges > 0
            if executor == "process":
                fallbacks = service.merge_executor.counters.get(
                    "merge.rebuild_thread_fallback"
                )
                assert fallbacks == service.merge_executor.counters.get(
                    "merge.builds"
                ), "every rebuild-mode build must take the thread fallback"
            assert_methods_agree(
                reference_evaluator(prefix_network(tiny_dataset, TINY_THRESHOLD)),
                {"streaming": service.query},
                random_queries(tiny_dataset, count=10, seed=5),
                check_earliest=True,
                context=f"executor={executor}, snapshot_mode=rebuild",
            )
        finally:
            service.close()

    def test_process_executor_per_graph_mode(
        self, graph_mode, tiny_dataset, tiny_contact_config
    ):
        # graph_mode is parametrized by tests/conftest.py (incremental and
        # rebuild): whether merges patch the ReachGraph or rebuild it, the
        # process executor's answers stay reference-identical.
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            graph_mode=graph_mode,
            merge_executor="process",
            merge_workers=2,
        )
        try:
            service.drain(tiny_dataset)
            service.merge()
            assert service.num_merges > 0
            assert_methods_agree(
                reference_evaluator(prefix_network(tiny_dataset, TINY_THRESHOLD)),
                {"streaming": service.query},
                random_queries(tiny_dataset, count=10, seed=21),
                check_earliest=True,
                context=f"process executor, graph_mode={graph_mode}",
            )
        finally:
            service.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_process_executor_on_persistent_backends(
        self, backend, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            storage_config=storage_config,
            merge_executor="process",
            merge_workers=2,
        )
        workload = random_queries(tiny_dataset, count=10, seed=7)
        try:
            service.drain(tiny_dataset)
            service.merge()
            assert_methods_agree(
                reference_evaluator(prefix_network(tiny_dataset, TINY_THRESHOLD)),
                {"streaming": service.query},
                workload,
                check_earliest=True,
                context=f"process executor, backend={backend}",
            )
            name = service.name
        finally:
            service.close()
        # What a process-built merge adopted and flushed reopens identically.
        reopened = StreamingReachabilityService.open(storage_config, name=name)
        try:
            assert_reopened_matches_prefix(
                reopened,
                tiny_dataset,
                TINY_THRESHOLD,
                workload,
                context=f"reopen after process-built merges, backend={backend}",
            )
        finally:
            reopened.close()

    def test_mid_merge_crash_leaves_consistent_state(
        self, tiny_dataset, tiny_contact_config
    ):
        # The executor moves the *build*; the pre-adopt crash point still
        # fires on the owning thread, after the build future resolved and
        # before anything was adopted — so a crash there loses no answers.
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            max_delta_contacts=10_000,
            merge_executor="thread",
            merge_workers=2,
        )
        workload = random_queries(tiny_dataset, count=10, seed=9)
        try:
            service.drain(tiny_dataset)
            before = service.num_merges
            faults.arm("merge-pre-adopt")
            with pytest.raises(SimulatedCrash):
                service.merge()
            assert service.num_merges == before, "nothing adopted"
            assert_methods_agree(
                reference_evaluator(prefix_network(tiny_dataset, TINY_THRESHOLD)),
                {"streaming": service.query},
                workload,
                context="after aborted merge",
            )
            service.merge()  # disarmed: the executor path works again
            assert service.num_merges == before + 1
            assert_methods_agree(
                reference_evaluator(prefix_network(tiny_dataset, TINY_THRESHOLD)),
                {"streaming": service.query},
                workload,
                check_earliest=True,
                context="after recovered merge",
            )
        finally:
            service.close()


# ----------------------------------------------------------------------
# executor bookkeeping: timings, overlap, counters
# ----------------------------------------------------------------------
class TestExecutorBookkeeping:
    def test_inline_builds_never_overlap(self, tiny_dataset, tiny_contact_config):
        service = _service(tiny_dataset, tiny_contact_config)
        try:
            service.drain(tiny_dataset)
            service.merge()
            summary = service.merge_executor.timings.summary()
            assert summary["builds"] == service.num_merges > 0
            assert summary["overlapped_builds"] == 0
            assert summary["total_build_seconds"] >= 0.0
        finally:
            service.close()

    def test_sharded_pool_builds_overlap(self, tiny_dataset, tiny_contact_config):
        # The coordinator submits every shard's build before adopting any,
        # so on a pool executor the per-shard builds mark each other as
        # overlapped — the observable witness that merges left the single
        # inline lane, even on a single-core host.
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            shards=3,
            merge_executor="thread",
            merge_workers=2,
        )
        try:
            service.drain(tiny_dataset)
            service.merge()
            executor = service.merge_executor
            assert executor.counters.get("merge.builds") == len(executor.timings)
            assert executor.counters.get("merge.overlapped_builds") > 0
            assert executor.in_flight == 0, "all builds settled"
        finally:
            service.close()

    def test_shards_share_one_executor(self, tiny_dataset, tiny_contact_config):
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            shards=2,
            merge_executor="thread",
            merge_workers=1,
        )
        try:
            executors = {id(shard.merge_executor) for shard in service._shards}
            assert executors == {id(service.merge_executor)}
        finally:
            service.close()



# ----------------------------------------------------------------------
# read side: the process-pool query fleet
# ----------------------------------------------------------------------
class TestParallelQueryService:
    def test_rejects_sim_backend_and_bad_workers(
        self, tmp_path, tiny_dataset, tiny_contact_config
    ):
        from repro.core import StorageConfig

        with pytest.raises(StreamingError, match="persistent"):
            ParallelQueryService.open(StorageConfig(), "stream")  # sim backend
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        with pytest.raises(ConfigurationError):
            ParallelQueryService.open(storage_config, "stream", workers=0)
        with pytest.raises(StreamingError, match="for_service"):
            ParallelQueryService.for_service(object())

    def test_attached_fleet_matches_live_service(
        self, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            max_delta_contacts=10_000,
            storage_config=storage_config,
        )
        workload = list(random_queries(tiny_dataset, count=8, seed=11))
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=30).batches())
        try:
            for batch in batches[:2]:
                service.ingest(batch)
            service.merge()
            with ParallelQueryService.for_service(service, workers=2) as fleet:
                assert fleet.watermark == service.watermark
                assert_methods_agree(
                    reference_evaluator(
                        prefix_network(
                            tiny_dataset, TINY_THRESHOLD, through=fleet.watermark
                        )
                    ),
                    {"live": service.query, "fleet": fleet.query},
                    workload,
                    context="attached fleet, first generation",
                )
                generation = fleet.generation

                # A newly adopted merge invalidates the fleet automatically.
                for batch in batches[2:]:
                    service.ingest(batch)
                service.merge()
                answers = fleet.query_many(workload)
                assert fleet.generation == generation + 1
                assert fleet.num_refreshes == 1
                assert [a.reachable for a in answers] == [
                    service.query(q).reachable for q in workload
                ]
                assert fleet.watermark == tiny_dataset.horizon.end
                assert fleet.num_queries == 2 * len(workload)
        finally:
            service.close()

    def test_open_mode_fleet_over_flushed_state(
        self, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = _service(
            tiny_dataset, tiny_contact_config, storage_config=storage_config
        )
        workload = list(random_queries(tiny_dataset, count=8, seed=13))
        try:
            service.drain(tiny_dataset)
            service.merge()
            name = service.name
        finally:
            service.close()
        fleet = ParallelQueryService.open(storage_config, name, workers=2)
        try:
            assert_methods_agree(
                reference_evaluator(
                    prefix_network(tiny_dataset, TINY_THRESHOLD, through=fleet.watermark)
                ),
                {"fleet": fleet.query},
                workload,
                context="open-mode fleet",
            )
        finally:
            fleet.close()
        with pytest.raises(StreamingError):
            fleet.query(workload[0])
        fleet.close()  # idempotent

    def test_sharded_attached_fleet(self, tmp_path, tiny_dataset, tiny_contact_config):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = _service(
            tiny_dataset,
            tiny_contact_config,
            shards=3,
            storage_config=storage_config,
        )
        workload = list(random_queries(tiny_dataset, count=8, seed=17))
        try:
            service.drain(tiny_dataset)
            service.merge()
            with ParallelQueryService.for_service(service, workers=2) as fleet:
                assert fleet.watermark == service.watermark
                assert_methods_agree(
                    reference_evaluator(
                        prefix_network(
                            tiny_dataset, TINY_THRESHOLD, through=fleet.watermark
                        )
                    ),
                    {"live": service.query, "fleet": fleet.query},
                    workload,
                    context="sharded attached fleet",
                )
        finally:
            service.close()
