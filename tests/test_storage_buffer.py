"""Unit tests for the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.core.errors import BufferPoolError
from repro.storage import BufferPool, SimulatedDisk


@pytest.fixture()
def disk_with_blocks():
    disk = SimulatedDisk()
    for value in range(10):
        disk.allocate(f"payload-{value}")
    return disk


class TestBufferPool:
    def test_rejects_non_positive_capacity(self, disk_with_blocks):
        with pytest.raises(BufferPoolError):
            BufferPool(disk_with_blocks, capacity=0)

    def test_miss_then_hit(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=4)
        assert pool.read(3) == "payload-3"
        assert pool.misses == 1 and pool.hits == 0
        assert pool.read(3) == "payload-3"
        assert pool.hits == 1

    def test_hit_does_not_charge_physical_io(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=4)
        pool.read(2)
        reads_before = disk_with_blocks.stats.total_reads
        pool.read(2)
        assert disk_with_blocks.stats.total_reads == reads_before
        assert disk_with_blocks.stats.buffer_hits == 1

    def test_lru_eviction_order(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=2)
        pool.read(0)
        pool.read(1)
        pool.read(0)  # touch 0 so 1 becomes least recently used
        pool.read(2)  # evicts 1
        assert pool.contains(0)
        assert not pool.contains(1)
        assert pool.contains(2)

    def test_capacity_is_never_exceeded(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=3)
        for block in range(10):
            pool.read(block)
        assert pool.resident_blocks <= 3

    def test_read_many_preserves_order(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=5)
        values = pool.read_many([4, 1, 2])
        assert values == ["payload-4", "payload-1", "payload-2"]

    def test_prefetch_populates_pool(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=5)
        pool.prefetch([5, 6])
        assert pool.contains(5) and pool.contains(6)

    def test_invalidate_single_and_all(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=5)
        pool.read(1)
        pool.read(2)
        pool.invalidate(1)
        assert not pool.contains(1) and pool.contains(2)
        pool.invalidate()
        assert pool.resident_blocks == 0

    def test_clear_resets_counters(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=5)
        pool.read(1)
        pool.read(1)
        pool.clear()
        assert pool.hits == 0 and pool.misses == 0
        assert pool.hit_ratio == 0.0

    def test_hit_ratio(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=5)
        pool.read(1)
        pool.read(1)
        pool.read(2)
        assert pool.hit_ratio == pytest.approx(1 / 3)


class TestWriteBack:
    """The write-back discipline: dirty frames reach the device, exactly once."""

    def test_write_stages_without_touching_the_device(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=4)
        writes_before = disk_with_blocks.stats.writes
        pool.write(3, "staged")
        assert pool.dirty_blocks == 1
        assert disk_with_blocks.stats.writes == writes_before
        assert disk_with_blocks.peek(3) == "payload-3", "device must be untouched"
        assert pool.read(3) == "staged", "the pool serves the staged version"

    def test_eviction_writes_dirty_frame_back(self, disk_with_blocks):
        disk_with_blocks.reset_stats()
        pool = BufferPool(disk_with_blocks, capacity=2)
        pool.write(0, "dirty-0")
        pool.read(1)
        pool.read(2)  # evicts block 0 (LRU) → must write back
        assert not pool.contains(0)
        assert pool.dirty_blocks == 0
        assert disk_with_blocks.peek(0) == "dirty-0"
        assert disk_with_blocks.stats.writes == 1

    def test_clean_eviction_does_not_write(self, disk_with_blocks):
        disk_with_blocks.reset_stats()
        pool = BufferPool(disk_with_blocks, capacity=2)
        pool.read(0)
        pool.read(1)
        pool.read(2)  # evicts clean block 0
        assert disk_with_blocks.stats.writes == 0

    def test_flush_writes_all_dirty_frames_and_keeps_them_resident(
        self, disk_with_blocks
    ):
        disk_with_blocks.reset_stats()
        pool = BufferPool(disk_with_blocks, capacity=4)
        pool.write(5, "five")
        pool.write(6, "six")
        pool.flush()
        assert pool.dirty_blocks == 0
        assert pool.contains(5) and pool.contains(6)
        assert disk_with_blocks.peek(5) == "five"
        assert disk_with_blocks.peek(6) == "six"
        pool.flush()  # nothing dirty: no further writes
        assert disk_with_blocks.stats.writes == 2

    def test_invalidate_and_clear_write_back_before_dropping(self, disk_with_blocks):
        pool = BufferPool(disk_with_blocks, capacity=4)
        pool.write(7, "seven")
        pool.invalidate(7)
        assert disk_with_blocks.peek(7) == "seven"
        pool.write(8, "eight")
        pool.clear()
        assert disk_with_blocks.peek(8) == "eight"
        assert pool.dirty_blocks == 0

    def test_rewrite_of_dirty_frame_writes_once_on_eviction(self, disk_with_blocks):
        disk_with_blocks.reset_stats()
        pool = BufferPool(disk_with_blocks, capacity=4)
        pool.write(4, "v1")
        pool.write(4, "v2")
        pool.flush()
        assert disk_with_blocks.peek(4) == "v2"
        assert disk_with_blocks.stats.writes == 1
