"""Correctness suite for the asyncio serving front-end.

The contract under test: at any awaited point, ``await query(q)`` on an
:class:`AsyncReachabilityService` returns bit-identical answers to the batch
``reference`` evaluator over the globally complete prefix
``[origin, low_watermark]`` — and therefore to the synchronous sharded and
unsharded services fed the same batches — *including while background merges
are in flight*.  Around that sit the mechanics that make the front-end safe
to operate: bounded-queue backpressure on ``ingest``, ``drain()`` as a
complete flush barrier, cancellation of in-flight merges leaving the overlay
untouched, and ingest errors surfacing on the next call instead of killing
the loops.

The suite intentionally avoids ``pytest-asyncio``: every test drives its own
event loop through :func:`run`, which also wraps the scenario in
``asyncio.wait_for`` — a built-in per-test timeout, so a deadlocked loop
fails the test instead of hanging the whole session (CI adds
``pytest-timeout`` on top as a second line of defense).
"""

from __future__ import annotations

import asyncio

import pytest

from equivalence import (
    EQUIVALENCE_BACKENDS,
    EQUIVALENCE_MERGE_EXECUTORS,
    assert_methods_agree,
    backend_storage_config,
    prefix_network,
    reference_evaluator,
)
from repro.core import (
    ConfigurationError,
    ContactConfig,
    ReachGridConfig,
    StreamingConfig,
    StreamingError,
    WatermarkRegressionError,
)
from repro.core.engine import ReachabilityEngine
from repro.generators import RandomWaypointGenerator
from repro.streaming import (
    AsyncReachabilityService,
    DatasetReplaySource,
    ShardedReachabilityService,
    StreamingReachabilityService,
)
from repro.workloads.queries import random_queries

THRESHOLD = 30.0
GRID = ReachGridConfig(temporal_resolution=8, spatial_resolution=60.0)
CONTACTS = ContactConfig(distance_threshold=THRESHOLD)

#: Hard ceiling per scenario: a deadlocked event loop (a drain waiting on a
#: stalled queue, a merge that never adopts) trips this instead of hanging.
SCENARIO_TIMEOUT = 120.0


def run(coro):
    """Drive one async scenario to completion on a fresh event loop."""
    return asyncio.run(asyncio.wait_for(coro, timeout=SCENARIO_TIMEOUT))


@pytest.fixture(scope="module")
def dataset():
    return RandomWaypointGenerator(
        num_objects=20, horizon=60, environment_size=(400.0, 400.0), seed=5
    ).generate()


def make_async(dataset, shards, storage_config=None, **config_overrides):
    config = StreamingConfig(shards=shards, **config_overrides)
    return AsyncReachabilityService.for_dataset(
        dataset,
        contact_config=CONTACTS,
        grid_config=GRID,
        streaming_config=config,
        storage_config=storage_config,
    )


async def collect_async_answers(service, workload):
    """Answer every query through the awaited path, as a harness evaluator."""
    results = {query: await service.query(query) for query in workload}
    return results.__getitem__


# ----------------------------------------------------------------------
# equivalence: async ≡ sharded ≡ unsharded ≡ reference
# ----------------------------------------------------------------------
class TestAsyncEquivalence:
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_equivalence_at_every_watermark(self, dataset, shards):
        """After each drained batch, async answers equal the reference (and
        both synchronous services) over the prefix — merges fire throughout."""

        async def scenario():
            overrides = dict(
                merge_policy="elapsed-intervals",
                max_elapsed_intervals=2,
                batch_ticks=12,
            )
            service = make_async(dataset, shards, **overrides)
            sharded = ShardedReachabilityService.for_dataset(
                dataset,
                contact_config=CONTACTS,
                grid_config=GRID,
                streaming_config=StreamingConfig(shards=shards, **overrides),
            )
            unsharded = StreamingReachabilityService.for_dataset(
                dataset,
                contact_config=CONTACTS,
                grid_config=GRID,
                streaming_config=StreamingConfig(**overrides),
            )
            workload = list(random_queries(dataset, count=8, seed=3))
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
                    await service.ingest(batch)
                    await service.drain()
                    sharded.ingest(batch)
                    unsharded.ingest(batch)
                    low = service.low_watermark
                    assert low == batch.watermark == sharded.low_watermark
                    assert_methods_agree(
                        reference_evaluator(
                            prefix_network(dataset, THRESHOLD, through=low)
                        ),
                        {
                            "async": await collect_async_answers(service, workload),
                            "sharded": sharded.query,
                            "unsharded": unsharded.query,
                        },
                        workload,
                        check_earliest=True,
                        context=f"shards={shards}, watermark={low}",
                    )
                assert service.background_merges > 0
            return service.stats

        stats = run(scenario())
        assert stats.sharded.events == dataset.num_objects * dataset.num_instants

    @pytest.mark.parametrize("executor", EQUIVALENCE_MERGE_EXECUTORS)
    def test_equivalence_per_merge_executor(self, dataset, executor):
        """The merge-executor axis of the async contract: background merges
        built on a thread or process pool (instead of ``asyncio.to_thread``)
        must leave every awaited answer reference-identical at every cut."""

        async def scenario():
            service = make_async(
                dataset,
                2,
                merge_policy="elapsed-intervals",
                max_elapsed_intervals=2,
                batch_ticks=12,
                merge_executor=executor,
                merge_workers=2,
            )
            workload = list(random_queries(dataset, count=8, seed=19))
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
                    await service.ingest(batch)
                    await service.drain()
                    assert_methods_agree(
                        reference_evaluator(
                            prefix_network(
                                dataset, THRESHOLD, through=service.low_watermark
                            )
                        ),
                        {"async": await collect_async_answers(service, workload)},
                        workload,
                        check_earliest=True,
                        context=f"executor={executor}, wm={service.low_watermark}",
                    )
                assert service.background_merges > 0

        run(scenario())

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_equivalence_on_persistent_backends(self, dataset, backend):
        """The storage_backend axis of the async contract: background merges
        appending snapshot runs to a real device must leave every awaited
        answer bit-identical to the batch reference at each watermark."""

        async def scenario():
            service = make_async(
                dataset,
                shards=2,
                storage_config=backend_storage_config(backend),
                max_delta_contacts=16,
                batch_ticks=12,
            )
            workload = list(random_queries(dataset, count=8, seed=29))
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
                    await service.ingest(batch)
                    await service.drain()
                    low = service.low_watermark
                    assert_methods_agree(
                        reference_evaluator(
                            prefix_network(dataset, THRESHOLD, through=low)
                        ),
                        {
                            f"async-{backend}": await collect_async_answers(
                                service, workload
                            )
                        },
                        workload,
                        check_earliest=True,
                        context=f"backend={backend}, watermark={low}",
                    )
                assert service.background_merges > 0
            return service.stats

        stats = run(scenario())
        assert stats.sharded.events == dataset.num_objects * dataset.num_instants

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_aclose_persists_shard_state_durably(self, dataset, backend, tmp_path):
        """Regression: shutting the async front-end down must flush and close
        the per-shard storage systems — on a persistent backend every shard's
        overlay manifest has to reach the directory, or the data dies with
        the process's file buffers."""

        async def scenario():
            service = make_async(
                dataset,
                shards=2,
                storage_config=backend_storage_config(
                    backend, storage_dir=str(tmp_path)
                ),
                merge_policy="elapsed-intervals",
                max_elapsed_intervals=2,
                batch_ticks=12,
            )
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
                    await service.ingest(batch)
                await service.drain()
            return service.stats

        stats = run(scenario())
        assert stats.sharded.merges > 0
        overlay_manifests = [
            p
            for p in tmp_path.iterdir()
            if "-overlay" in p.name and p.name.endswith(".manifest")
        ]
        assert len(overlay_manifests) == 2, "one durable manifest per shard"

    @pytest.mark.parametrize("shards", (2, 4))
    def test_queries_while_merges_in_flight(self, dataset, shards):
        """Answers issued while background merges are building must already be
        correct, and stay correct after the merges adopt their snapshots."""

        async def scenario():
            # A threshold no stream reaches: merges happen only when forced,
            # so the in-flight window is under the test's control.
            service = make_async(
                dataset, shards, max_delta_contacts=1_000_000, batch_ticks=6
            )
            workload = list(random_queries(dataset, count=10, seed=7))
            reference = reference_evaluator(prefix_network(dataset, THRESHOLD))
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=6).batches():
                    await service.ingest(batch)
                await service.drain()
                assert service.background_merges == 0

                tasks = service.schedule_merge()
                assert tasks, "every started shard should have a merge to run"
                assert service.merges_in_flight == len(tasks)
                # The first await hands control to the merge tasks; these
                # queries run concurrently with the snapshot rebuilds.
                assert_methods_agree(
                    reference,
                    {"async-inflight": await collect_async_answers(service, workload)},
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                    context=f"shards={shards}, merges in flight",
                )
                await asyncio.gather(*tasks, return_exceptions=True)
                await service.drain()
                assert service.merges_in_flight == 0
                assert service.background_merges == len(tasks)
                assert_methods_agree(
                    reference,
                    {"async-postmerge": await collect_async_answers(service, workload)},
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                    context=f"shards={shards}, merges adopted",
                )

        run(scenario())

    def test_equivalence_per_graph_mode_mid_merge(self, dataset, graph_mode):
        """The graph_mode axis through the async adoption path: answers must
        be correct while background merges are in flight and after they
        adopt, in both modes (the async shards skip the fast path, so the
        modes must be indistinguishable plumbing here)."""

        async def scenario():
            service = make_async(
                dataset,
                2,
                max_delta_contacts=1_000_000,
                batch_ticks=6,
                graph_mode=graph_mode,
            )
            workload = list(random_queries(dataset, count=8, seed=13))
            reference = reference_evaluator(prefix_network(dataset, THRESHOLD))
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=6).batches():
                    await service.ingest(batch)
                await service.drain()
                tasks = service.schedule_merge()
                assert tasks
                assert_methods_agree(
                    reference,
                    {
                        f"async-{graph_mode}-inflight": await collect_async_answers(
                            service, workload
                        )
                    },
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                    context=f"graph_mode={graph_mode}, merges in flight",
                )
                await asyncio.gather(*tasks, return_exceptions=True)
                await service.drain()
                assert service.background_merges == len(tasks)
                assert_methods_agree(
                    reference,
                    {
                        f"async-{graph_mode}-adopted": await collect_async_answers(
                            service, workload
                        )
                    },
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                    context=f"graph_mode={graph_mode}, merges adopted",
                )

        run(scenario())

    def test_replay_convenience_matches_reference(self, dataset):
        async def scenario():
            service = make_async(dataset, 2, max_delta_contacts=24, batch_ticks=8)
            async with service:
                stats = await service.replay(dataset)
                assert stats.events == dataset.num_objects * dataset.num_instants
                workload = list(random_queries(dataset, count=10, seed=11))
                assert_methods_agree(
                    reference_evaluator(prefix_network(dataset, THRESHOLD)),
                    {"async": await collect_async_answers(service, workload)},
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                )

        run(scenario())


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_queues_suspend_ingest(self, dataset):
        """With depth-1 queues and stalled loops, a second ingest must block
        until the loops resume — that suspension is the backpressure."""

        async def scenario():
            service = make_async(
                dataset, 2, async_queue_depth=1, batch_ticks=6
            )
            batches = list(DatasetReplaySource(dataset, batch_ticks=6).batches())
            async with service:
                service.pause_ingest()
                await service.ingest(batches[0])  # fills the depth-1 queues
                assert service.pending_batches > 0
                # Draining behind a pause can never finish: fail fast instead.
                with pytest.raises(StreamingError):
                    await service.drain()
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(service.ingest(batches[1]), timeout=0.25)
                # The timed-out ingest may have enqueued a prefix of its
                # per-shard sub-batches; per-shard FIFO order is intact, so
                # the service stays correct — the laggard just bounds the
                # low-watermark.
                service.resume_ingest()
                await service.drain()
                assert service.pending_batches == 0
                assert service.low_watermark == batches[0].watermark

        run(scenario())

    def test_aclose_releases_a_forgotten_pause(self, dataset):
        """The context-manager exit must flush, not deadlock, when the body
        left ingest paused (including when it raises mid-pause)."""

        async def scenario():
            service = make_async(dataset, 2, batch_ticks=6)
            batch = next(DatasetReplaySource(dataset, batch_ticks=6).batches())
            async with service:
                service.pause_ingest()
                await service.ingest(batch)
                assert service.pending_batches > 0
            # aclose() resumed the loops and drained before stopping them.
            assert service.pending_batches == 0
            assert service.low_watermark == batch.watermark

        run(scenario())

    def test_config_validates_queue_depth(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(async_queue_depth=0)


# ----------------------------------------------------------------------
# drain completeness
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_flushes_queues_and_merges(self, dataset):
        async def scenario():
            service = make_async(
                dataset, 2, max_delta_contacts=12, batch_ticks=6, async_queue_depth=2
            )
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=6).batches():
                    await service.ingest(batch)
                stats = await service.drain()
                assert service.pending_batches == 0
                assert service.merges_in_flight == 0
                assert service.low_watermark == dataset.horizon.end
                assert stats.events == dataset.num_objects * dataset.num_instants
                assert stats.background_merges > 0, (
                    "a 12-contact delta threshold must have fired mid-stream"
                )

        run(scenario())

    def test_drain_before_start_is_a_noop(self, dataset):
        async def scenario():
            service = make_async(dataset, 2)
            stats = await service.drain()
            assert stats.events == 0 and stats.pending_batches == 0

        run(scenario())


# ----------------------------------------------------------------------
# cancellation mid-merge
# ----------------------------------------------------------------------
class TestMergeCancellation:
    def test_cancelled_merge_leaves_overlay_consistent(self, dataset):
        async def scenario():
            service = make_async(
                dataset, 2, max_delta_contacts=1_000_000, batch_ticks=6
            )
            workload = list(random_queries(dataset, count=10, seed=13))
            reference = reference_evaluator(prefix_network(dataset, THRESHOLD))
            async with service:
                await service.replay(dataset)
                marks_before = [
                    shard.overlay.snapshot_watermark
                    for shard in service.service.shard_services
                ]
                tasks = service.schedule_merge()
                cancelled = await service.cancel_in_flight_merges()
                assert cancelled == len(tasks) > 0
                assert service.cancelled_merges == cancelled
                assert service.background_merges == 0
                assert service.merges_in_flight == 0
                # Nothing was adopted: snapshots untouched, answers unchanged.
                marks_after = [
                    shard.overlay.snapshot_watermark
                    for shard in service.service.shard_services
                ]
                assert marks_after == marks_before
                assert_methods_agree(
                    reference,
                    {"async-cancelled": await collect_async_answers(service, workload)},
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                    context="after cancelled merges",
                )
                # A later merge proceeds normally from the same state.
                await asyncio.gather(
                    *service.schedule_merge(), return_exceptions=True
                )
                await service.drain()
                assert service.background_merges > 0
                assert_methods_agree(
                    reference,
                    {"async-remerged": await collect_async_answers(service, workload)},
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                    context="after re-running the cancelled merges",
                )

        run(scenario())


# ----------------------------------------------------------------------
# cache invalidation on snapshot swap
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def test_snapshot_swap_invalidates_query_cache(self, dataset):
        async def scenario():
            service = make_async(
                dataset, 2, max_delta_contacts=1_000_000, batch_ticks=6
            )
            async with service:
                await service.replay(dataset)
                cache = service.service.query_cache
                query = next(iter(random_queries(dataset, count=1, seed=2)))
                first = await service.query(query)
                again = await service.query(query)
                assert again == first and cache.hits >= 1
                generation = cache.generation
                await asyncio.gather(
                    *service.schedule_merge(), return_exceptions=True
                )
                await service.drain()
                assert cache.generation > generation, (
                    "adopting a background merge must invalidate the cache"
                )
                misses = cache.misses
                post = await service.query(query)
                assert cache.misses == misses + 1, (
                    "a post-swap query must recompute, not reuse a pre-swap entry"
                )
                assert post.reachable == first.reachable
                assert post.earliest_time == first.earliest_time

        run(scenario())


# ----------------------------------------------------------------------
# error propagation and lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_ingest_contract_errors_surface_on_next_call(self, dataset):
        async def scenario():
            service = make_async(dataset, 2, batch_ticks=6)
            batches = list(DatasetReplaySource(dataset, batch_ticks=6).batches())
            async with service:
                await service.ingest(batches[0])
                await service.ingest(batches[1])
                await service.drain()
                # Re-delivering batch 0 regresses the watermark; the shard
                # loops reject it atomically and the rejection surfaces on
                # the next awaited call.
                await service.ingest(batches[0])
                with pytest.raises(WatermarkRegressionError):
                    await service.drain()
                # The rejection left every shard unchanged: the stream can
                # continue and stays equivalent to the reference.
                for batch in batches[2:]:
                    await service.ingest(batch)
                await service.drain()
                assert service.low_watermark == dataset.horizon.end
                workload = list(random_queries(dataset, count=6, seed=19))
                assert_methods_agree(
                    reference_evaluator(prefix_network(dataset, THRESHOLD)),
                    {"async-recovered": await collect_async_answers(service, workload)},
                    workload,
                    check_earliest=True,
                    require_earliest=True,
                )

        run(scenario())

    def test_closed_service_rejects_use(self, dataset):
        async def scenario():
            service = make_async(dataset, 2, batch_ticks=6)
            batch = next(DatasetReplaySource(dataset, batch_ticks=6).batches())
            async with service:
                await service.ingest(batch)
            # the context manager exit ran aclose()
            with pytest.raises(StreamingError):
                await service.ingest(batch)
            with pytest.raises(StreamingError):
                await service.query(
                    next(iter(random_queries(dataset, count=1, seed=0)))
                )
            await service.aclose()  # idempotent

        run(scenario())

    def test_engine_dispatches_async_mode(self, dataset):
        engine = ReachabilityEngine(dataset, contact_config=CONTACTS)
        service = engine.streaming(async_mode=True, shards=2)
        assert isinstance(service, AsyncReachabilityService)
        assert service.num_shards == 2
        assert isinstance(engine.streaming(shards=2), ShardedReachabilityService)
        assert isinstance(engine.streaming(), StreamingReachabilityService)

    def test_queries_before_any_ingest(self, dataset):
        async def scenario():
            service = make_async(dataset, 2)
            async with service:
                query = next(iter(random_queries(dataset, count=1, seed=4)))
                assert not (await service.query(query)).reachable

        run(scenario())


# ----------------------------------------------------------------------
# the close/reopen axis (crash-consistent recovery)
# ----------------------------------------------------------------------
class TestAsyncCloseReopen:
    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_reopen_after_aclose_matches_reference_at_every_cut(
        self, dataset, backend, tmp_path
    ):
        """aclose() at each batch cut, then reopen the on-device state: the
        restored service answers over the committed low-watermark prefix,
        bit-identically to the batch reference — merges fire throughout."""
        from equivalence import assert_reopened_matches_prefix

        batches = list(DatasetReplaySource(dataset, batch_ticks=20).batches())
        workload = random_queries(dataset, count=12, seed=59)
        for cut in range(1, len(batches) + 1):
            directory = tmp_path / f"cut{cut}"
            directory.mkdir()
            config = backend_storage_config(backend, storage_dir=str(directory))
            service = make_async(
                dataset, 2, storage_config=config,
                merge_policy="elapsed-intervals", max_elapsed_intervals=2,
            )

            async def scenario():
                async with service:
                    for batch in batches[:cut]:
                        await service.ingest(batch)
                    await service.drain()
                    return service.low_watermark

            low = run(scenario())
            reopened = AsyncReachabilityService.reopen(config, name=service.name)
            assert reopened.watermark == low
            assert_reopened_matches_prefix(
                reopened, dataset, THRESHOLD, workload,
                context=f"backend={backend}, cut={cut}",
            )
            reopened.close()
