"""Unit tests for contact extraction, contact networks, and the TEN model.

The Figure 1 fixtures give ground truth straight from the paper: contacts
c1..c4 with validity intervals [0,0], [1,1], [1,2], [2,3].
"""

from __future__ import annotations

import pytest

from repro.contacts import (
    Contact,
    ContactNetwork,
    TimeExpandedNetwork,
    build_contact_network,
    join_at_instant,
    pairs_within_distance,
    sweep_join,
)
from repro.core import ContactNetworkError, Point, TimeInterval

# The contact threshold used by the Figure 1 fixture (see conftest.py).
FIGURE1_THRESHOLD = 10.0


class TestPairsWithinDistance:
    def test_matches_brute_force_on_small_input(self):
        positions = {
            0: Point(0, 0),
            1: Point(3, 4),
            2: Point(0.5, 0.5),
            3: Point(100, 100),
            4: Point(4, 4),
        }
        threshold = 5.0
        expected = set()
        ids = sorted(positions)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if positions[a].distance_to(positions[b]) <= threshold:
                    expected.add((a, b))
        assert set(pairs_within_distance(positions, threshold)) == expected

    def test_pairs_straddling_grid_cells_are_found(self):
        # Two points in different hash cells but within the threshold.
        positions = {0: Point(9.9, 0.0), 1: Point(10.1, 0.0)}
        assert set(pairs_within_distance(positions, 10.0)) == {(0, 1)}

    def test_empty_and_singleton_inputs(self):
        assert pairs_within_distance({}, 5.0) == []
        assert pairs_within_distance({3: Point(0, 0)}, 5.0) == []

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ContactNetworkError):
            pairs_within_distance({0: Point(0, 0)}, 0.0)


class TestContact:
    def test_between_normalizes_order(self):
        contact = Contact.between(7, 3, TimeInterval(0, 2))
        assert contact.objects == (3, 7)

    def test_rejects_self_contact(self):
        with pytest.raises(ContactNetworkError):
            Contact(1, 1, TimeInterval(0, 0))

    def test_rejects_descending_object_order(self):
        with pytest.raises(ContactNetworkError):
            Contact(5, 2, TimeInterval(0, 0))

    def test_other_and_involves(self):
        contact = Contact(1, 4, TimeInterval(2, 3))
        assert contact.other(1) == 4
        assert contact.other(4) == 1
        assert contact.involves(1) and not contact.involves(2)
        with pytest.raises(ContactNetworkError):
            contact.other(9)

    def test_active_at(self):
        contact = Contact(1, 4, TimeInterval(2, 3))
        assert contact.active_at(2) and contact.active_at(3)
        assert not contact.active_at(1)


class TestFigure1ContactNetwork:
    def test_exactly_the_four_paper_contacts_are_extracted(self, figure1_network):
        contacts = {
            (contact.first, contact.second, contact.validity.start, contact.validity.end)
            for contact in figure1_network
        }
        assert contacts == {
            (1, 2, 0, 0),  # c1
            (2, 4, 1, 1),  # c2
            (3, 4, 1, 2),  # c3
            (1, 2, 2, 3),  # c4
        }

    def test_same_pair_with_disjoint_validity_yields_two_contacts(self, figure1_network):
        pair_contacts = [c for c in figure1_network if c.objects == (1, 2)]
        assert len(pair_contacts) == 2

    def test_contacts_at_each_instant(self, figure1_network):
        assert {c.objects for c in figure1_network.contacts_at(0)} == {(1, 2)}
        assert {c.objects for c in figure1_network.contacts_at(1)} == {(2, 4), (3, 4)}
        assert {c.objects for c in figure1_network.contacts_at(2)} == {(1, 2), (3, 4)}
        assert {c.objects for c in figure1_network.contacts_at(3)} == {(1, 2)}

    def test_contacts_of_object(self, figure1_network):
        validities = [c.validity for c in figure1_network.contacts_of(4)]
        assert validities == [TimeInterval(1, 1), TimeInterval(1, 2)]

    def test_contacts_overlapping_window(self, figure1_network):
        overlapping = figure1_network.contacts_overlapping(TimeInterval(2, 3))
        assert {c.objects for c in overlapping} == {(1, 2), (3, 4)}

    def test_snapshot_adjacency(self, figure1_network):
        adjacency = figure1_network.snapshot_adjacency(1)
        assert adjacency[4] == {2, 3}
        assert adjacency[2] == {4}
        assert 1 not in adjacency

    def test_total_contact_instants(self, figure1_network):
        # c1: 1 tick, c2: 1, c3: 2, c4: 2 -> 6 contact-instants.
        assert figure1_network.total_contact_instants() == 6

    def test_average_degree(self, figure1_network):
        # At t=1 the degrees are o2:1, o3:1, o4:2, o1:0 -> mean over 4 objects = 1.
        assert figure1_network.average_degree_at(1) == pytest.approx(1.0)


class TestBuildContactNetworkValidation:
    def test_contacts_outside_horizon_are_rejected(self, figure1_dataset):
        with pytest.raises(ContactNetworkError):
            ContactNetwork(
                figure1_dataset,
                [Contact(1, 2, TimeInterval(0, 99))],
                distance_threshold=10.0,
            )

    def test_contacts_with_unknown_objects_are_rejected(self, figure1_dataset):
        with pytest.raises(ContactNetworkError):
            ContactNetwork(
                figure1_dataset,
                [Contact(1, 99, TimeInterval(0, 1))],
                distance_threshold=10.0,
            )

    def test_window_restricted_join(self, figure1_dataset):
        network = build_contact_network(
            figure1_dataset, FIGURE1_THRESHOLD, window=TimeInterval(0, 1)
        )
        assert {(c.objects, c.validity.start, c.validity.end) for c in network} == {
            ((1, 2), 0, 0),
            ((2, 4), 1, 1),
            ((3, 4), 1, 1),
        }

    def test_join_at_instant_matches_network_snapshot(self, figure1_dataset, figure1_network):
        for t in range(4):
            pairs = set(join_at_instant(figure1_dataset, t, FIGURE1_THRESHOLD))
            assert pairs == {c.objects for c in figure1_network.contacts_at(t)}


class TestSweepJoin:
    def test_sweep_join_reports_events_in_time_order(self, figure1_dataset):
        events = list(
            sweep_join(
                (
                    (t, figure1_dataset.positions_at(t))
                    for t in range(4)
                ),
                FIGURE1_THRESHOLD,
            )
        )
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        assert (0, 1, 2) in events  # c1 at t=0

    def test_sweep_join_filters_by_left_set(self, figure1_dataset):
        events = list(
            sweep_join(
                ((t, figure1_dataset.positions_at(t)) for t in range(4)),
                FIGURE1_THRESHOLD,
                left={3},
            )
        )
        assert all(3 in (a, b) for _, a, b in events)
        assert {(a, b) for _, a, b in events} == {(3, 4)}


class TestTimeExpandedNetwork:
    def test_vertex_and_edge_counts(self, figure1_network):
        ten = TimeExpandedNetwork(figure1_network)
        # 4 objects x 4 instants.
        assert ten.num_vertices == 16
        # Holding edges: 4 objects x 3 transitions = 12; contact edges: 6.
        assert ten.num_holding_edges == 12
        assert ten.num_contact_edges == 6
        assert ten.num_edges == 18

    def test_snapshot_components_match_figure4(self, figure1_network):
        ten = TimeExpandedNetwork(figure1_network)
        components_t1 = {frozenset(c) for c in ten.snapshot_components(1)}
        assert components_t1 == {frozenset({1}), frozenset({2, 3, 4})}
        components_t0 = {frozenset(c) for c in ten.snapshot_components(0)}
        assert components_t0 == {frozenset({1, 2}), frozenset({3}), frozenset({4})}

    def test_snapshot_vertices(self, figure1_network):
        ten = TimeExpandedNetwork(figure1_network)
        vertices = ten.snapshot_vertices(2)
        assert {(v.object_id, v.time) for v in vertices} == {(i, 2) for i in (1, 2, 3, 4)}

    def test_iter_snapshots_covers_horizon(self, figure1_network):
        ten = TimeExpandedNetwork(figure1_network)
        snapshots = list(ten.iter_snapshots())
        assert [t for t, _ in snapshots] == [0, 1, 2, 3]
