"""Unit and integration tests for the ReachGraph index and its query strategies."""

from __future__ import annotations

import random

import pytest

from repro.baselines import evaluate_reachability
from repro.core import (
    ContactConfig,
    IndexConstructionError,
    IndexNotBuiltError,
    QueryError,
    ReachabilityQuery,
    ReachGraphConfig,
    TimeInterval,
    UnknownObjectError,
)
from repro.reachgraph import ReachGraphIndex, ReachGraphQueryProcessor, STRATEGIES


@pytest.fixture(scope="module")
def figure1_reachgraph(figure1_dataset, figure1_network):
    return ReachGraphIndex(
        figure1_dataset,
        ReachGraphConfig(resolutions=(2,), partition_depth=2),
        ContactConfig(distance_threshold=10.0),
        contact_network=figure1_network,
    ).build()


class TestReachGraphIndexConstruction:
    def test_build_populates_reports(self, tiny_reachgraph):
        report = tiny_reachgraph.build_report
        assert report is not None
        assert report.reduction.dag_vertices == tiny_reachgraph.num_vertices
        assert report.num_partitions == tiny_reachgraph.num_partitions
        assert report.num_blocks == tiny_reachgraph.num_blocks > 0

    def test_double_build_rejected(self, tiny_reachgraph):
        with pytest.raises(IndexConstructionError):
            tiny_reachgraph.build()

    def test_unbuilt_index_refuses_access(self, tiny_dataset, tiny_contact_config):
        index = ReachGraphIndex(tiny_dataset, contact_config=tiny_contact_config)
        with pytest.raises(IndexNotBuiltError):
            index.read_partition(0)
        with pytest.raises(QueryError):
            ReachGraphQueryProcessor(index)

    def test_find_vertex_id_agrees_with_dag(self, tiny_reachgraph):
        dag = tiny_reachgraph.dag
        for object_id in list(tiny_reachgraph.dataset.object_ids)[:5]:
            for t in (0, 37, 100):
                assert tiny_reachgraph.find_vertex_id(object_id, t) == dag.node_of(
                    object_id, t
                )

    def test_find_vertex_for_unknown_object_raises(self, tiny_reachgraph):
        with pytest.raises(UnknownObjectError):
            tiny_reachgraph.find_vertex_id(123_456, 0)

    def test_partition_records_round_trip(self, tiny_reachgraph):
        records = tiny_reachgraph.read_partition(0)
        assert records
        for record in records:
            assert tiny_reachgraph.partition_of(record.node_id) == 0
            node = tiny_reachgraph.dag.node(record.node_id)
            assert record.interval == node.interval
            assert set(record.members) == set(node.members)
            assert list(record.successors) == tiny_reachgraph.dag.successors(
                record.node_id
            )

    def test_vertex_records_store_reverse_edges(self, tiny_reachgraph):
        dag = tiny_reachgraph.dag
        for partition_id in range(min(3, tiny_reachgraph.num_partitions)):
            for record in tiny_reachgraph.read_partition(partition_id):
                assert list(record.predecessors) == dag.predecessors(record.node_id)

    def test_long_successor_lookup(self, tiny_reachgraph):
        found_any = False
        for partition_id in range(tiny_reachgraph.num_partitions):
            for record in tiny_reachgraph.read_partition(partition_id):
                for resolution, successors in record.long_successors:
                    found_any = True
                    assert record.long_successors_at(resolution) == successors
        assert found_any, "expected at least one long edge in the tiny dataset"
        # Unknown resolution yields the empty tuple.
        record = tiny_reachgraph.read_partition(0)[0]
        assert record.long_successors_at(999) == ()


class TestFigure1Queries:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_paper_ground_truth_for_all_strategies(self, figure1_reachgraph, strategy):
        processor = ReachGraphQueryProcessor(figure1_reachgraph)
        assert processor.evaluate(
            ReachabilityQuery(1, 4, TimeInterval(0, 1)), strategy=strategy
        ).reachable
        assert not processor.evaluate(
            ReachabilityQuery(4, 1, TimeInterval(0, 1)), strategy=strategy
        ).reachable
        assert processor.evaluate(
            ReachabilityQuery(4, 1, TimeInterval(0, 3)), strategy=strategy
        ).reachable
        assert not processor.evaluate(
            ReachabilityQuery(1, 3, TimeInterval(2, 3)), strategy=strategy
        ).reachable


class TestReachGraphQueryProcessing:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_reference_on_random_queries(
        self, tiny_reachgraph, tiny_network, strategy
    ):
        processor = ReachGraphQueryProcessor(tiny_reachgraph)
        rng = random.Random(29)
        horizon = tiny_network.horizon
        for _ in range(30):
            source, destination = rng.sample(tiny_network.object_ids, 2)
            start = rng.randint(horizon.start, horizon.end - 20)
            end = min(start + rng.randint(5, 70), horizon.end)
            query = ReachabilityQuery(source, destination, TimeInterval(start, end))
            expected = evaluate_reachability(tiny_network, query)
            actual = processor.evaluate(query, strategy=strategy)
            assert actual.reachable == expected.reachable, (strategy, query)

    def test_unknown_strategy_rejected(self, tiny_reachgraph):
        processor = ReachGraphQueryProcessor(tiny_reachgraph)
        with pytest.raises(QueryError):
            processor.evaluate(
                ReachabilityQuery(0, 1, TimeInterval(0, 10)), strategy="dijkstra"
            )

    def test_unknown_objects_rejected(self, tiny_reachgraph):
        processor = ReachGraphQueryProcessor(tiny_reachgraph)
        with pytest.raises(UnknownObjectError):
            processor.evaluate(ReachabilityQuery(55_555, 0, TimeInterval(0, 10)))

    def test_interval_outside_horizon_rejected(self, tiny_reachgraph):
        processor = ReachGraphQueryProcessor(tiny_reachgraph)
        with pytest.raises(QueryError):
            processor.evaluate(ReachabilityQuery(0, 1, TimeInterval(9_000, 9_100)))

    def test_source_equals_destination(self, tiny_reachgraph):
        processor = ReachGraphQueryProcessor(tiny_reachgraph)
        result = processor.evaluate(ReachabilityQuery(3, 3, TimeInterval(0, 50)))
        assert result.reachable

    def test_queries_charge_io_and_count_visits(self, tiny_reachgraph, tiny_network):
        # use_labels=False pins the unpruned traversal: with labels on, this
        # unreachable pair is rejected from the interval labels alone and
        # legitimately visits nothing.
        processor = ReachGraphQueryProcessor(tiny_reachgraph, use_labels=False)
        objects = tiny_network.object_ids
        result = processor.evaluate(
            ReachabilityQuery(objects[0], objects[-1], TimeInterval(0, 100))
        )
        assert result.io > 0
        assert result.visited > 0
        # The label layer answers the same query with zero vertex visits.
        labelled = ReachGraphQueryProcessor(tiny_reachgraph).evaluate(
            ReachabilityQuery(objects[0], objects[-1], TimeInterval(0, 100))
        )
        assert not labelled.reachable
        assert labelled.visited == 0

    def test_bmbfs_visits_no_more_than_bbfs(self, tiny_reachgraph, tiny_network):
        """The multi-resolution traversal should never explore more vertices
        than the single-resolution bidirectional traversal (Figure 13 trend)."""
        processor = ReachGraphQueryProcessor(tiny_reachgraph)
        rng = random.Random(31)
        horizon = tiny_network.horizon
        total_bm = total_b = 0
        for _ in range(20):
            source, destination = rng.sample(tiny_network.object_ids, 2)
            query = ReachabilityQuery(
                source, destination, TimeInterval(horizon.start, horizon.end)
            )
            total_bm += processor.evaluate(query, strategy="bm-bfs").visited
            total_b += processor.evaluate(query, strategy="b-bfs").visited
        assert total_bm <= total_b

    def test_edfs_visits_at_least_as_many_as_bmbfs(self, tiny_reachgraph, tiny_network):
        processor = ReachGraphQueryProcessor(tiny_reachgraph)
        rng = random.Random(37)
        horizon = tiny_network.horizon
        total_bm = total_dfs = 0
        for _ in range(20):
            source, destination = rng.sample(tiny_network.object_ids, 2)
            query = ReachabilityQuery(
                source, destination, TimeInterval(horizon.start, horizon.end)
            )
            total_bm += processor.evaluate(query, strategy="bm-bfs").visited
            total_dfs += processor.evaluate(query, strategy="e-dfs").visited
        assert total_bm <= total_dfs
