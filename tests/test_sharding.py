"""Property-based equivalence suite for sharded stream ingestion.

The contract under test (the strongest guarantee of the sharded subsystem):
at any point of the stream, a :class:`ShardedReachabilityService` answers
every reachability query exactly like the batch ``reference`` evaluator over
the globally complete prefix ``[origin, low_watermark]`` — and therefore
exactly like the single-shard :class:`StreamingReachabilityService` fed the
same batches — for every shard count, both routers, merge policies firing
mid-stream, and arbitrary (per-shard watermark-ordered) delivery
interleavings.

Run ``pytest tests/test_sharding.py --shards N`` to pin the shard count (the
CI matrix does); without the flag every canned count is exercised.
"""

from __future__ import annotations

import random

import pytest

from equivalence import (
    EQUIVALENCE_BACKENDS,
    assert_methods_agree,
    backend_storage_config,
    prefix_network,
    reference_evaluator,
)
from repro.core import (
    ConfigurationError,
    ContactConfig,
    Point,
    ReachGridConfig,
    ShardingError,
    StreamingConfig,
    WatermarkRegressionError,
)
from repro.core.engine import ReachabilityEngine
from repro.generators import RandomWaypointGenerator
from repro.streaming import (
    DatasetReplaySource,
    HashRouter,
    SampleEvent,
    ShardedReachabilityService,
    ShardedStreamIngestor,
    SpatialCellRouter,
    StreamIngestor,
    StreamingReachabilityService,
    make_router,
)
from repro.workloads.queries import random_queries

THRESHOLD = 30.0
SHARD_COUNTS = (1, 2, 4, 8)
ROUTERS = ("hash", "spatial")

#: Spatial resolution small enough that the spatial router actually spreads
#: objects across shards on the small test environment (the default 1024 m
#: would put the whole 400 m environment into one cell — one shard).
GRID = ReachGridConfig(temporal_resolution=8, spatial_resolution=60.0)
CONTACTS = ContactConfig(distance_threshold=THRESHOLD)


def pytest_generate_tests(metafunc):
    if "shards" in metafunc.fixturenames:
        chosen = metafunc.config.getoption("shards", default=None)
        counts = (chosen,) if chosen else SHARD_COUNTS
        metafunc.parametrize("shards", counts)


@pytest.fixture(scope="module")
def dataset():
    return RandomWaypointGenerator(
        num_objects=20, horizon=60, environment_size=(400.0, 400.0), seed=5
    ).generate()


def make_sharded(dataset, shards, router, storage_config=None, **config_overrides):
    config = StreamingConfig(shards=shards, router=router, **config_overrides)
    return ShardedReachabilityService.for_dataset(
        dataset,
        contact_config=CONTACTS,
        grid_config=GRID,
        streaming_config=config,
        storage_config=storage_config,
    )


def make_unsharded(dataset, **config_overrides):
    return StreamingReachabilityService.for_dataset(
        dataset,
        contact_config=CONTACTS,
        grid_config=GRID,
        streaming_config=StreamingConfig(**config_overrides),
    )


# ----------------------------------------------------------------------
# the equivalence properties
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    @pytest.mark.parametrize("router", ROUTERS)
    def test_drained_stream_matches_reference_and_unsharded(
        self, dataset, shards, router
    ):
        sharded = make_sharded(
            dataset, shards, router, max_delta_contacts=24, batch_ticks=8
        )
        sharded.drain(dataset)
        unsharded = make_unsharded(dataset, max_delta_contacts=24, batch_ticks=8)
        unsharded.drain(dataset)
        assert sharded.low_watermark == dataset.horizon.end
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"sharded": sharded.query, "unsharded": unsharded.query},
            random_queries(dataset, count=30, seed=17),
            check_earliest=True,
            context=f"shards={shards}, router={router}, drained",
        )

    @pytest.mark.parametrize("router", ROUTERS)
    def test_equivalence_at_every_watermark(self, dataset, shards, router):
        # elapsed-intervals fires for every shard that flushes grid intervals,
        # so merges definitely cross the checked watermarks.
        sharded = make_sharded(
            dataset,
            shards,
            router,
            merge_policy="elapsed-intervals",
            max_elapsed_intervals=2,
            batch_ticks=12,
        )
        unsharded = make_unsharded(
            dataset,
            merge_policy="elapsed-intervals",
            max_elapsed_intervals=2,
            batch_ticks=12,
        )
        workload = random_queries(dataset, count=8, seed=3)
        for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
            sharded.ingest(batch)
            unsharded.ingest(batch)
            low = sharded.low_watermark
            assert low == batch.watermark == unsharded.watermark
            assert_methods_agree(
                reference_evaluator(prefix_network(dataset, THRESHOLD, through=low)),
                {"sharded": sharded.query, "unsharded": unsharded.query},
                workload,
                check_earliest=True,
                context=f"shards={shards}, router={router}, watermark={low}",
            )
        assert sharded.num_merges > 0

    def test_equivalence_per_graph_mode(self, dataset, shards, graph_mode):
        """The graph_mode axis threads through the sharded merge path too.

        Per-shard snapshots never build the ReachGraph fast path (they are
        not individually authoritative), so both modes must be pure plumbing
        here: identical answers at every watermark, zero graph writes."""
        # elapsed-intervals fires for every shard that flushes grid intervals,
        # so merges definitely exercise the graph_mode plumbing.
        sharded = make_sharded(
            dataset,
            shards,
            "hash",
            merge_policy="elapsed-intervals",
            max_elapsed_intervals=2,
            batch_ticks=12,
            graph_mode=graph_mode,
        )
        workload = random_queries(dataset, count=8, seed=11)
        for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
            sharded.ingest(batch)
            low = sharded.low_watermark
            assert_methods_agree(
                reference_evaluator(prefix_network(dataset, THRESHOLD, through=low)),
                {f"sharded-{graph_mode}": sharded.query},
                workload,
                check_earliest=True,
                context=f"shards={shards}, graph_mode={graph_mode}, watermark={low}",
            )
        assert sharded.num_merges > 0
        assert all(
            shard.graph_records_written == 0 and shard.graph_rebuilds == 0
            for shard in sharded.shard_services
        ), "per-shard services must never build a graph, whatever the mode"

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_equivalence_on_persistent_backends(self, dataset, shards, backend):
        """Per-shard snapshot extents on a real device: answers at every
        watermark must stay bit-identical to the batch reference (the
        storage_backend axis of the sharded equivalence contract)."""
        sharded = make_sharded(
            dataset,
            shards,
            "hash",
            storage_config=backend_storage_config(backend),
            merge_policy="elapsed-intervals",
            max_elapsed_intervals=2,
            batch_ticks=12,
        )
        workload = random_queries(dataset, count=8, seed=23)
        for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
            sharded.ingest(batch)
            low = sharded.low_watermark
            assert_methods_agree(
                reference_evaluator(prefix_network(dataset, THRESHOLD, through=low)),
                {f"sharded-{backend}": sharded.query},
                workload,
                check_earliest=True,
                context=f"shards={shards}, backend={backend}, watermark={low}",
            )
        assert sharded.num_merges > 0, "merges must hit the real device"
        sharded.close()

    @pytest.mark.parametrize("router", ROUTERS)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_shuffled_shard_delivery_matches_prefix_reference(
        self, dataset, shards, router, seed
    ):
        """Sub-batches delivered in a random interleaving (per-shard order
        kept) must answer over the prefix the low-watermark makes complete —
        regardless of how far individual shards race ahead."""
        sharded = make_sharded(
            dataset, shards, router, max_delta_contacts=8, batch_ticks=6
        )
        queues = {shard: [] for shard in range(shards)}
        for batch in DatasetReplaySource(dataset, batch_ticks=6).batches():
            for shard, sub in enumerate(sharded.route_batch(batch)):
                queues[shard].append(sub)
        rng = random.Random(seed)
        position = {shard: 0 for shard in queues}
        workload = list(random_queries(dataset, count=6, seed=seed + 40))
        checked = 0
        while any(position[s] < len(queues[s]) for s in queues):
            candidates = [s for s in queues if position[s] < len(queues[s])]
            shard = rng.choice(candidates)
            sharded.ingest_shard(shard, queues[shard][position[shard]])
            position[shard] += 1
            low = sharded.low_watermark
            if low is None or rng.random() < 0.5:
                continue  # not globally started yet / sample the watermarks
            assert low == min(w for w in sharded.watermarks)
            assert_methods_agree(
                reference_evaluator(prefix_network(dataset, THRESHOLD, through=low)),
                {"sharded": sharded.query},
                workload,
                check_earliest=True,
                require_earliest=True,
                context=f"shards={shards}, router={router}, seed={seed}, low={low}",
            )
            checked += 1
        assert sharded.low_watermark == dataset.horizon.end
        if shards > 1:
            assert checked > 0

    def test_random_datasets_random_policies(self, shards):
        """Seeded-random property sweep: fresh datasets, random policy and
        batch size, full-drain equivalence against the batch reference."""
        for seed in range(3):
            rng = random.Random(1000 * shards + seed)
            data = RandomWaypointGenerator(
                num_objects=rng.randint(10, 24),
                horizon=rng.randint(30, 70),
                environment_size=(350.0, 350.0),
                seed=seed,
            ).generate()
            policy = rng.choice(
                ("delta-size", "elapsed-intervals", "amplification")
            )
            sharded = make_sharded(
                data,
                shards,
                rng.choice(ROUTERS),
                merge_policy=policy,
                max_delta_contacts=rng.choice((8, 64)),
                max_elapsed_intervals=rng.choice((2, 4)),
                max_amplification=rng.choice((0.25, 1.0)),
                batch_ticks=rng.choice((4, 9, 16)),
            )
            sharded.drain(data)
            assert_methods_agree(
                reference_evaluator(prefix_network(data, THRESHOLD)),
                {"sharded": sharded.query},
                random_queries(data, count=15, seed=seed),
                check_earliest=True,
                require_earliest=True,
                context=f"shards={shards}, seed={seed}, policy={policy}",
            )


# ----------------------------------------------------------------------
# routers
# ----------------------------------------------------------------------
class TestRouters:
    def test_hash_router_is_deterministic_and_total(self):
        router = HashRouter(4)
        event = SampleEvent(7, 0, Point(1.0, 1.0))
        assert router.assign(event) == router.assign(event) == router.shard_of(7)
        shards = {router.shard_of(object_id) for object_id in range(200)}
        assert shards == {0, 1, 2, 3}, "200 ids should hit all 4 shards"

    def test_spatial_router_pins_objects_to_first_cell(self):
        router = SpatialCellRouter(
            3, environment_size=(400.0, 400.0), spatial_resolution=60.0
        )
        assert router.shard_of(1) is None
        first = router.assign(SampleEvent(1, 0, Point(10.0, 10.0)))
        # The object moved across the environment: the assignment must not.
        later = router.assign(SampleEvent(1, 5, Point(390.0, 390.0)))
        assert later == first == router.shard_of(1)

    def test_make_router_dispatch_and_validation(self):
        assert isinstance(make_router("hash", 2, (100.0, 100.0), 10.0), HashRouter)
        assert isinstance(
            make_router("spatial", 2, (100.0, 100.0), 10.0), SpatialCellRouter
        )
        with pytest.raises(ConfigurationError):
            make_router("nope", 2, (100.0, 100.0), 10.0)
        with pytest.raises(ConfigurationError):
            HashRouter(0)

    def test_streaming_config_validates_sharding(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(shards=0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(router="mod")
        assert StreamingConfig().with_shards(4, router="spatial").shards == 4


# ----------------------------------------------------------------------
# the sharded ingestor
# ----------------------------------------------------------------------
class TestShardedStreamIngestor:
    def _ingestor(self, dataset, shards=3, router="hash"):
        ingestors = [
            StreamIngestor(
                dataset.environment_size,
                contact_config=CONTACTS,
                grid_config=GRID,
                name=f"shard{i}",
            )
            for i in range(shards)
        ]
        return ShardedStreamIngestor(
            ingestors,
            make_router(router, shards, dataset.environment_size, 60.0),
            THRESHOLD,
        )

    def test_route_batch_partitions_and_keeps_watermark(self, dataset):
        sharded = self._ingestor(dataset)
        batch = next(DatasetReplaySource(dataset, batch_ticks=4).batches())
        subs = sharded.route_batch(batch)
        assert len(subs) == 3
        assert all(sub.watermark == batch.watermark for sub in subs)
        assert sum(len(sub) for sub in subs) == len(batch)
        routed = sorted(
            (event.object_id, event.time) for sub in subs for event in sub
        )
        assert routed == sorted((e.object_id, e.time) for e in batch)

    def test_low_watermark_trails_the_laggard(self, dataset):
        sharded = self._ingestor(dataset, shards=2)
        batches = list(DatasetReplaySource(dataset, batch_ticks=5).batches())
        subs0 = sharded.route_batch(batches[0])
        sharded.ingest_shard(0, subs0[0])
        assert sharded.low_watermark is None, "shard 1 has not started"
        sharded.ingest_shard(1, subs0[1])
        assert sharded.low_watermark == batches[0].watermark
        subs1 = sharded.route_batch(batches[1])
        sharded.ingest_shard(0, subs1[0])
        assert sharded.watermarks == (batches[1].watermark, batches[0].watermark)
        assert sharded.low_watermark == batches[0].watermark

    def test_ingest_shard_rejects_misrouted_samples(self, dataset):
        sharded = self._ingestor(dataset)
        batch = next(DatasetReplaySource(dataset, batch_ticks=4).batches())
        subs = sharded.route_batch(batch)
        wrong = [shard for shard, sub in enumerate(subs) if len(sub)][0]
        victim = (wrong + 1) % 3
        with pytest.raises(ShardingError):
            sharded.ingest_shard(victim, subs[wrong])
        with pytest.raises(ShardingError):
            sharded.ingest_shard(99, subs[wrong])

    def test_lockstep_ingest_is_atomic_across_shards(self, dataset):
        sharded = self._ingestor(dataset)
        batches = list(DatasetReplaySource(dataset, batch_ticks=5).batches())
        sharded.ingest(batches[1])
        events_before = sharded.num_events
        with pytest.raises(WatermarkRegressionError):
            sharded.ingest(batches[0])  # regressed watermark: no shard moves
        assert sharded.num_events == events_before
        assert all(w == batches[1].watermark for w in sharded.watermarks)

    def test_contact_coverage_partitions_across_shards(self, dataset):
        """Intra-shard contacts plus cross-shard contacts must cover exactly
        the batch contact network (per pair, instant for instant)."""
        sharded = self._ingestor(dataset, shards=4, router="spatial")
        for batch in DatasetReplaySource(dataset, batch_ticks=7).batches():
            sharded.ingest(batch)

        def coverage(contacts):
            per_pair = {}
            for contact in contacts:
                key = (contact.first, contact.second)
                per_pair[key] = per_pair.get(key, 0) + contact.validity.length
            return per_pair

        union = []
        for shard in sharded.shards:
            union.extend(shard.contacts_through_watermark())
        union.extend(sharded.cross_shard_contacts())
        batch_network = prefix_network(dataset, THRESHOLD)
        assert coverage(union) == coverage(batch_network.contacts)
        # ... and the cross-shard tracker only ever reports true cross pairs.
        for contact in sharded.cross_shard_contacts():
            assert sharded.router.shard_of(contact.first) != sharded.router.shard_of(
                contact.second
            )

    def test_shard_events_account_for_everything(self, dataset):
        sharded = self._ingestor(dataset, shards=4)
        total = sum(
            sharded.ingest(batch)
            for batch in DatasetReplaySource(dataset, batch_ticks=10).batches()
        )
        assert sharded.num_events == total == sum(sharded.shard_events)
        assert sharded.num_flushed_intervals == sum(
            shard.num_flushed_intervals for shard in sharded.shards
        )


# ----------------------------------------------------------------------
# the coordinator service
# ----------------------------------------------------------------------
class TestShardedService:
    def test_engine_streaming_dispatches_on_shards(self, dataset):
        engine = ReachabilityEngine(dataset, contact_config=CONTACTS)
        assert isinstance(engine.streaming(), StreamingReachabilityService)
        sharded = engine.streaming(shards=4, router="spatial")
        assert isinstance(sharded, ShardedReachabilityService)
        assert sharded.num_shards == 4
        assert sharded.router.name == "spatial"
        config = StreamingConfig(shards=2)
        assert isinstance(
            engine.streaming(streaming_config=config), ShardedReachabilityService
        )

    def test_queries_before_any_ingest(self, dataset):
        service = make_sharded(dataset, 2, "hash")
        queries = list(random_queries(dataset, count=2, seed=0))
        assert not service.query(queries[0]).reachable
        same = queries[0].__class__(3, 3, queries[0].interval)
        result = service.query(same)
        assert result.reachable and result.earliest_time == same.interval.start

    def test_cache_hits_and_low_watermark_invalidation(self, dataset):
        service = make_sharded(dataset, 2, "hash", batch_ticks=10)
        batches = list(DatasetReplaySource(dataset, batch_ticks=10).batches())
        service.ingest(batches[0])
        query = next(iter(random_queries(dataset, count=1, seed=8)))
        service.query(query)
        service.query(query)
        assert service.stats.cache_hits == 1
        service.ingest(batches[1])  # low-watermark advance invalidates
        service.query(query)
        assert service.stats.cache_hits == 1
        assert service.stats.cache_misses == 2

    def test_forced_merge_freezes_every_started_shard(self, dataset):
        service = make_sharded(dataset, 4, "hash", max_delta_contacts=100_000)
        service.drain(dataset)
        assert service.num_merges == 0
        service.merge()
        low = service.low_watermark
        for shard in service.shard_services:
            if shard.ingestor.origin is None:
                continue  # a shard that never received an object
            assert shard.overlay.snapshot_watermark == low
            assert shard.overlay.delta_size == 0

    def test_stats_shape(self, dataset):
        service = make_sharded(dataset, 2, "spatial", batch_ticks=10)
        stats = service.drain(dataset)
        assert stats.shards == 2 and stats.router == "spatial"
        assert stats.events == dataset.num_objects * dataset.num_instants
        assert sum(stats.shard_events) == stats.events
        assert stats.low_watermark == dataset.horizon.end
        assert stats.events_per_second > 0

    def test_closed_service_rejects_use(self, dataset):
        """Regression: a closed coordinator must not serve stale cached
        answers or surface raw storage errors from its closed shards."""
        from repro.core import StreamingError
        from repro.workloads.queries import random_queries as _queries

        service = make_sharded(dataset, 2, "hash")
        batches = list(DatasetReplaySource(dataset, batch_ticks=30).batches())
        service.ingest(batches[0])
        query = next(iter(_queries(dataset, count=1, seed=3)))
        service.query(query)  # populate the coordinator cache
        service.close()
        with pytest.raises(StreamingError):
            service.query(query)
        with pytest.raises(StreamingError):
            service.ingest(batches[1])
        with pytest.raises(StreamingError):
            service.merge()
        service.close()  # idempotent


# ----------------------------------------------------------------------
# the close/reopen axis (crash-consistent recovery)
# ----------------------------------------------------------------------
class TestShardedCloseReopen:
    def test_reopen_matches_reference_at_every_watermark(
        self, dataset, shards, tmp_path
    ):
        """Close at each batch cut and reopen read-only: the restored
        coordinator answers over exactly the committed low-watermark prefix,
        bit-identically to the batch reference evaluator."""
        from equivalence import assert_reopened_matches_prefix
        from repro.streaming import ShardedSnapshotQueryService

        batches = list(DatasetReplaySource(dataset, batch_ticks=20).batches())
        workload = random_queries(dataset, count=12, seed=53)
        for cut in range(1, len(batches) + 1):
            directory = tmp_path / f"cut{cut}"
            directory.mkdir()
            config = backend_storage_config("file", storage_dir=str(directory))
            service = make_sharded(
                dataset, shards, "hash",
                storage_config=config, max_delta_contacts=24,
            )
            for batch in batches[:cut]:
                service.ingest(batch)
            expected = service.low_watermark
            service.close()
            reopened = ShardedSnapshotQueryService.open(config, name=service.name)
            assert reopened.watermark == expected
            assert reopened.num_shards == shards
            assert_reopened_matches_prefix(
                reopened, dataset, THRESHOLD, workload,
                context=f"shards={shards}, cut={cut}",
            )
            reopened.close()

    def test_close_after_interrupted_merge_reopens_consistently(
        self, dataset, tmp_path
    ):
        """A merge killed between build and adopt leaves the overlay
        untouched; a subsequent clean close must reopen to the full prefix."""
        from equivalence import assert_reopened_matches_prefix
        from repro.streaming import ShardedSnapshotQueryService
        from repro.testing import faults
        from repro.testing.faults import SimulatedCrash

        config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_sharded(
            dataset, 2, "hash", storage_config=config, max_delta_contacts=100_000
        )
        service.drain(dataset)
        faults.arm("merge-pre-adopt")
        with pytest.raises(SimulatedCrash):
            service.merge()
        faults.clear()
        low = service.low_watermark
        service.close()
        reopened = ShardedSnapshotQueryService.open(config, name=service.name)
        assert reopened.watermark == low == dataset.horizon.end
        assert_reopened_matches_prefix(
            reopened, dataset, THRESHOLD,
            random_queries(dataset, count=15, seed=61),
            context="close after interrupted merge",
        )
        reopened.close()
