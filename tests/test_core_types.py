"""Unit tests for the core value types (TimeInterval, Point, queries)."""

from __future__ import annotations

import pytest

from repro.core import (
    InvalidIntervalError,
    Point,
    QueryResult,
    ReachabilityQuery,
    TimeInterval,
)
from repro.core.types import euclidean_distance, span_of


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_module_level_distance_matches_method(self):
        a, b = Point(2, 3), Point(5, 9)
        assert euclidean_distance(a, b) == pytest.approx(a.distance_to(b))

    def test_translated_moves_both_axes(self):
        assert Point(1, 2).translated(3, -4) == Point(4, -2)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestTimeInterval:
    def test_length_counts_instances_inclusively(self):
        assert TimeInterval(3, 7).length == 5
        assert TimeInterval(4, 4).length == 1

    def test_rejects_reversed_interval(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(5, 3)

    def test_rejects_negative_start(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(-1, 3)

    def test_contains_endpoint_and_midpoint(self):
        interval = TimeInterval(2, 10)
        assert interval.contains(2)
        assert interval.contains(10)
        assert not interval.contains(11)
        assert interval.midpoint == 6

    def test_overlaps_and_intersection(self):
        a, b = TimeInterval(0, 5), TimeInterval(4, 9)
        assert a.overlaps(b) and b.overlaps(a)
        assert a.intersection(b) == TimeInterval(4, 5)

    def test_disjoint_intervals_do_not_intersect(self):
        a, b = TimeInterval(0, 3), TimeInterval(4, 6)
        assert not a.overlaps(b)
        assert a.intersection(b) is None

    def test_contains_interval(self):
        assert TimeInterval(0, 10).contains_interval(TimeInterval(3, 7))
        assert not TimeInterval(0, 10).contains_interval(TimeInterval(3, 12))

    def test_union_span_covers_gap(self):
        assert TimeInterval(0, 2).union_span(TimeInterval(8, 9)) == TimeInterval(0, 9)

    def test_split_covers_interval_without_overlap(self):
        parts = list(TimeInterval(0, 10).split(4))
        assert parts == [TimeInterval(0, 3), TimeInterval(4, 7), TimeInterval(8, 10)]
        assert sum(p.length for p in parts) == 11

    def test_split_rejects_non_positive_chunk(self):
        with pytest.raises(InvalidIntervalError):
            list(TimeInterval(0, 10).split(0))

    def test_iteration_yields_every_instant(self):
        assert list(TimeInterval(3, 6)) == [3, 4, 5, 6]
        assert len(TimeInterval(3, 6)) == 4

    def test_clipped_and_shifted(self):
        assert TimeInterval(2, 9).clipped(4, 20) == TimeInterval(4, 9)
        assert TimeInterval(2, 9).clipped(10, 20) is None
        assert TimeInterval(2, 9).shifted(5) == TimeInterval(7, 14)

    def test_span_of(self):
        assert span_of([5, 2, 9, 3]) == TimeInterval(2, 9)
        with pytest.raises(InvalidIntervalError):
            span_of([])


class TestQueryTypes:
    def test_query_reversed_swaps_endpoints(self):
        query = ReachabilityQuery(1, 2, TimeInterval(0, 10))
        reverse = query.reversed()
        assert (reverse.source, reverse.destination) == (2, 1)
        assert reverse.interval == query.interval

    def test_query_result_truthiness(self):
        assert bool(QueryResult(reachable=True))
        assert not bool(QueryResult(reachable=False))

    def test_query_result_defaults(self):
        result = QueryResult(reachable=False)
        assert result.io == 0.0
        assert result.earliest_time is None
        assert result.visited == 0
