"""Crash-consistency suite: ``kill -9`` anywhere must be recoverable.

Every test follows the same shape: drive a service over a persistent backend,
raise a :class:`~repro.testing.faults.SimulatedCrash` at a named fault point
compiled into the production code, drop the storage devices the way the
kernel would on SIGKILL (:func:`~repro.testing.faults.simulate_kill` — no
final flush), and then reopen from whatever earlier explicit flushes made
durable.  The recovered service must answer bit-identically to the batch
reference evaluator over the prefix its manifest committed — and the
full-resume path must keep ingesting from there.
"""

from __future__ import annotations

import os
import random

import pytest

from equivalence import (
    EQUIVALENCE_BACKENDS,
    assert_methods_agree,
    assert_reopened_matches_prefix,
    backend_storage_config,
    prefix_network,
    reference_evaluator,
)
from repro.core import (
    ContactConfig,
    ReachGraphConfig,
    ReachGridConfig,
    StreamingConfig,
    StreamingError,
)
from repro.generators import RandomWaypointGenerator
from repro.reachgraph import ReachGraphIndex
from repro.storage import StorageSystem
from repro.streaming import (
    AsyncReachabilityService,
    DatasetReplaySource,
    ShardedReachabilityService,
    ShardedSnapshotQueryService,
    SnapshotQueryService,
    StreamingReachabilityService,
)
from repro.testing import faults
from repro.testing.faults import SimulatedCrash, simulate_kill
from repro.workloads.queries import random_queries

THRESHOLD = 30.0
GRID = ReachGridConfig(temporal_resolution=8, spatial_resolution=60.0)
CONTACTS = ContactConfig(distance_threshold=THRESHOLD)


@pytest.fixture(scope="module")
def dataset():
    return RandomWaypointGenerator(
        num_objects=20, horizon=60, environment_size=(400.0, 400.0), seed=5
    ).generate()


def make_service(dataset, storage_config, auto_merge=True, **config_overrides):
    return StreamingReachabilityService.for_dataset(
        dataset,
        contact_config=CONTACTS,
        grid_config=GRID,
        streaming_config=StreamingConfig(**config_overrides),
        storage_config=storage_config,
    )


def kill_unsharded(service):
    simulate_kill(service.overlay.storage, service.ingestor.storage)


def kill_sharded(service):
    for shard in service.shard_services:
        kill_unsharded(shard)
    simulate_kill(service.storage)


def open_fds():
    return len(os.listdir("/proc/self/fd"))


# ----------------------------------------------------------------------
# the fault-point registry itself
# ----------------------------------------------------------------------
class TestFaultRegistry:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError):
            faults.arm("no-such-point")
        with pytest.raises(ValueError):
            faults.arm("flush-post-manifest", after=-1)

    def test_disarmed_probe_is_a_noop(self):
        faults.crash_point("flush-post-manifest")  # nothing armed: no raise

    def test_armed_probe_fires_once_then_disarms(self):
        faults.arm("merge-pre-adopt")
        assert "merge-pre-adopt" in faults.armed()
        with pytest.raises(SimulatedCrash) as exc:
            faults.crash_point("merge-pre-adopt")
        assert exc.value.point == "merge-pre-adopt"
        assert faults.armed() == ()
        faults.crash_point("merge-pre-adopt")  # fired probes disarm themselves

    def test_after_counts_down_hits(self):
        faults.arm("shard-close", after=2)
        faults.crash_point("shard-close")
        faults.crash_point("shard-close")
        with pytest.raises(SimulatedCrash):
            faults.crash_point("shard-close")

    def test_simulated_crash_escapes_ordinary_cleanup(self):
        # Production code cleans up with ``except Exception``; a simulated
        # kill must not be swallowed by handlers a real SIGKILL never runs.
        assert not issubclass(SimulatedCrash, Exception)

    def test_every_known_point_is_compiled_into_production_code(self):
        import repro.reachgraph.index as graph_index
        import repro.storage.backends.file as file_backend
        import repro.storage.backends.mmapfile as mmap_backend
        import repro.streaming.coordinator as coordinator
        import repro.streaming.delta as delta
        import repro.streaming.ingest as ingest
        import repro.streaming.service as service
        import inspect

        source = "".join(
            inspect.getsource(module)
            for module in (
                coordinator,
                delta,
                service,
                ingest,
                graph_index,
                file_backend,
                mmap_backend,
            )
        )
        for point in faults.KNOWN_FAULT_POINTS:
            assert f'crash_point("{point}")' in source, point


# ----------------------------------------------------------------------
# the flush commit point (satellite: manifest-last ordering)
# ----------------------------------------------------------------------
class TestFlushCommitPoint:
    @pytest.mark.parametrize("point", ("flush-post-ingestor", "flush-post-manifest"))
    def test_crash_between_flush_halves_leaves_wal_ahead_never_behind(
        self, point, tmp_path, dataset
    ):
        """The manifest write is the commit point: its dependents (ingestor
        WAL, grid extents) flush first, so a crash anywhere inside flush()
        leaves the WAL at or past the manifest — the read-only reopen serves
        the last committed manifest, the full resume recovers the WAL tail."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(dataset, storage_config, max_delta_contacts=10_000)
        batches = list(DatasetReplaySource(dataset, batch_ticks=12).batches())
        for batch in batches[:3]:
            service.ingest(batch)
        service.flush()
        committed = service.watermark
        for batch in batches[3:]:
            service.ingest(batch)
        wal_watermark = service.watermark
        faults.arm(point)
        with pytest.raises(SimulatedCrash):
            service.flush()
        kill_unsharded(service)

        readonly = SnapshotQueryService.open(storage_config, name=service.name)
        assert readonly.watermark == committed, (
            f"{point}: manifest must still be the pre-crash commit point"
        )
        assert_reopened_matches_prefix(
            readonly,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=15, seed=7),
            context=f"{point}, read-only reopen",
        )
        readonly.close()

        resumed = StreamingReachabilityService.open(storage_config, name=service.name)
        # Both points sit after ingestor.flush(), so the WAL is durable to the
        # full ingested watermark even though the manifest is not.
        assert resumed.watermark == wal_watermark
        assert_methods_agree(
            reference_evaluator(
                prefix_network(dataset, THRESHOLD, through=resumed.watermark)
            ),
            {"resumed": resumed.query},
            random_queries(dataset, count=15, seed=7),
            check_earliest=True,
            require_earliest=True,
            context=f"{point}, full resume",
        )
        resumed.close()


# ----------------------------------------------------------------------
# crashes inside a merge (pre-adopt) and inside a compaction
# ----------------------------------------------------------------------
class TestCrashDuringMerge:
    def test_crash_between_build_and_adopt_then_resume_ingesting(
        self, tmp_path, dataset
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(
            dataset, storage_config, max_delta_contacts=10_000
        )
        service.auto_merge = False
        batches = list(DatasetReplaySource(dataset, batch_ticks=12).batches())
        for batch in batches[:3]:
            service.ingest(batch)
            service.flush()
        faults.arm("merge-pre-adopt")
        with pytest.raises(SimulatedCrash):
            service.merge()
        kill_unsharded(service)

        resumed = StreamingReachabilityService.open(
            storage_config, name=service.name, auto_merge=False
        )
        assert resumed.watermark == batches[2].watermark
        assert resumed.overlay.snapshot_watermark is None, (
            "the crashed merge must not have adopted anything"
        )
        workload = random_queries(dataset, count=12, seed=11)
        for batch in batches[3:]:
            resumed.ingest(batch)
            assert_methods_agree(
                reference_evaluator(
                    prefix_network(dataset, THRESHOLD, through=resumed.watermark)
                ),
                {"resumed": resumed.query},
                workload,
                check_earliest=True,
                require_earliest=True,
                context=f"post-crash ingest, watermark={resumed.watermark}",
            )
        resumed.merge()  # the disarmed merge path works again after recovery
        assert resumed.overlay.snapshot_watermark == dataset.horizon.end
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"resumed": resumed.query},
            workload,
            check_earliest=True,
            context="post-recovery merge",
        )
        resumed.close()

    def test_crash_mid_compaction_recovers_committed_state(self, tmp_path, dataset):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(
            dataset,
            storage_config,
            max_delta_contacts=10_000,
            compaction_max_runs=1,
        )
        service.auto_merge = False
        batches = list(DatasetReplaySource(dataset, batch_ticks=12).batches())
        service.ingest(batches[0])
        service.merge()  # run 1 (no compaction: 1 run <= max_runs)
        service.ingest(batches[1])
        service.flush()
        committed = service.watermark
        faults.arm("compaction-mid")
        with pytest.raises(SimulatedCrash):
            service.merge()  # run 2 appended, compaction rewrites... crash
        kill_unsharded(service)

        readonly = SnapshotQueryService.open(storage_config, name=service.name)
        assert readonly.watermark == committed
        assert_reopened_matches_prefix(
            readonly,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=15, seed=13),
            context="mid-compaction crash, read-only reopen",
        )
        readonly.close()

        resumed = StreamingReachabilityService.open(storage_config, name=service.name)
        for batch in batches[2:]:
            resumed.ingest(batch)
        resumed.merge()
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"resumed": resumed.query},
            random_queries(dataset, count=15, seed=13),
            check_earliest=True,
            context="mid-compaction crash, resumed to horizon",
        )
        resumed.close()


# ----------------------------------------------------------------------
# corrupt / missing manifests must not leak handles or files (satellite)
# ----------------------------------------------------------------------
class TestCorruptManifestRestore:
    def test_missing_overlay_metadata_closes_the_probed_device(
        self, tmp_path, dataset
    ):
        """A device file whose manifest never recorded an overlay (e.g. a
        foreign storage system of the same name) must fail the reopen *and*
        release the probed device handle."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        ghost = StorageSystem(storage_config, name="ghost-overlay", attach=False)
        ghost.flush()
        ghost.close()
        files_before = sorted(p.name for p in tmp_path.iterdir())
        fds_before = open_fds()
        with pytest.raises(StreamingError):
            SnapshotQueryService.open(storage_config, name="ghost")
        assert open_fds() == fds_before, "reopen failure leaked a device handle"
        assert sorted(p.name for p in tmp_path.iterdir()) == files_before, (
            "reopen failure scattered junk files into the storage directory"
        )

    def test_garbage_manifest_contents_close_the_device_on_failure(
        self, tmp_path, dataset
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        broken = StorageSystem(storage_config, name="broken-overlay", attach=False)
        broken.put_metadata("overlay-manifest", {"watermark": 3})  # keys missing
        broken.flush()
        broken.close()
        files_before = sorted(p.name for p in tmp_path.iterdir())
        fds_before = open_fds()
        with pytest.raises(KeyError):
            SnapshotQueryService.open(storage_config, name="broken")
        assert open_fds() == fds_before, "reopen failure leaked a device handle"
        assert sorted(p.name for p in tmp_path.iterdir()) == files_before

    def test_sharded_open_with_wrong_name_neither_creates_files_nor_leaks(
        self, tmp_path
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        fds_before = open_fds()
        with pytest.raises(StreamingError):
            ShardedSnapshotQueryService.open(storage_config, name="no-such-service")
        assert open_fds() == fds_before
        assert list(tmp_path.iterdir()) == []

    def test_sharded_open_with_missing_shard_closes_everything(
        self, tmp_path, dataset
    ):
        """A coordinator manifest whose shard devices are gone (partial data
        loss) must fail the reopen without leaking the handles opened before
        the failure was noticed."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        sharded = ShardedReachabilityService.for_dataset(
            dataset,
            contact_config=CONTACTS,
            grid_config=GRID,
            streaming_config=StreamingConfig(shards=2),
            storage_config=storage_config,
        )
        sharded.drain(dataset)
        sharded.close()
        for path in tmp_path.iterdir():
            if "shard1-overlay" in path.name:
                path.unlink()
        fds_before = open_fds()
        with pytest.raises(StreamingError):
            ShardedSnapshotQueryService.open(storage_config, name=sharded.name)
        assert open_fds() == fds_before, "partial sharded reopen leaked handles"


# ----------------------------------------------------------------------
# the restored ReachGraph fast path (tentpole: graph answers, not union)
# ----------------------------------------------------------------------
class TestGraphPathRestore:
    def test_reopened_service_answers_through_a_restored_graph(
        self, tmp_path, dataset
    ):
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(dataset, storage_config, max_delta_contacts=10_000)
        service.auto_merge = False
        service.drain(dataset)
        service.merge()
        assert service.overlay.has_reachgraph
        service.close()

        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        assert reopened.overlay.has_reachgraph, (
            "the reopened service must answer through the graph path, "
            "not just the union path"
        )
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=25, seed=17),
            context="graph-path reopen",
        )
        reopened.close()

    def test_restored_graph_is_structurally_identical_to_a_fresh_build(
        self, tmp_path, dataset
    ):
        """Partition by partition, vertex record by vertex record — interval,
        members, DAG edges, long-edge layers, partition assignment — the
        restored index equals the index a from-scratch build produces over
        the same prefix."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(dataset, storage_config, max_delta_contacts=10_000)
        service.auto_merge = False
        service.drain(dataset)
        service.merge()
        service.close()

        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        restored = reopened.overlay.snapshot_processor.index

        network = prefix_network(dataset, THRESHOLD)
        fresh = ReachGraphIndex(
            dataset,
            ReachGraphConfig(),
            contact_config=CONTACTS,
            contact_network=network,
        ).build()

        assert restored.num_partitions == fresh.num_partitions
        assert restored.num_vertices == fresh.num_vertices
        for partition_id in range(fresh.num_partitions):
            restored_records = sorted(
                restored.read_partition(partition_id), key=lambda r: r.node_id
            )
            fresh_records = sorted(
                fresh.read_partition(partition_id), key=lambda r: r.node_id
            )
            assert restored_records == fresh_records, (
                f"partition {partition_id} diverged after restore"
            )
        assert restored.catalog()["window_cursors"] == (
            fresh.catalog()["window_cursors"]
        )
        reopened.close()


# ----------------------------------------------------------------------
# sharded + async reopen (tentpole: every service shape recovers)
# ----------------------------------------------------------------------
class TestShardedRecovery:
    def make_sharded(self, dataset, storage_config, shards=2, **config_overrides):
        return ShardedReachabilityService.for_dataset(
            dataset,
            contact_config=CONTACTS,
            grid_config=GRID,
            streaming_config=StreamingConfig(shards=shards, **config_overrides),
            storage_config=storage_config,
        )

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_close_reopen_answers_at_the_global_low_watermark(
        self, backend, tmp_path, dataset
    ):
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        sharded = self.make_sharded(
            dataset, storage_config, max_delta_contacts=24, batch_ticks=8
        )
        sharded.drain(dataset)
        sharded.merge()
        sharded.close()

        reopened = ShardedSnapshotQueryService.open(storage_config, name=sharded.name)
        assert reopened.watermark == dataset.horizon.end
        assert reopened.num_shards == 2
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=25, seed=19),
            context=f"backend={backend}, sharded reopen",
        )
        reopened.close()

    def test_crash_between_shard_flushes_and_coordinator_manifest(
        self, tmp_path, dataset
    ):
        """The coordinator manifest is the sharded commit point: a crash
        after the shard flushes but before it leaves the shards durably
        ahead; the reopen clips at the low-watermark the coordinator last
        committed."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        sharded = self.make_sharded(dataset, storage_config, max_delta_contacts=24)
        batches = list(DatasetReplaySource(dataset, batch_ticks=12).batches())
        for batch in batches[:3]:
            sharded.ingest(batch)
        sharded.flush()
        committed = sharded.low_watermark
        for batch in batches[3:]:
            sharded.ingest(batch)
        faults.arm("sharded-flush-post-shards")
        with pytest.raises(SimulatedCrash):
            sharded.flush()
        kill_sharded(sharded)

        reopened = ShardedSnapshotQueryService.open(storage_config, name=sharded.name)
        assert reopened.watermark == committed, (
            "answers must clip at the committed low-watermark, not at "
            "whatever the shards got ahead to"
        )
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=15, seed=23),
            context="sharded flush crash",
        )
        reopened.close()

    def test_crash_between_per_shard_closes_loses_nothing(self, tmp_path, dataset):
        """close() makes everything durable before releasing any device, so a
        kill landing between per-shard closes recovers the full prefix."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        sharded = self.make_sharded(dataset, storage_config, max_delta_contacts=24)
        sharded.drain(dataset)
        final = sharded.low_watermark
        faults.arm("shard-close")  # fires right after shard 0's device closes
        with pytest.raises(SimulatedCrash):
            sharded.close()
        kill_sharded(sharded)

        reopened = ShardedSnapshotQueryService.open(storage_config, name=sharded.name)
        assert reopened.watermark == final == dataset.horizon.end
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=15, seed=29),
            context="mid-close crash",
        )
        reopened.close()


class TestAsyncRecovery:
    def test_aclose_then_reopen_matches_reference(self, tmp_path, dataset):
        import asyncio

        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = AsyncReachabilityService.for_dataset(
            dataset,
            contact_config=CONTACTS,
            grid_config=GRID,
            streaming_config=StreamingConfig(
                shards=2, merge_policy="elapsed-intervals", max_elapsed_intervals=2
            ),
            storage_config=storage_config,
        )

        async def scenario():
            async with service:
                for batch in DatasetReplaySource(dataset, batch_ticks=12).batches():
                    await service.ingest(batch)
                await service.drain()

        asyncio.run(asyncio.wait_for(scenario(), timeout=120.0))

        reopened = AsyncReachabilityService.reopen(storage_config, name=service.name)
        assert reopened.watermark == dataset.horizon.end
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=25, seed=31),
            context="async reopen",
        )
        reopened.close()

    def test_kill_behind_the_event_loops_recovers_the_committed_prefix(
        self, tmp_path, dataset
    ):
        import asyncio

        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = AsyncReachabilityService.for_dataset(
            dataset,
            contact_config=CONTACTS,
            grid_config=GRID,
            streaming_config=StreamingConfig(shards=2),
            storage_config=storage_config,
        )
        batches = list(DatasetReplaySource(dataset, batch_ticks=12).batches())

        async def scenario():
            # Deliberately no ``async with``: a clean exit would aclose() and
            # make everything durable.  The loop teardown cancels the shard
            # ingest tasks exactly the way a dying process would.
            await service.__aenter__()
            for batch in batches[:3]:
                await service.ingest(batch)
            await service.drain()
            service.service.flush()
            committed = service.low_watermark
            for batch in batches[3:]:
                await service.ingest(batch)
            await service.drain()
            # A flush interrupted mid-way (the wrapped sharded service's
            # commit protocol), then the process dies:
            faults.arm("sharded-flush-post-shards")
            with pytest.raises(SimulatedCrash):
                service.service.flush()
            return committed

        committed = asyncio.run(asyncio.wait_for(scenario(), timeout=120.0))
        kill_sharded(service.service)

        reopened = AsyncReachabilityService.reopen(storage_config, name=service.name)
        assert reopened.watermark == committed
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=15, seed=37),
            context="async kill recovery",
        )
        reopened.close()


# ----------------------------------------------------------------------
# the randomized kill matrix (acceptance: any point, any shape, any backend)
# ----------------------------------------------------------------------
UNSHARDED_POINTS = (
    "flush-post-ingestor",
    "flush-post-manifest",
    "merge-pre-adopt",
)
SHARDED_POINTS = (
    "flush-post-ingestor",
    "sharded-flush-post-shards",
    "merge-pre-adopt",
    "shard-close",
)


class TestRandomizedKill:
    """Seeded random crashes: pick a fault point and an arming batch, drive
    the stream with a flush after every batch, kill on the simulated crash,
    and prove the reopened service answers bit-identically to the batch
    reference over whatever prefix its manifest committed."""

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_unsharded_random_kill_then_reopen_and_resume(
        self, backend, seed, tmp_path, dataset
    ):
        rng = random.Random(seed)
        point = rng.choice(UNSHARDED_POINTS)
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = make_service(dataset, storage_config, max_delta_contacts=16)
        batches = list(DatasetReplaySource(dataset, batch_ticks=8).batches())
        arm_at = rng.randrange(1, len(batches) - 1)
        crashed = False
        for index, batch in enumerate(batches):
            if index == arm_at:
                faults.arm(point)
            try:
                service.ingest(batch)
                service.flush()
            except SimulatedCrash:
                crashed = True
                break
        if crashed:
            kill_unsharded(service)
        else:
            faults.clear()  # a late-armed merge point may never fire
            service.close()

        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        assert reopened.watermark is not None
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=12, seed=41 + seed),
            context=f"random kill: backend={backend}, seed={seed}, point={point}, "
            f"crashed={crashed}",
        )
        reopened.close()

        # ...and the full-resume path continues the stream to its horizon.
        resumed = StreamingReachabilityService.open(storage_config, name=service.name)
        recovered = resumed.watermark
        assert recovered is not None
        for batch in batches:
            if batch.watermark > recovered:
                resumed.ingest(batch)
        assert resumed.watermark == dataset.horizon.end
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"resumed": resumed.query},
            random_queries(dataset, count=12, seed=43 + seed),
            check_earliest=True,
            context=f"random kill resume: backend={backend}, seed={seed}, "
            f"point={point}",
        )
        resumed.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_async_random_kill_then_reopen(self, backend, seed, tmp_path, dataset):
        import asyncio

        rng = random.Random(200 + seed)
        point = rng.choice(("flush-post-ingestor", "sharded-flush-post-shards"))
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = AsyncReachabilityService.for_dataset(
            dataset,
            contact_config=CONTACTS,
            grid_config=GRID,
            streaming_config=StreamingConfig(shards=2, max_delta_contacts=16),
            storage_config=storage_config,
        )
        batches = list(DatasetReplaySource(dataset, batch_ticks=8).batches())
        arm_at = rng.randrange(1, len(batches) - 1)

        async def scenario():
            # No ``async with``: on a crash the process dies with the shard
            # loops still running; the loop teardown cancels them like a kill.
            await service.__aenter__()
            for index, batch in enumerate(batches):
                if index == arm_at:
                    faults.arm(point)
                try:
                    await service.ingest(batch)
                    await service.drain()
                    service.service.flush()
                except SimulatedCrash:
                    return True
            faults.clear()  # a late arm may never have fired
            await service.aclose()
            return False

        crashed = asyncio.run(asyncio.wait_for(scenario(), timeout=120.0))
        if crashed:
            kill_sharded(service.service)

        reopened = AsyncReachabilityService.reopen(storage_config, name=service.name)
        assert reopened.watermark is not None
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=12, seed=53 + seed),
            context=f"random async kill: backend={backend}, seed={seed}, "
            f"point={point}, crashed={crashed}",
        )
        reopened.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_sharded_random_kill_then_reopen(self, backend, seed, tmp_path, dataset):
        rng = random.Random(100 + seed)
        point = rng.choice(SHARDED_POINTS)
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        sharded = ShardedReachabilityService.for_dataset(
            dataset,
            contact_config=CONTACTS,
            grid_config=GRID,
            streaming_config=StreamingConfig(shards=2, max_delta_contacts=16),
            storage_config=storage_config,
        )
        batches = list(DatasetReplaySource(dataset, batch_ticks=8).batches())
        arm_at = rng.randrange(1, len(batches) - 1)
        crashed = False
        for index, batch in enumerate(batches):
            if index == arm_at:
                faults.arm(point)
            try:
                sharded.ingest(batch)
                sharded.flush()
            except SimulatedCrash:
                crashed = True
                break
        if not crashed:
            try:
                sharded.close()  # "shard-close" can only fire here
            except SimulatedCrash:
                crashed = True
            faults.clear()
        if crashed:
            kill_sharded(sharded)

        reopened = ShardedSnapshotQueryService.open(storage_config, name=sharded.name)
        assert reopened.watermark is not None
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=12, seed=47 + seed),
            context=f"random sharded kill: backend={backend}, seed={seed}, "
            f"point={point}, crashed={crashed}",
        )
        reopened.close()


# ----------------------------------------------------------------------
# the space-reclamation pipeline's crash points (GC, WAL truncation, repack)
# ----------------------------------------------------------------------
SPACE_POINTS = (
    "gc-pre-commit",
    "gc-post-copy",
    "wal-truncate-pre-commit",
    "repack-pre-adopt",
)


class TestSpaceReclamationKill:
    """The four reclamation crash points, each killed at a seeded random
    batch of a stream running the whole space pipeline — policy GC, leveled
    compaction, frontier repacks, WAL truncation.  A crash anywhere in a
    reclaim must be invisible after reopen: no resurrected garbage answers,
    no lost live extents, and the resumed service drives the stream to its
    horizon in agreement with the batch reference evaluator."""

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("point", SPACE_POINTS)
    def test_space_point_random_kill_then_reopen_and_resume(
        self, point, backend, tmp_path, dataset
    ):
        rng = random.Random(f"{point}:{backend}")  # str seeds are stable
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = make_service(
            dataset,
            storage_config,
            max_delta_contacts=16,
            compaction_max_runs=2,
            gc_trigger_ratio=0.3,
            graph_repack_min_partitions=2,
        )
        batches = list(DatasetReplaySource(dataset, batch_ticks=6).batches())
        # Arm early so reclaim/repack/truncate probes (which fire on merges
        # and flushes further into the stream) have room to trigger.
        arm_at = rng.randrange(1, max(2, len(batches) // 2))
        crashed = False
        for index, batch in enumerate(batches):
            if index == arm_at:
                faults.arm(point)
            try:
                service.ingest(batch)
                service.flush()
            except SimulatedCrash as crash:
                assert crash.point == point
                crashed = True
                break
        if crashed:
            kill_unsharded(service)
        else:
            faults.clear()  # the armed point may legitimately never fire
            service.close()

        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        assert reopened.watermark is not None
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            random_queries(dataset, count=12, seed=61),
            context=f"space kill: backend={backend}, point={point}, "
            f"crashed={crashed}",
        )
        reopened.close()

        resumed = StreamingReachabilityService.open(storage_config, name=service.name)
        recovered = resumed.watermark
        assert recovered is not None
        for batch in batches:
            if batch.watermark > recovered:
                resumed.ingest(batch)
        assert resumed.watermark == dataset.horizon.end
        # A final reclaim on the recovered service: the interrupted pass left
        # nothing behind that a fresh pass trips over, and the space bound
        # holds afterwards.
        resumed.reclaim()
        overlay = resumed.overlay.storage
        ingest = resumed.ingestor.storage
        assert overlay.garbage_blocks == 0
        assert ingest.garbage_blocks == 0
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"resumed": resumed.query},
            random_queries(dataset, count=12, seed=67),
            check_earliest=True,
            context=f"space kill resume: backend={backend}, point={point}",
        )
        resumed.close()
        # No GC scratch file may survive a completed recovery + reclaim.
        import glob as _glob

        strays = _glob.glob(f"{tmp_path}/*.gc")
        assert not strays, f"leftover GC scratch files: {strays}"


class TestWalTruncation:
    """Regression tests for the flush-time WAL truncation commit."""

    def test_crash_between_checkpoint_and_commit_replays_old_journal(
        self, tmp_path, dataset
    ):
        """``wal-truncate-pre-commit`` sits after the in-memory truncation
        and checkpoint write but before the device flush that commits them:
        a kill there must leave the *previous* durable manifest — old
        checkpoint, old journal extents — and resume must replay it."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(
            dataset, storage_config, max_delta_contacts=10_000
        )
        service.auto_merge = False
        batches = list(DatasetReplaySource(dataset, batch_ticks=6).batches())
        for batch in batches[:3]:
            service.ingest(batch)
            service.flush()
        committed = service.watermark
        service.ingest(batches[3])
        faults.arm("wal-truncate-pre-commit")
        with pytest.raises(SimulatedCrash):
            service.flush()
        kill_unsharded(service)

        resumed = StreamingReachabilityService.open(storage_config, name=service.name)
        assert resumed.watermark == committed, (
            "the interrupted truncation must not have committed batch 4"
        )
        for batch in batches[3:]:
            resumed.ingest(batch)
        assert resumed.watermark == dataset.horizon.end
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"resumed": resumed.query},
            random_queries(dataset, count=12, seed=71),
            check_earliest=True,
            require_earliest=True,
            context="WAL truncation crash, resumed to horizon",
        )
        resumed.close()

    def test_reopened_journal_stays_truncated(self, tmp_path, dataset):
        """A clean close/reopen cycle restores from the state snapshot with
        an empty WAL, and further flushes keep it empty — truncation
        survives restarts instead of regressing to full-journal replay."""
        storage_config = backend_storage_config("mmap", storage_dir=str(tmp_path))
        service = make_service(
            dataset, storage_config, max_delta_contacts=10_000
        )
        service.auto_merge = False
        batches = list(DatasetReplaySource(dataset, batch_ticks=6).batches())
        for batch in batches[:4]:
            service.ingest(batch)
        service.close()

        resumed = StreamingReachabilityService.open(storage_config, name=service.name)
        assert resumed.ingestor.journal_blocks == 0, (
            "restore must come from the checkpoint snapshot, not a journal"
        )
        for batch in batches[4:]:
            resumed.ingest(batch)
            resumed.flush()
            assert resumed.ingestor.journal_blocks == 0
        assert resumed.watermark == dataset.horizon.end
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"resumed": resumed.query},
            random_queries(dataset, count=12, seed=73),
            check_earliest=True,
            require_earliest=True,
            context="journal stays truncated across reopen",
        )
        resumed.close()
