"""Space-bound suite: device footprint must track live bytes under GC.

The reclamation pipeline this pins: leveled compaction and frontier repacks
turn superseded snapshot runs and cold graph partitions into catalog garbage,
WAL truncation keeps the ingest journal from growing with the stream, and
copy-forward device GC (:meth:`StorageSystem.reclaim`, reached through
``StreamingReachabilityService.reclaim`` and the ``gc_trigger_ratio`` policy)
recycles the garbage blocks.  The bound the whole PR promises: after a GC
pass the device holds at most ``1.5×`` the blocks live structures reference —
on every backend, in both graph-maintenance modes — while every answer stays
bit-identical to the batch reference evaluator, including after close/reopen.
"""

from __future__ import annotations

import glob
import random

import pytest

from equivalence import (
    EQUIVALENCE_BACKENDS,
    assert_methods_agree,
    assert_reopened_matches_prefix,
    backend_storage_config,
    prefix_network,
    reference_evaluator,
)
from repro.core import ContactConfig, ReachGridConfig, StreamingConfig
from repro.generators import RandomWaypointGenerator
from repro.streaming import (
    DatasetReplaySource,
    SnapshotQueryService,
    StreamingReachabilityService,
)
from repro.workloads.queries import random_queries

THRESHOLD = 30.0
GRID = ReachGridConfig(temporal_resolution=8, spatial_resolution=60.0)
CONTACTS = ContactConfig(distance_threshold=THRESHOLD)

#: The sim backend reclaims too (its block store shrinks), so it rides the
#: same matrix as the persistent devices.
SPACE_BACKENDS = ("sim",) + EQUIVALENCE_BACKENDS

#: The acceptance bound: post-GC device blocks over live blocks.
SPACE_BOUND = 1.5


@pytest.fixture(scope="module")
def dataset():
    return RandomWaypointGenerator(
        num_objects=20, horizon=60, environment_size=(400.0, 400.0), seed=7
    ).generate()


def make_service(dataset, storage_config, **overrides):
    config = dict(
        max_delta_contacts=24,
        compaction_max_runs=2,
        gc_trigger_ratio=0.35,
        graph_repack_min_partitions=2,
    )
    config.update(overrides)
    return StreamingReachabilityService.for_dataset(
        dataset,
        contact_config=CONTACTS,
        grid_config=GRID,
        streaming_config=StreamingConfig(**config),
        storage_config=storage_config,
    )


def device_blocks(service):
    return (
        service.overlay.storage.disk.num_blocks
        + service.ingestor.storage.disk.num_blocks
    )


def live_blocks(service):
    return (
        service.overlay.storage.live_blocks + service.ingestor.storage.live_blocks
    )


def garbage_blocks(service):
    return (
        service.overlay.storage.garbage_blocks
        + service.ingestor.storage.garbage_blocks
    )


def assert_no_stray_gc_files(storage_dir):
    strays = glob.glob(f"{storage_dir}/*.gc")
    assert not strays, f"leftover GC scratch files: {strays}"


# ----------------------------------------------------------------------
# the randomized space bound (acceptance: every backend × graph mode)
# ----------------------------------------------------------------------
class TestSpaceBound:
    """Drain a randomized multi-merge stream with the whole reclamation
    pipeline armed, reclaim, and check the device-over-live bound plus
    answer fidelity (live and reopened)."""

    # ``graph_mode`` is parametrized by the shared conftest hook (both
    # maintenance modes, or the one CI's --graph-mode flag pins).
    @pytest.mark.parametrize("backend", SPACE_BACKENDS)
    def test_device_blocks_bounded_after_gc(
        self, backend, graph_mode, tmp_path, dataset
    ):
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = make_service(dataset, storage_config, graph_mode=graph_mode)
        stats = service.drain(DatasetReplaySource(dataset, batch_ticks=6))
        assert stats.events > 0
        assert service.num_merges >= 3, "the stream must force multiple merges"
        service.reclaim()

        live = live_blocks(service)
        device = device_blocks(service)
        assert live > 0
        assert device <= SPACE_BOUND * live, (
            f"backend={backend}, graph_mode={graph_mode}: device={device} "
            f"blocks exceeds {SPACE_BOUND}x live={live}"
        )
        # A dense copy-forward leaves no garbage at all right after the pass.
        assert garbage_blocks(service) == 0

        # Reclaim moves blocks, never answers: the post-GC service still
        # agrees with the batch reference evaluator over the full stream.
        workload = random_queries(dataset, count=12, seed=29)
        assert_methods_agree(
            reference_evaluator(prefix_network(dataset, THRESHOLD)),
            {"post-gc": service.query},
            workload,
            check_earliest=True,
            context=f"post-GC, backend={backend}, graph_mode={graph_mode}",
        )

        if storage_config is None:
            service.close()
            return
        service.close()
        assert_no_stray_gc_files(tmp_path)
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        assert_reopened_matches_prefix(
            reopened,
            dataset,
            THRESHOLD,
            workload,
            context=f"reopen after GC, backend={backend}, graph_mode={graph_mode}",
        )
        reopened.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_randomized_reclaim_points_keep_equivalence(
        self, backend, seed, tmp_path, dataset
    ):
        """Reclaim at random watermarks mid-stream; answers never drift.

        The randomized axis of the space suite: a seeded RNG picks batches
        after which an explicit :meth:`reclaim` runs, and after every such
        pass the service must agree with the batch reference evaluator over
        exactly its current watermark prefix (equivalence at every reclaimed
        watermark), with the device bound holding each time.
        """
        rng = random.Random(100 + seed)
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        # Policy GC off: this test drives reclaim() explicitly.
        service = make_service(dataset, storage_config, gc_trigger_ratio=0.0)
        workload = random_queries(dataset, count=8, seed=31 + seed)
        batches = list(DatasetReplaySource(dataset, batch_ticks=6).batches())
        reclaim_points = sorted(
            rng.sample(range(1, len(batches)), k=min(3, len(batches) - 1))
        )
        reclaimed = 0
        for index, batch in enumerate(batches):
            service.ingest(batch)
            if index in reclaim_points:
                service.reclaim()
                reclaimed += 1
                assert garbage_blocks(service) == 0
                assert device_blocks(service) <= SPACE_BOUND * live_blocks(service)
                assert_methods_agree(
                    reference_evaluator(
                        prefix_network(dataset, THRESHOLD, through=service.watermark)
                    ),
                    {"mid-stream-gc": service.query},
                    workload,
                    context=f"reclaim at watermark {service.watermark}, "
                    f"backend={backend}, seed={seed}",
                )
        assert reclaimed == len(reclaim_points)
        service.close()
        assert_no_stray_gc_files(tmp_path)


# ----------------------------------------------------------------------
# ledger monotonicity across reclaim passes
# ----------------------------------------------------------------------
class TestReclaimLedgers:
    @pytest.mark.parametrize("backend", SPACE_BACKENDS)
    def test_ledgers_decrease_monotonically_across_reclaims(
        self, backend, tmp_path, dataset
    ):
        """Each reclaim() drives the garbage ledger to zero and the reclaim
        counters forward; the device never grows across a pass."""
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = make_service(dataset, storage_config, gc_trigger_ratio=0.0)
        batches = list(DatasetReplaySource(dataset, batch_ticks=6).batches())
        passes = 0
        for index, batch in enumerate(batches):
            service.ingest(batch)
            if index % 3 != 2:
                continue
            service.flush()  # make garbage_blocks reflect a settled catalog
            garbage_before = garbage_blocks(service)
            device_before = device_blocks(service)
            freed = service.reclaim()
            passes += 1
            assert garbage_blocks(service) <= garbage_before
            assert garbage_blocks(service) == 0
            assert device_blocks(service) <= device_before
            if garbage_before:
                assert freed > 0, (
                    f"pass {passes}: {garbage_before} garbage blocks but "
                    "reclaim freed nothing"
                )
        assert passes >= 3
        stats = service.stats
        assert stats.reclaims > 0
        assert stats.reclaimed_blocks > 0
        assert (
            service.overlay.storage.reclaimed_blocks
            + service.ingestor.storage.reclaimed_blocks
            == stats.reclaimed_blocks
        )
        service.close()

    def test_policy_gc_fires_and_keeps_ratio_bounded(self, tmp_path, dataset):
        """The gc_trigger_ratio knob: merges keep the garbage ratio at or
        under the trigger without any explicit reclaim() calls."""
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(dataset, storage_config, gc_trigger_ratio=0.35)
        service.drain(DatasetReplaySource(dataset, batch_ticks=6))
        assert service.num_reclaims > 0, "policy GC never fired"
        assert service.reclaimed_blocks > 0
        # The post-merge trigger bounds the steady-state ratio: right after
        # the last merge's check the device can hold at most the trigger's
        # worth of garbage plus whatever the tail batches added since.
        service.flush()
        for system in (service.overlay.storage, service.ingestor.storage):
            assert system.garbage_ratio < 0.5, (
                f"{system.name}: garbage ratio {system.garbage_ratio:.2f} "
                "despite policy GC"
            )
        service.close()


# ----------------------------------------------------------------------
# WAL truncation: the journal must not grow with the stream
# ----------------------------------------------------------------------
class TestJournalBound:
    def test_journal_bounded_across_fifty_flushes(self, tmp_path):
        """Fifty ingest+flush cycles: the WAL footprint after every flush is
        zero (truncation dropped the journaled prefix), and peak journal
        size between flushes is bounded by one batch — not by the stream."""
        dataset = RandomWaypointGenerator(
            num_objects=8, horizon=50, environment_size=(300.0, 300.0), seed=9
        ).generate()
        storage_config = backend_storage_config("file", storage_dir=str(tmp_path))
        service = make_service(
            dataset, storage_config, max_delta_contacts=10_000
        )
        service.auto_merge = False
        batches = list(DatasetReplaySource(dataset, batch_ticks=1).batches())
        assert len(batches) >= 50
        peak_between_flushes = 0
        for batch in batches[:50]:
            service.ingest(batch)
            peak_between_flushes = max(
                peak_between_flushes, service.ingestor.journal_blocks
            )
            service.flush()
            assert service.ingestor.journal_blocks == 0, (
                "flush must truncate the WAL"
            )
        # One batch journals one extent: the unflushed peak is a handful of
        # blocks, never the 50-batch stream.
        assert peak_between_flushes <= 4
        service.close()

    def test_truncated_journal_blocks_are_reclaimable(self, tmp_path, dataset):
        """The dropped WAL extents land in the garbage ledger and a device
        reclaim recycles them: the ingest device shrinks back."""
        storage_config = backend_storage_config("mmap", storage_dir=str(tmp_path))
        service = make_service(
            dataset, storage_config, gc_trigger_ratio=0.0, max_delta_contacts=10_000
        )
        service.auto_merge = False
        for batch in DatasetReplaySource(dataset, batch_ticks=6).batches():
            service.ingest(batch)
        service.flush()
        ingest = service.ingestor.storage
        assert ingest.garbage_blocks > 0, (
            "truncation must leave the journaled prefix as reclaimable garbage"
        )
        before = ingest.disk.num_blocks
        service.reclaim()
        assert ingest.garbage_blocks == 0
        assert ingest.disk.num_blocks < before
        service.close()
