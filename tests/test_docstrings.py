"""The documentation gates: docstring coverage and the fault-point registry.

CI runs ``tools/check_docstrings.py`` in the lint job; this test keeps the
same gate inside the tier-1 suite so a missing docstring fails fast locally
too, and pins the fault-point registry to its description table.
"""

import importlib.util
import sys
from pathlib import Path

from repro.testing import faults

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docstrings", REPO_ROOT / "tools" / "check_docstrings.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules.setdefault("check_docstrings", module)
    spec.loader.exec_module(module)
    return module


class TestDocstringCoverage:
    def test_gated_modules_are_fully_documented(self):
        checker = _load_checker()
        offenders = []
        for target in checker.DEFAULT_TARGETS:
            for path in checker.iter_python_files(REPO_ROOT / target):
                for line, kind, name in checker.missing_docstrings(path):
                    offenders.append(f"{path}:{line}: {kind} {name}")
        assert not offenders, "public objects missing docstrings:\n" + "\n".join(offenders)

    def test_checker_flags_an_undocumented_module(self, tmp_path):
        checker = _load_checker()
        bad = tmp_path / "bad.py"
        bad.write_text("def exposed():\n    pass\n", encoding="utf-8")
        missing = checker.missing_docstrings(bad)
        assert (1, "module", "bad") in missing
        assert any(name == "exposed" for _, _, name in missing)

    def test_checker_ignores_private_and_setters(self, tmp_path):
        checker = _load_checker()
        ok = tmp_path / "ok.py"
        ok.write_text(
            '"""Module doc."""\n'
            "class Thing:\n"
            '    """Class doc."""\n'
            "    @property\n"
            "    def value(self):\n"
            '        """Getter doc."""\n'
            "        return 1\n"
            "    @value.setter\n"
            "    def value(self, v):\n"
            "        pass\n"
            "    def _helper(self):\n"
            "        pass\n",
            encoding="utf-8",
        )
        assert checker.missing_docstrings(ok) == []


class TestFaultPointRegistry:
    def test_known_points_derive_from_descriptions(self):
        assert faults.KNOWN_FAULT_POINTS == tuple(faults.FAULT_POINT_DESCRIPTIONS)

    def test_every_point_has_a_substantive_description(self):
        for point, description in faults.FAULT_POINT_DESCRIPTIONS.items():
            assert len(description) > 40, point
            assert "ecover" in description or "loses nothing" in description, (
                f"{point}: description must state the recovery contract"
            )
