"""Unit and integration tests for the SPJ, GRAIL, and external-traversal baselines."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    ExternalBfsBaseline,
    ExternalDfsBaseline,
    GrailIndex,
    SpjBaseline,
    evaluate_reachability,
)
from repro.core import (
    GrailConfig,
    IndexConstructionError,
    IndexNotBuiltError,
    QueryError,
    ReachabilityQuery,
    TimeInterval,
    UnknownObjectError,
)
from repro.reachgraph import reduce_contact_network
from repro.trajectory import TrajectoryStore


def random_queries(network, count, seed, min_len=5, max_len=70):
    rng = random.Random(seed)
    horizon = network.horizon
    for _ in range(count):
        source, destination = rng.sample(network.object_ids, 2)
        start = rng.randint(horizon.start, horizon.end - min_len)
        end = min(start + rng.randint(min_len, max_len), horizon.end)
        yield ReachabilityQuery(source, destination, TimeInterval(start, end))


class TestSpjBaseline:
    def test_requires_built_store(self, tiny_dataset):
        with pytest.raises(QueryError):
            SpjBaseline(TrajectoryStore(tiny_dataset), 30.0)

    def test_rejects_bad_threshold(self, tiny_store):
        with pytest.raises(QueryError):
            SpjBaseline(tiny_store, 0.0)

    def test_matches_reference(self, tiny_store, tiny_network):
        spj = SpjBaseline(tiny_store, tiny_network.distance_threshold)
        for query in random_queries(tiny_network, 25, seed=3):
            expected = evaluate_reachability(tiny_network, query)
            actual = spj.evaluate(query)
            assert actual.reachable == expected.reachable, query
            if expected.reachable:
                assert actual.earliest_time == expected.earliest_time

    def test_io_grows_with_interval_length(self, tiny_store, tiny_network):
        spj = SpjBaseline(tiny_store, tiny_network.distance_threshold)
        objects = tiny_network.object_ids
        short = spj.evaluate(ReachabilityQuery(objects[0], objects[1], TimeInterval(0, 20)))
        long = spj.evaluate(ReachabilityQuery(objects[0], objects[1], TimeInterval(0, 110)))
        assert long.io > short.io

    def test_unknown_object_rejected(self, tiny_store, tiny_network):
        spj = SpjBaseline(tiny_store, tiny_network.distance_threshold)
        with pytest.raises(UnknownObjectError):
            spj.evaluate(ReachabilityQuery(77_777, 0, TimeInterval(0, 10)))

    def test_source_equals_destination(self, tiny_store, tiny_network):
        spj = SpjBaseline(tiny_store, tiny_network.distance_threshold)
        result = spj.evaluate(ReachabilityQuery(5, 5, TimeInterval(0, 10)))
        assert result.reachable and result.earliest_time == 0


class TestGrailIndex:
    @pytest.fixture(scope="class")
    def tiny_grail(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        return GrailIndex(dag, GrailConfig(num_labelings=3, seed=5)).build()

    def test_double_build_rejected(self, tiny_grail):
        with pytest.raises(IndexConstructionError):
            tiny_grail.build()

    def test_query_before_build_rejected(self, tiny_network):
        dag, _ = reduce_contact_network(tiny_network)
        index = GrailIndex(dag)
        with pytest.raises(IndexNotBuiltError):
            index.evaluate_memory(ReachabilityQuery(0, 1, TimeInterval(0, 10)))

    def test_labels_are_containment_consistent(self, tiny_grail):
        """For every DN edge u -> v, the label of v is contained in u's label
        (a descendant's interval never extends outside its ancestor's)."""
        dag = tiny_grail.dag
        for source_id in dag.topological_order():
            source_labels = tiny_grail.labels_of(source_id)
            for target_id in dag.successors(source_id):
                target_labels = tiny_grail.labels_of(target_id)
                for (source_low, source_rank), (target_low, target_rank) in zip(
                    source_labels, target_labels
                ):
                    assert source_low <= target_low
                    assert target_rank <= source_rank

    def test_memory_query_matches_reference(self, tiny_grail, tiny_network):
        for query in random_queries(tiny_network, 25, seed=7):
            expected = evaluate_reachability(tiny_network, query)
            assert tiny_grail.evaluate_memory(query).reachable == expected.reachable

    def test_disk_query_matches_reference_and_charges_io(self, tiny_grail, tiny_network):
        saw_io = False
        for query in random_queries(tiny_network, 20, seed=11):
            expected = evaluate_reachability(tiny_network, query)
            actual = tiny_grail.evaluate_disk(query)
            assert actual.reachable == expected.reachable
            saw_io = saw_io or actual.io > 0
        assert saw_io

    def test_memory_query_reports_cpu_only(self, tiny_grail, tiny_network):
        query = next(iter(random_queries(tiny_network, 1, seed=13)))
        result = tiny_grail.evaluate_memory(query)
        assert result.io == 0.0

    def test_interval_outside_horizon_rejected(self, tiny_grail):
        with pytest.raises(QueryError):
            tiny_grail.evaluate_memory(
                ReachabilityQuery(0, 1, TimeInterval(50_000, 50_010))
            )


class TestExternalTraversalBaselines:
    def test_edfs_and_ebfs_match_reference(self, tiny_reachgraph, tiny_network):
        edfs = ExternalDfsBaseline(tiny_reachgraph)
        ebfs = ExternalBfsBaseline(tiny_reachgraph)
        for query in random_queries(tiny_network, 20, seed=17):
            expected = evaluate_reachability(tiny_network, query).reachable
            assert edfs.evaluate(query).reachable == expected
            assert ebfs.evaluate(query).reachable == expected
