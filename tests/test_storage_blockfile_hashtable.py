"""Unit tests for BlockFile extents and the external hash table."""

from __future__ import annotations

import pytest

from repro.core import StorageConfig, StorageError
from repro.storage import BlockFile, StorageSystem


@pytest.fixture()
def storage():
    return StorageSystem(StorageConfig(block_size=4, buffer_blocks=8))


class TestBlockFile:
    def test_extent_block_count_matches_record_count(self, storage):
        blockfile = storage.new_blockfile("data", records_per_block=4)
        extent = blockfile.append_extent("a", list(range(10)))
        assert extent.num_blocks == 3
        assert extent.num_records == 10

    def test_empty_extent_still_occupies_one_block(self, storage):
        blockfile = storage.new_blockfile("data", records_per_block=4)
        extent = blockfile.append_extent("empty", [])
        assert extent.num_blocks == 1
        assert blockfile.read_extent("empty") == []

    def test_read_extent_round_trips_records_in_order(self, storage):
        blockfile = storage.new_blockfile("data", records_per_block=3)
        records = [("r", index) for index in range(7)]
        blockfile.append_extent("key", records)
        assert blockfile.read_extent("key") == records

    def test_duplicate_extent_key_rejected(self, storage):
        blockfile = storage.new_blockfile("data")
        blockfile.append_extent("k", [1])
        with pytest.raises(StorageError):
            blockfile.append_extent("k", [2])

    def test_unknown_extent_key_rejected(self, storage):
        blockfile = storage.new_blockfile("data")
        with pytest.raises(StorageError):
            blockfile.read_extent("missing")

    def test_extents_are_laid_out_contiguously_in_append_order(self, storage):
        blockfile = storage.new_blockfile("data", records_per_block=2)
        first = blockfile.append_extent("first", [1, 2, 3])
        second = blockfile.append_extent("second", [4])
        assert list(first.block_ids) == [0, 1]
        assert list(second.block_ids) == [2]
        assert blockfile.extent_keys() == ["first", "second"]

    def test_reading_whole_extent_is_mostly_sequential(self, storage):
        blockfile = storage.new_blockfile("data", records_per_block=1)
        blockfile.append_extent("big", list(range(30)))
        storage.reset_for_query()
        before = storage.snapshot()
        blockfile.read_extent("big")
        delta = storage.charge_since(before)
        assert delta.random_reads == 1
        assert delta.sequential_reads == 29

    def test_iter_extent_records_supports_early_termination(self, storage):
        blockfile = storage.new_blockfile("data", records_per_block=1)
        blockfile.append_extent("big", list(range(20)))
        storage.reset_for_query()
        before = storage.snapshot()
        for record in blockfile.iter_extent_records("big"):
            if record == 2:
                break
        delta = storage.charge_since(before)
        # Only the first three single-record blocks are read.
        assert delta.random_reads + delta.sequential_reads == 3

    def test_has_extent_and_contains(self, storage):
        blockfile = storage.new_blockfile("data")
        blockfile.append_extent("k", [1])
        assert blockfile.has_extent("k") and "k" in blockfile
        assert not blockfile.has_extent("other")

    def test_rejects_non_positive_records_per_block(self, storage):
        with pytest.raises(StorageError):
            BlockFile(storage.disk, storage.buffer_pool, records_per_block=0)


class TestExternalHashTable:
    def test_lookup_round_trips_values(self, storage):
        table = storage.new_hashtable("objects")
        table.build([(f"key-{i}", i * i) for i in range(100)], entries_per_bucket=8)
        assert table.get("key-7") == 49
        assert table.lookup("key-99") == 9801

    def test_get_missing_key_returns_default(self, storage):
        table = storage.new_hashtable("objects")
        table.build([("a", 1)])
        assert table.get("zzz") is None
        assert table.get("zzz", 42) == 42
        assert "a" in table and "zzz" not in table

    def test_lookup_missing_key_raises(self, storage):
        table = storage.new_hashtable("objects")
        table.build([("a", 1)])
        with pytest.raises(StorageError):
            table.lookup("missing")

    def test_lookup_before_build_raises(self, storage):
        table = storage.new_hashtable("objects")
        with pytest.raises(StorageError):
            table.get("a")

    def test_double_build_rejected(self, storage):
        table = storage.new_hashtable("objects")
        table.build([("a", 1)])
        with pytest.raises(StorageError):
            table.build([("b", 2)])

    def test_each_lookup_costs_at_most_one_block_read(self, storage):
        table = storage.new_hashtable("objects")
        table.build([(i, i) for i in range(64)], entries_per_bucket=8)
        storage.reset_for_query()
        before = storage.snapshot()
        table.get(13)
        delta = storage.charge_since(before)
        assert delta.random_reads + delta.sequential_reads == 1

    def test_bucket_count_scales_with_entries(self, storage):
        table = storage.new_hashtable("objects")
        table.build([(i, i) for i in range(64)], entries_per_bucket=8)
        assert table.num_buckets == 8
        assert table.is_built


class TestStorageSystem:
    def test_registry_returns_same_objects(self, storage):
        blockfile = storage.new_blockfile("f")
        table = storage.new_hashtable("t")
        assert storage.blockfile("f") is blockfile
        assert storage.hashtable("t") is table

    def test_normalized_io_since(self, storage):
        blockfile = storage.new_blockfile("f", records_per_block=1)
        blockfile.append_extent("k", list(range(21)))
        storage.reset_for_query()
        before = storage.snapshot()
        blockfile.read_extent("k")
        # 1 random + 20 sequential = 2.0 normalized at the default cost of 20.
        assert storage.normalized_io_since(before) == pytest.approx(2.0)

    def test_reset_for_query_clears_buffer(self, storage):
        blockfile = storage.new_blockfile("f")
        blockfile.append_extent("k", [1, 2, 3])
        blockfile.read_extent("k")
        assert storage.buffer_pool.resident_blocks > 0
        storage.reset_for_query()
        assert storage.buffer_pool.resident_blocks == 0
