"""Unit tests for trajectory interpolation and MBR geometry."""

from __future__ import annotations

import pytest

from repro.core import Point, TrajectoryError
from repro.trajectory import (
    MBR,
    Trajectory,
    densify_sparse_samples,
    downsample,
    interpolate_linear,
    segment_mbr,
)
from repro.core.types import TimeInterval


class TestInterpolation:
    def test_linear_interpolation_endpoints_and_midpoint(self):
        a, b = Point(0, 0), Point(10, 20)
        assert interpolate_linear(a, b, 0.0) == a
        assert interpolate_linear(a, b, 1.0) == b
        mid = interpolate_linear(a, b, 0.5)
        assert (mid.x, mid.y) == (5.0, 10.0)

    def test_linear_interpolation_rejects_out_of_range_fraction(self):
        with pytest.raises(TrajectoryError):
            interpolate_linear(Point(0, 0), Point(1, 1), 1.5)

    def test_densify_interpolates_between_sparse_fixes(self):
        sparse = [(0, Point(0, 0)), (4, Point(8, 0))]
        trajectory = densify_sparse_samples(1, sparse, horizon_length=5)
        assert trajectory.position_at(2) == Point(4, 0)
        assert trajectory.position_at(4) == Point(8, 0)

    def test_densify_extends_constant_before_and_after_fixes(self):
        sparse = [(2, Point(5, 5)), (4, Point(9, 5))]
        trajectory = densify_sparse_samples(1, sparse, horizon_length=8)
        assert trajectory.position_at(0) == Point(5, 5)
        assert trajectory.position_at(7) == Point(9, 5)

    def test_densify_requires_increasing_times(self):
        with pytest.raises(TrajectoryError):
            densify_sparse_samples(0, [(3, Point(0, 0)), (3, Point(1, 1))], 5)

    def test_densify_requires_samples_and_positive_horizon(self):
        with pytest.raises(TrajectoryError):
            densify_sparse_samples(0, [], 5)
        with pytest.raises(TrajectoryError):
            densify_sparse_samples(0, [(0, Point(0, 0))], 0)

    def test_downsample_keeps_every_nth_and_last(self):
        trajectory = Trajectory(0, [Point(i, 0) for i in range(10)])
        sparse = downsample(trajectory, every=4)
        assert [t for t, _ in sparse] == [0, 4, 8, 9]

    def test_downsample_then_densify_recovers_straight_line_exactly(self):
        # A straight-line trajectory is recovered exactly by linear
        # interpolation, whatever the recording rate.
        trajectory = Trajectory(0, [Point(2.0 * i, 3.0 * i) for i in range(20)])
        sparse = downsample(trajectory, every=6)
        rebuilt = densify_sparse_samples(0, sparse, horizon_length=20)
        for t in range(20):
            assert rebuilt.position_at(t).x == pytest.approx(trajectory.position_at(t).x)
            assert rebuilt.position_at(t).y == pytest.approx(trajectory.position_at(t).y)

    def test_downsample_rejects_non_positive_rate(self):
        trajectory = Trajectory(0, [Point(0, 0), Point(1, 1)])
        with pytest.raises(TrajectoryError):
            downsample(trajectory, 0)


class TestMBR:
    def test_from_points_is_tight(self):
        rect = MBR.from_points([Point(1, 5), Point(4, 2), Point(3, 3)])
        assert (rect.min_x, rect.min_y, rect.max_x, rect.max_y) == (1, 2, 4, 5)
        assert rect.width == 3 and rect.height == 3
        assert rect.area == 9

    def test_from_points_requires_at_least_one_point(self):
        with pytest.raises(TrajectoryError):
            MBR.from_points([])

    def test_rejects_negative_extent(self):
        with pytest.raises(TrajectoryError):
            MBR(5, 0, 1, 2)

    def test_expanded_grows_every_side(self):
        rect = MBR(0, 0, 2, 2).expanded(3)
        assert (rect.min_x, rect.min_y, rect.max_x, rect.max_y) == (-3, -3, 5, 5)

    def test_expanded_rejects_negative_margin(self):
        with pytest.raises(TrajectoryError):
            MBR(0, 0, 1, 1).expanded(-1)

    def test_contains_point_boundary_inclusive(self):
        rect = MBR(0, 0, 2, 2)
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(2, 2))
        assert not rect.contains_point(Point(2.01, 1))

    def test_intersection_detection(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersects(MBR(1, 1, 3, 3))
        assert a.intersects(MBR(2, 2, 4, 4))  # touching counts
        assert not a.intersects(MBR(3, 3, 4, 4))

    def test_union_covers_both(self):
        union = MBR(0, 0, 1, 1).union(MBR(5, 5, 6, 7))
        assert (union.min_x, union.min_y, union.max_x, union.max_y) == (0, 0, 6, 7)

    def test_min_distance_inside_is_zero(self):
        rect = MBR(0, 0, 4, 4)
        assert rect.min_distance_to(Point(2, 2)) == 0.0
        assert rect.min_distance_to(Point(7, 4)) == pytest.approx(3.0)
        assert rect.min_distance_to(Point(7, 8)) == pytest.approx(5.0)

    def test_segment_mbr_matches_samples(self):
        trajectory = Trajectory(0, [Point(0, 0), Point(5, 1), Point(2, 8)])
        segment = trajectory.segment(TimeInterval(0, 2))
        rect = segment_mbr(segment)
        assert (rect.min_x, rect.max_x, rect.min_y, rect.max_y) == (0, 5, 0, 8)

    def test_segment_mbr_of_empty_segment_is_none(self):
        trajectory = Trajectory(0, [Point(0, 0)])
        assert segment_mbr(trajectory.segment(TimeInterval(5, 6))) is None
