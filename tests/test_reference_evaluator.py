"""Unit tests for the reference (in-memory) reachability evaluator.

The expected outcomes for the Figure 1 scenario come straight from the paper:
"The object o4 is reachable from o1 during time interval of [0, 1] ... o1 is
not reachable from o4 during [0, 1]."
"""

from __future__ import annotations


from repro.baselines import earliest_arrival, evaluate_reachability, reachable_set
from repro.core import ReachabilityQuery, TimeInterval


def query(source, destination, start, end):
    return ReachabilityQuery(source, destination, TimeInterval(start, end))


class TestFigure1GroundTruth:
    def test_o4_reachable_from_o1_during_0_1(self, figure1_network):
        result = evaluate_reachability(figure1_network, query(1, 4, 0, 1))
        assert result.reachable
        assert result.earliest_time == 1

    def test_o1_not_reachable_from_o4_during_0_1(self, figure1_network):
        result = evaluate_reachability(figure1_network, query(4, 1, 0, 1))
        assert not result.reachable

    def test_o1_reachable_from_o4_when_interval_extends_to_3(self, figure1_network):
        # o4 -> o2 at t=1 (c2), o2 -> o1 at t=2 (c4).
        result = evaluate_reachability(figure1_network, query(4, 1, 0, 3))
        assert result.reachable
        assert result.earliest_time == 2

    def test_o3_reachable_from_o1_during_0_2(self, figure1_network):
        # o1 -> o2 (t0), o2 -> o4 (t1), o4 -> o3 (t1).
        result = evaluate_reachability(figure1_network, query(1, 3, 0, 2))
        assert result.reachable
        assert result.earliest_time == 1

    def test_o3_not_reachable_from_o1_when_interval_starts_late(self, figure1_network):
        # During [2, 3] the only contacts are c4={o1,o2} and the tail of c3;
        # o2 never meets o3 or o4 in that window.
        result = evaluate_reachability(figure1_network, query(1, 3, 2, 3))
        assert not result.reachable

    def test_direct_contact_is_reachable_at_contact_time(self, figure1_network):
        result = evaluate_reachability(figure1_network, query(1, 2, 2, 3))
        assert result.reachable
        assert result.earliest_time == 2

    def test_source_equals_destination(self, figure1_network):
        result = evaluate_reachability(figure1_network, query(3, 3, 0, 1))
        assert result.reachable
        assert result.earliest_time == 0

    def test_time_ordering_is_respected(self, figure1_network):
        # o3 can only hand an item to o4 at t in [1,2]; o4 meets o2 only at
        # t=1, so starting from o3 at time 2 the item is stuck with o4.
        result = evaluate_reachability(figure1_network, query(3, 2, 2, 3))
        assert not result.reachable


class TestEarliestArrivalAndReachableSet:
    def test_reachable_set_during_0_1(self, figure1_network):
        # o1 -> o2 at t=0; at t=1 the snapshot component {o2, o3, o4} makes
        # both o4 and o3 reachable (snapshot transitivity, Property 5.1).
        assert reachable_set(figure1_network, 1, TimeInterval(0, 1)) == {1, 2, 3, 4}

    def test_reachable_set_from_o4_during_0_1_excludes_o1(self, figure1_network):
        # The paper's negative example: o1 is not reachable from o4 in [0, 1].
        assert reachable_set(figure1_network, 4, TimeInterval(0, 1)) == {2, 3, 4}

    def test_reachable_set_during_0_3_covers_everyone(self, figure1_network):
        assert reachable_set(figure1_network, 1, TimeInterval(0, 3)) == {1, 2, 3, 4}

    def test_earliest_arrival_times(self, figure1_network):
        arrival = earliest_arrival(figure1_network.contacts, 1, TimeInterval(0, 3))
        assert arrival[1] == 0
        assert arrival[2] == 0  # contact at t=0
        assert arrival[4] == 1  # via o2 at t=1
        assert arrival[3] == 1  # o4 and o3 touch at t=1

    def test_arrival_times_never_precede_interval_start(self, figure1_network):
        arrival = earliest_arrival(figure1_network.contacts, 2, TimeInterval(1, 3))
        assert all(t >= 1 for t in arrival.values())

    def test_early_termination_with_destination(self, figure1_network):
        arrival = earliest_arrival(
            figure1_network.contacts, 1, TimeInterval(0, 3), destination=2
        )
        assert 2 in arrival

    def test_monotonicity_in_interval_length(self, tiny_network):
        # Anything reachable in a prefix interval stays reachable in a longer one.
        short = reachable_set(tiny_network, 0, TimeInterval(0, 30))
        longer = reachable_set(tiny_network, 0, TimeInterval(0, 80))
        assert short <= longer

    def test_early_termination_still_returns_the_minimum(self):
        """Regression: the destination's arrival must be the true minimum even
        under early termination.

        A long-lived contact (3,2) can transmit as early as t=8, but only a
        sweep that revisits it after (0,3) delivers the item would notice; the
        greedy path 0->1->2 certifies reachability at t=10 first.  The
        pre-Dijkstra evaluator early-returned that non-minimal 10.
        """
        from repro.contacts.network import Contact

        contacts = [
            Contact(2, 3, TimeInterval(0, 20)),
            Contact(0, 3, TimeInterval(8, 8)),
            Contact(0, 1, TimeInterval(9, 9)),
            Contact(1, 2, TimeInterval(10, 10)),
        ]
        arrival = earliest_arrival(contacts, 0, TimeInterval(0, 20), destination=2)
        assert arrival[2] == 8

    def test_split_contacts_do_not_change_arrival_times(self, figure1_network):
        """Splitting a validity interval at any boundary is lossless — the
        invariant the streaming merge path relies on."""
        from repro.contacts.network import Contact

        split = []
        for contact in figure1_network.contacts:
            validity = contact.validity
            if validity.length > 1:
                mid = validity.midpoint
                split.append(Contact(contact.first, contact.second, TimeInterval(validity.start, mid)))
                split.append(Contact(contact.first, contact.second, TimeInterval(mid + 1, validity.end)))
            else:
                split.append(contact)
        interval = TimeInterval(0, 3)
        assert earliest_arrival(split, 1, interval) == earliest_arrival(
            figure1_network.contacts, 1, interval
        )
