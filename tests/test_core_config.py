"""Unit tests for configuration dataclasses and their validation."""

from __future__ import annotations

import pytest

from repro.core import (
    ConfigurationError,
    ContactConfig,
    GrailConfig,
    ReachGraphConfig,
    ReachGridConfig,
    StorageConfig,
    DEFAULT_RESOLUTIONS,
)


class TestStorageConfig:
    def test_defaults_are_positive(self):
        config = StorageConfig()
        assert config.block_size > 0
        assert config.buffer_blocks > 0
        assert config.sequential_cost == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"buffer_blocks": 0},
            {"sequential_cost": 0},
            {"block_size": -4},
        ],
    )
    def test_rejects_non_positive_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            StorageConfig(**kwargs)


class TestContactConfig:
    def test_default_threshold_matches_bluetooth_range(self):
        assert ContactConfig().distance_threshold == 25.0

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ConfigurationError):
            ContactConfig(distance_threshold=0.0)


class TestReachGridConfig:
    def test_paper_defaults(self):
        config = ReachGridConfig()
        assert config.temporal_resolution == 20

    @pytest.mark.parametrize(
        "kwargs",
        [{"temporal_resolution": 0}, {"spatial_resolution": 0.0}],
    )
    def test_rejects_non_positive_resolutions(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReachGridConfig(**kwargs)


class TestReachGraphConfig:
    def test_default_resolutions_match_paper_optimum(self):
        config = ReachGraphConfig()
        assert config.sorted_resolutions == (2, 4, 8, 16, 32)
        assert config.partition_depth == 32
        assert DEFAULT_RESOLUTIONS == (2, 4, 8, 16, 32)

    def test_resolutions_are_sorted_regardless_of_input_order(self):
        config = ReachGraphConfig(resolutions=(16, 2, 8))
        assert config.sorted_resolutions == (2, 8, 16)

    def test_rejects_resolution_of_one(self):
        with pytest.raises(ConfigurationError):
            ReachGraphConfig(resolutions=(1, 2))

    def test_rejects_duplicate_resolutions(self):
        with pytest.raises(ConfigurationError):
            ReachGraphConfig(resolutions=(4, 4))

    def test_rejects_non_positive_depth(self):
        with pytest.raises(ConfigurationError):
            ReachGraphConfig(partition_depth=0)

    def test_with_helpers_produce_modified_copies(self):
        config = ReachGraphConfig()
        assert config.with_partition_depth(8).partition_depth == 8
        assert config.with_resolutions([2]).sorted_resolutions == (2,)
        # the original is untouched (frozen dataclass semantics)
        assert config.partition_depth == 32


class TestGrailConfig:
    def test_default_number_of_labelings(self):
        assert GrailConfig().num_labelings == 5

    def test_rejects_non_positive_labelings(self):
        with pytest.raises(ConfigurationError):
            GrailConfig(num_labelings=0)
