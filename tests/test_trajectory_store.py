"""Unit tests for the disk-backed trajectory store."""

from __future__ import annotations

import pytest

from repro.core import IndexNotBuiltError, TimeInterval
from repro.trajectory import TrajectoryStore


class TestTrajectoryStore:
    def test_requires_build_before_reading(self, tiny_dataset):
        store = TrajectoryStore(tiny_dataset)
        assert not store.is_built
        with pytest.raises(IndexNotBuiltError):
            store.read_tick(0)

    def test_read_tick_returns_every_object(self, tiny_store, tiny_dataset):
        samples = tiny_store.read_tick(0)
        assert {sample.object_id for sample in samples} == set(tiny_dataset.object_ids)
        assert all(sample.time == 0 for sample in samples)

    def test_read_tick_matches_dataset_positions(self, tiny_store, tiny_dataset):
        samples = {s.object_id: s.position for s in tiny_store.read_tick(5)}
        expected = tiny_dataset.positions_at(5)
        assert samples == expected

    def test_read_interval_streams_all_samples(self, tiny_store, tiny_dataset):
        window = TimeInterval(3, 7)
        samples = list(tiny_store.read_interval(window))
        assert len(samples) == tiny_dataset.num_objects * window.length
        assert {sample.time for sample in samples} == set(window.instants())

    def test_read_interval_outside_horizon_is_empty(self, tiny_store, tiny_dataset):
        beyond = tiny_dataset.horizon.end + 10
        assert list(tiny_store.read_interval(TimeInterval(beyond, beyond + 5))) == []

    def test_interval_read_is_mostly_sequential(self, tiny_store):
        storage = tiny_store.storage
        storage.reset_for_query()
        before = storage.snapshot()
        list(tiny_store.read_interval(TimeInterval(0, 30)))
        delta = storage.charge_since(before)
        assert delta.sequential_reads > delta.random_reads

    def test_read_positions_at(self, tiny_store, tiny_dataset):
        positions = tiny_store.read_positions_at(2)
        assert set(positions) == set(tiny_dataset.object_ids)
        object_id = tiny_dataset.object_ids[0]
        expected = tiny_dataset.positions_at(2)[object_id]
        assert positions[object_id] == (expected.x, expected.y)

    def test_store_occupies_blocks(self, tiny_store):
        assert tiny_store.num_blocks > 0
