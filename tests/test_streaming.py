"""Tests for the streaming ingestion subsystem.

The correctness bar (set by the issue that introduced the subsystem): after
draining a replayed dataset, the streaming service must answer every query
exactly like the batch ``reference`` evaluator over the same data — for all
three merge policies, and also for queries issued mid-stream, where the answer
must reflect the ingested prefix.
"""

from __future__ import annotations

import pytest

from equivalence import (
    EQUIVALENCE_BACKENDS,
    EQUIVALENCE_GRAPH_MODES,
    assert_methods_agree,
    backend_storage_config,
    prefix_network,
    reference_evaluator,
)
from repro.core import (
    ConfigurationError,
    Point,
    ReachabilityQuery,
    StreamingConfig,
    StreamingError,
    TimeInterval,
    WatermarkRegressionError,
)
from repro.core.engine import ReachabilityEngine
from repro.streaming import (
    AmplificationPolicy,
    ContactEvent,
    DatasetReplaySource,
    DeltaSizePolicy,
    ElapsedIntervalsPolicy,
    GeneratorReplaySource,
    MergeContext,
    SampleEvent,
    SnapshotQueryService,
    StreamBatch,
    StreamIngestor,
    StreamingReachabilityService,
    make_policy,
    replay,
    stream_replay,
)
from repro.generators import RandomWaypointGenerator
from repro.workloads.queries import random_queries

# The contact threshold of the shared tiny_* fixtures (importing it from
# tests/conftest.py would collide with benchmarks/conftest.py when the whole
# repo is collected in one pytest run).
TINY_THRESHOLD = 30.0

# The graph_mode axis itself is parametrized by tests/conftest.py's
# pytest_generate_tests (honouring --graph-mode); this module only asserts
# the canned axis matches the config's registered modes.
assert EQUIVALENCE_GRAPH_MODES == ("incremental", "rebuild")


# ----------------------------------------------------------------------
# events and sources
# ----------------------------------------------------------------------
class TestEvents:
    def test_batch_rejects_samples_beyond_watermark(self):
        sample = SampleEvent(1, 10, Point(0.0, 0.0))
        with pytest.raises(StreamingError):
            StreamBatch((sample,), watermark=5)

    def test_batch_of_defaults_watermark_to_latest_sample(self):
        batch = StreamBatch.of(
            [SampleEvent(1, 3, Point(0, 0)), SampleEvent(2, 7, Point(1, 1))]
        )
        assert batch.watermark == 7
        assert batch.num_events == 2

    def test_empty_batch_needs_explicit_watermark(self):
        with pytest.raises(StreamingError):
            StreamBatch.of([])
        assert StreamBatch.of([], watermark=4).watermark == 4

    def test_contact_event_roundtrip(self, tiny_network):
        contact = tiny_network.contacts[0]
        event = ContactEvent.from_contact(contact)
        assert event.to_contact() == contact

    def test_contact_event_requires_ordered_pair(self):
        with pytest.raises(StreamingError):
            ContactEvent(5, 2, TimeInterval(0, 1))


class TestSources:
    def test_dataset_replay_covers_every_sample(self, tiny_dataset):
        source = DatasetReplaySource(tiny_dataset, batch_ticks=7)
        batches = list(source.batches())
        total = sum(batch.num_events for batch in batches)
        assert total == source.num_events
        assert total == tiny_dataset.num_objects * tiny_dataset.num_instants
        watermarks = [batch.watermark for batch in batches]
        assert watermarks == sorted(watermarks)
        assert watermarks[-1] == tiny_dataset.horizon.end

    def test_generator_replay_materializes_lazily(self):
        generator = RandomWaypointGenerator(
            num_objects=5, horizon=20, environment_size=(100.0, 100.0), seed=3
        )
        source = GeneratorReplaySource(generator, batch_ticks=6)
        batches = list(source.batches())
        assert sum(len(batch) for batch in batches) == 5 * 20

    def test_replay_helper_dispatches(self, tiny_dataset):
        assert isinstance(replay(tiny_dataset), DatasetReplaySource)
        assert isinstance(replay("rwp-tiny"), DatasetReplaySource)
        with pytest.raises(StreamingError):
            replay(42)


# ----------------------------------------------------------------------
# ingestor
# ----------------------------------------------------------------------
class TestStreamIngestor:
    @pytest.fixture()
    def drained(self, tiny_dataset, tiny_contact_config):
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        ingestor.ingest_all(DatasetReplaySource(tiny_dataset, batch_ticks=9).batches())
        return ingestor

    def test_contacts_match_batch_join_up_to_splitting(self, drained, tiny_network):
        # Sum of per-(pair) covered instants must match the batch network
        # exactly: splitting validity intervals never loses coverage.
        def coverage(contacts):
            per_pair = {}
            for contact in contacts:
                key = (contact.first, contact.second)
                per_pair[key] = per_pair.get(key, 0) + contact.validity.length
            return per_pair

        assert coverage(drained.contacts_through_watermark()) == coverage(
            tiny_network.contacts
        )

    def test_prefix_dataset_roundtrips(self, drained, tiny_dataset):
        prefix = drained.prefix_dataset()
        assert prefix.num_objects == tiny_dataset.num_objects
        assert prefix.horizon == tiny_dataset.horizon
        t = tiny_dataset.horizon.midpoint
        assert prefix.positions_at(t) == tiny_dataset.positions_at(t)

    def test_grid_cells_flushed_in_interval_order(self, drained):
        keys = drained.flushed_cell_keys()
        assert keys, "expected at least one flushed cell"
        interval_indices = [key[0] for key in keys]
        assert interval_indices == sorted(interval_indices)
        records = drained.read_cell(keys[0])
        times = [record[1] for record in records]
        assert times == sorted(times)

    def test_watermark_regression_rejected(self, tiny_dataset, tiny_contact_config):
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=5).batches())
        ingestor.ingest(batches[1])
        with pytest.raises(WatermarkRegressionError) as excinfo:
            ingestor.ingest(batches[0])
        assert excinfo.value.batch_watermark == batches[0].watermark
        assert excinfo.value.current_watermark == batches[1].watermark
        # ... which is still a StreamingError, so old handlers keep working.
        assert isinstance(excinfo.value, StreamingError)

    def test_rejected_batch_leaves_state_untouched(
        self, tiny_dataset, tiny_contact_config
    ):
        """Regression: a batch rejected mid-validation must not corrupt the
        ingestor (earlier samples of the bad batch used to stay buffered,
        poisoning interval flushing and the dense-horizon invariant)."""
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=5).batches())
        ingestor.ingest(batches[0])
        events = ingestor.num_events
        watermark = ingestor.watermark
        memtable = ingestor.memtable_records
        # A batch whose *last* sample is late: everything before it is valid.
        good = list(batches[1].samples)
        poisoned = StreamBatch.of(
            tuple(good) + (SampleEvent(good[0].object_id, 0, Point(0.0, 0.0)),),
            watermark=batches[1].watermark,
        )
        with pytest.raises(StreamingError):
            ingestor.ingest(poisoned)
        assert ingestor.num_events == events
        assert ingestor.watermark == watermark
        assert ingestor.memtable_records == memtable
        # The corrected batch is accepted afterwards as if nothing happened.
        ingestor.ingest(batches[1])
        assert ingestor.watermark == batches[1].watermark

    def test_late_sample_rejected(self, tiny_dataset, tiny_contact_config):
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        ingestor.ingest(StreamBatch.of([SampleEvent(1, 0, Point(0, 0))]))
        with pytest.raises(StreamingError):
            ingestor.ingest(StreamBatch.of([SampleEvent(2, 0, Point(1, 1))], watermark=1))

    def test_dense_horizon_break_rejected_atomically(
        self, tiny_dataset, tiny_contact_config
    ):
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        ingestor.ingest(StreamBatch.of([SampleEvent(1, 0, Point(0, 0))]))
        # Object 1 skips t=1: rejected, and the valid sample for object 2
        # that preceded it in the batch must not have been buffered.
        with pytest.raises(StreamingError):
            ingestor.ingest(
                StreamBatch.of(
                    [SampleEvent(2, 1, Point(1, 1)), SampleEvent(1, 2, Point(0, 0))],
                    watermark=2,
                )
            )
        assert ingestor.num_events == 1
        assert ingestor.watermark == 0


# ----------------------------------------------------------------------
# merge policies
# ----------------------------------------------------------------------
class TestMergePolicies:
    def _context(self, **overrides):
        base = dict(
            delta_contacts=10,
            snapshot_contacts=100,
            intervals_since_merge=1,
            watermark=50,
            snapshot_watermark=20,
        )
        base.update(overrides)
        return MergeContext(**base)

    def test_delta_size_policy(self):
        policy = DeltaSizePolicy(16)
        assert not policy.should_merge(self._context(delta_contacts=15))
        assert policy.should_merge(self._context(delta_contacts=16))

    def test_elapsed_intervals_policy(self):
        policy = ElapsedIntervalsPolicy(4)
        assert not policy.should_merge(self._context(intervals_since_merge=3))
        assert policy.should_merge(self._context(intervals_since_merge=4))

    def test_amplification_policy(self):
        policy = AmplificationPolicy(0.25)
        assert not policy.should_merge(
            self._context(delta_contacts=24, snapshot_contacts=100)
        )
        assert policy.should_merge(
            self._context(delta_contacts=25, snapshot_contacts=100)
        )
        assert not policy.should_merge(self._context(delta_contacts=0))

    def test_make_policy_respects_config(self):
        assert isinstance(
            make_policy(StreamingConfig(merge_policy="delta-size")), DeltaSizePolicy
        )
        assert isinstance(
            make_policy(StreamingConfig(merge_policy="elapsed-intervals")),
            ElapsedIntervalsPolicy,
        )
        assert isinstance(
            make_policy(StreamingConfig(merge_policy="amplification")),
            AmplificationPolicy,
        )

    def test_streaming_config_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(merge_policy="nope")
        with pytest.raises(ConfigurationError):
            StreamingConfig(batch_ticks=0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(query_cache_size=-1)
        assert StreamingConfig().with_merge_policy("amplification").merge_policy == (
            "amplification"
        )


# ----------------------------------------------------------------------
# service: equivalence with the batch reference evaluator
# ----------------------------------------------------------------------
#: Policy configs tuned so every policy actually merges a few times on the
#: tiny dataset (and the equivalence claim is exercised across merges).
POLICY_CONFIGS = {
    "delta-size": StreamingConfig(merge_policy="delta-size", max_delta_contacts=48),
    "elapsed-intervals": StreamingConfig(
        merge_policy="elapsed-intervals", max_elapsed_intervals=3
    ),
    "amplification": StreamingConfig(
        merge_policy="amplification", max_amplification=0.3
    ),
}


class TestStreamingEquivalence:
    @pytest.mark.parametrize("policy", sorted(POLICY_CONFIGS))
    def test_drained_stream_matches_reference(
        self, policy, tiny_dataset, tiny_network, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=POLICY_CONFIGS[policy],
        )
        service.drain(tiny_dataset)
        assert service.num_merges > 0, "policy thresholds should force merges"
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {"streaming": service.query},
            random_queries(tiny_dataset, count=50, seed=17),
            check_earliest=True,
            context=f"policy={policy}, drained",
        )

    @pytest.mark.parametrize("policy", sorted(POLICY_CONFIGS))
    def test_mid_stream_queries_answer_over_prefix(
        self, policy, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=POLICY_CONFIGS[policy],
        )
        workload = random_queries(tiny_dataset, count=12, seed=5)
        source = DatasetReplaySource(tiny_dataset, batch_ticks=8)
        for position, batch in enumerate(source.batches()):
            service.ingest(batch)
            if position % 4 != 2:
                continue
            assert_methods_agree(
                reference_evaluator(
                    prefix_network(
                        tiny_dataset, TINY_THRESHOLD, through=service.watermark
                    )
                ),
                {"streaming": service.query},
                workload,
                context=f"policy={policy}, watermark={service.watermark}",
            )

    def test_queries_before_any_ingest(self, tiny_dataset, tiny_contact_config):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        query = ReachabilityQuery(0, 1, TimeInterval(0, 10))
        assert not service.query(query).reachable
        same = ReachabilityQuery(3, 3, TimeInterval(0, 10))
        result = service.query(same)
        assert result.reachable and result.earliest_time == 0


class TestStreamingService:
    def test_cache_hits_and_invalidation(self, tiny_dataset, tiny_contact_config):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=10).batches())
        service.ingest(batches[0])
        query = ReachabilityQuery(0, 1, TimeInterval(0, 50))
        service.query(query)
        service.query(query)
        assert service.stats.cache_hits == 1
        # Watermark advancement invalidates the cache.
        service.ingest(batches[1])
        service.query(query)
        assert service.stats.cache_hits == 1
        assert service.stats.cache_misses == 2

    def test_cache_capacity_zero_disables_caching(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(query_cache_size=0),
        )
        query = ReachabilityQuery(0, 1, TimeInterval(0, 20))
        service.query(query)
        service.query(query)
        assert service.stats.cache_hits == 0

    def test_ingest_accepts_bare_event_iterables(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        events = [
            SampleEvent.from_sample(trajectory.sample_at(0))
            for trajectory in tiny_dataset
        ]
        assert service.ingest(events) == tiny_dataset.num_objects
        assert service.watermark == 0

    def test_merge_requires_data(self, tiny_dataset, tiny_contact_config):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        with pytest.raises(StreamingError):
            service.merge()

    def test_forced_merge_clears_delta_and_enables_fast_path(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(max_delta_contacts=10_000),
        )
        service.drain(tiny_dataset)
        assert service.num_merges == 0
        service.merge()
        assert service.overlay.delta_size == 0
        assert service.overlay.has_reachgraph
        assert service.stats.snapshot_watermark == tiny_dataset.horizon.end

    def test_engine_streaming_wiring(self, tiny_dataset, tiny_contact_config):
        engine = ReachabilityEngine(tiny_dataset, contact_config=tiny_contact_config)
        service = engine.streaming()
        assert isinstance(service, StreamingReachabilityService)
        assert service.contact_config is engine.contact_config
        stats = service.drain(engine.dataset)
        assert stats.events == tiny_dataset.num_objects * tiny_dataset.num_instants


class TestMergeEdgeCases:
    """Edge cases of the snapshot/delta merge path (delta.py + policy.py)."""

    def _drained_service(self, dataset, contact_config, **overrides):
        service = StreamingReachabilityService.for_dataset(
            dataset,
            contact_config=contact_config,
            streaming_config=StreamingConfig(max_delta_contacts=10_000, **overrides),
        )
        service.drain(dataset)
        return service

    def test_zero_delta_merge_is_sound(
        self, tiny_dataset, tiny_network, tiny_contact_config
    ):
        """Merging with an empty delta (back-to-back merges at the same
        watermark) must rebuild an identical snapshot, not corrupt it."""
        service = self._drained_service(tiny_dataset, tiny_contact_config)
        service.merge()
        size_after_first = service.overlay.snapshot_size
        assert service.overlay.delta_size == 0
        service.merge()  # zero-delta merge
        assert service.overlay.snapshot_size == size_after_first
        assert service.overlay.snapshot_watermark == tiny_dataset.horizon.end
        assert service.num_merges == 2
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {"post-zero-delta-merge": service.query},
            random_queries(tiny_dataset, count=20, seed=23),
            check_earliest=True,
        )

    def test_no_automerge_exactly_at_watermark_boundary(
        self, tiny_dataset, tiny_contact_config
    ):
        """Once the snapshot watermark equals the stream watermark there is
        nothing to fold: the policy must not be consulted again until the
        watermark moves (an empty batch at the same watermark is a no-op)."""
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            # A hair trigger that would fire on every batch if consulted.
            streaming_config=StreamingConfig(max_delta_contacts=1),
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=10).batches())
        service.ingest(batches[0])
        merges = service.num_merges
        assert service.overlay.snapshot_watermark == service.watermark
        service.ingest(StreamBatch.of([], watermark=service.watermark))
        assert service.num_merges == merges, "boundary batch must not re-merge"

    def test_merge_bounded_at_watermark_keeps_tail_in_delta(
        self, tiny_dataset, tiny_contact_config
    ):
        """A merge bounded below the watermark (the sharded coordinator's
        low-watermark) freezes only the bounded prefix; contact coverage past
        the bound must survive in the delta, clipped at the boundary."""
        service = self._drained_service(tiny_dataset, tiny_contact_config)
        watermark = service.watermark
        bound = watermark - 15
        service.merge(through=bound)
        assert service.overlay.snapshot_watermark == bound
        for contact in service.overlay._delta.contacts:
            assert contact.validity.start == bound + 1 or (
                contact.validity.start > bound
            )
        assert_methods_agree(
            reference_evaluator(
                prefix_network(tiny_dataset, TINY_THRESHOLD, through=watermark)
            ),
            {"bounded-merge": service.query},
            random_queries(tiny_dataset, count=20, seed=29),
            check_earliest=True,
        )

    def test_closed_contacts_since_across_a_merge(
        self, tiny_dataset, tiny_contact_config
    ):
        """The closed-contact log is append-only: a merge must not shift the
        positions ``closed_contacts_since`` readers rely on."""
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(max_delta_contacts=10_000),
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=12).batches())
        midpoint = len(batches) // 2
        for batch in batches[:midpoint]:
            service.ingest(batch)
        ingestor = service.ingestor
        seen = ingestor.num_closed_contacts
        head = ingestor.closed_contacts_since(0)
        service.merge()
        # Positions survive the merge: the log head is unchanged and the
        # tail picks up exactly where the pre-merge count left off.
        assert ingestor.closed_contacts_since(0)[:seen] == head
        for batch in batches[midpoint:]:
            service.ingest(batch)
        tail = ingestor.closed_contacts_since(seen)
        assert len(tail) == ingestor.num_closed_contacts - seen
        assert ingestor.closed_contacts_since(0) == head + tail
        # The delta only ever holds coverage past the snapshot watermark.
        snapshot_watermark = service.overlay.snapshot_watermark
        for contact in service.overlay._delta.contacts:
            assert contact.validity.end > snapshot_watermark


# ----------------------------------------------------------------------
# storage-backend axis: file/mmap answers ≡ sim answers ≡ reference
# ----------------------------------------------------------------------
class TestStorageBackendEquivalence:
    """The acceptance contract of the pluggable-backend issue: a file- or
    mmap-backed service answers bit-identically to the simulated backend at
    every watermark, including after a close/reopen of the backing files."""

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_equivalence_at_every_watermark(
        self, backend, tiny_dataset, tiny_contact_config
    ):
        config = StreamingConfig(max_delta_contacts=48)
        simulated = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config, streaming_config=config
        )
        disk_backed = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=config,
            storage_config=backend_storage_config(backend),
        )
        workload = random_queries(tiny_dataset, count=10, seed=13)
        for batch in DatasetReplaySource(tiny_dataset, batch_ticks=12).batches():
            simulated.ingest(batch)
            disk_backed.ingest(batch)
            for query in workload:
                expected = simulated.query(query)
                actual = disk_backed.query(query)
                assert (actual.reachable, actual.earliest_time) == (
                    expected.reachable,
                    expected.earliest_time,
                ), (
                    f"backend={backend}, watermark={disk_backed.watermark}: "
                    f"{query} diverged from the simulated backend"
                )
        assert disk_backed.num_merges > 0, "merges must hit the real device"

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_close_reopen_answers_match_at_final_watermark(
        self, backend, tmp_path, tiny_dataset, tiny_network, tiny_contact_config
    ):
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(max_delta_contacts=48),
            storage_config=storage_config,
        )
        service.drain(tiny_dataset)
        service.close()
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        assert reopened.watermark == tiny_dataset.horizon.end
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {f"reopened-{backend}": reopened.query},
            random_queries(tiny_dataset, count=25, seed=19),
            check_earliest=True,
            require_earliest=True,
            context=f"backend={backend}, reopened",
        )
        reopened.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_close_reopen_mid_stream_answers_over_prefix(
        self, backend, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(max_delta_contacts=10_000),
            storage_config=storage_config,
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=10).batches())
        for batch in batches[: len(batches) // 2]:
            service.ingest(batch)
        service.merge()  # part of the prefix frozen on the device...
        for batch in batches[len(batches) // 2 : len(batches) // 2 + 2]:
            service.ingest(batch)  # ...and a live delta tail on top
        watermark = service.watermark
        assert service.overlay.delta_size > 0 or service.ingestor.open_contacts()
        service.close()
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        assert reopened.watermark == watermark
        assert_methods_agree(
            reference_evaluator(
                prefix_network(tiny_dataset, TINY_THRESHOLD, through=watermark)
            ),
            {f"reopened-{backend}": reopened.query},
            random_queries(tiny_dataset, count=15, seed=31),
            check_earliest=True,
            require_earliest=True,
            context=f"backend={backend}, reopened mid-stream at {watermark}",
        )
        reopened.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_recreating_a_service_over_a_used_dir_starts_fresh(
        self, backend, tmp_path, tiny_dataset, tiny_contact_config
    ):
        """Regression: a second service pointed at a directory a previous run
        wrote to must start from empty devices, not crash re-registering the
        previous run's cataloged block files."""
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=20).batches())
        first = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            storage_config=storage_config,
        )
        first.ingest(batches[0])
        first.merge()
        first.close()

        second = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            storage_config=storage_config,
        )
        assert second.watermark is None, "the rerun must not inherit old state"
        second.ingest(batches[0])
        second.merge()
        assert second.overlay.snapshot_size == first.overlay.snapshot_size
        second.close()

    def test_engine_rejects_storage_dir_on_sim_backend(
        self, tmp_path, tiny_dataset, tiny_contact_config
    ):
        """Regression: silently ignoring storage_dir on the in-memory backend
        would drop the persistence the caller asked for."""
        engine = ReachabilityEngine(tiny_dataset, contact_config=tiny_contact_config)
        with pytest.raises(ConfigurationError):
            engine.streaming(storage_dir=str(tmp_path))
        service = engine.streaming(
            storage_backend="file", storage_dir=str(tmp_path)
        )
        assert service.overlay.storage.config.backend == "file"
        service.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_rebuild_mode_closes_superseded_overlay_devices(
        self, backend, tmp_path, tiny_dataset, tiny_contact_config
    ):
        """Regression: every rebuild-mode merge swaps in a fresh overlay; the
        superseded overlay's device must be closed, not left as an open file
        handle for the life of the service."""
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(
                max_delta_contacts=48,
                snapshot_mode="rebuild",
                build_reachgraph_on_merge=False,
            ),
            storage_config=backend_storage_config(backend, storage_dir=str(tmp_path)),
        )
        overlays = []
        for batch in DatasetReplaySource(tiny_dataset, batch_ticks=12).batches():
            if service.overlay not in overlays:
                overlays.append(service.overlay)
            service.ingest(batch)
        assert service.num_merges > 1
        for overlay in overlays:
            if overlay is not service.overlay:
                assert overlay.storage.disk.closed, "superseded device left open"
        assert not service.overlay.storage.disk.closed
        # ... and their backing files are gone: only the grid device and the
        # one live overlay device may remain in the directory.
        overlay_files = [
            p for p in tmp_path.iterdir() if "overlay-rebuild" in p.name
        ]
        live = service.overlay.storage.path
        assert live is not None
        assert all(str(p).startswith(live) for p in overlay_files), overlay_files
        service.close()

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_open_with_wrong_name_neither_creates_files_nor_leaks(
        self, backend, tmp_path, tiny_dataset, tiny_contact_config
    ):
        """Regression: a reopen probe with a bad name/dir is a read operation;
        it must not scatter fresh empty device files into the directory."""
        storage_config = backend_storage_config(backend, storage_dir=str(tmp_path))
        with pytest.raises(StreamingError):
            SnapshotQueryService.open(storage_config, name="no-such-service")
        assert list(tmp_path.iterdir()) == []

    def test_closed_service_rejects_use(self, tiny_dataset, tiny_contact_config):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=30).batches())
        service.ingest(batches[0])
        query = ReachabilityQuery(0, 1, TimeInterval(0, 20))
        service.query(query)  # populate the cache
        service.close()
        with pytest.raises(StreamingError):
            service.query(query)  # even the previously cached answer
        with pytest.raises(StreamingError):
            service.ingest(batches[1])
        with pytest.raises(StreamingError):
            service.merge()
        service.close()  # still idempotent

    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    def test_no_files_leak_outside_storage_dir(
        self, backend, tmp_path, tiny_dataset, tiny_contact_config
    ):
        storage_dir = tmp_path / "contained"
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            storage_config=backend_storage_config(backend, storage_dir=str(storage_dir)),
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=20).batches())
        service.ingest(batches[0])
        service.merge()
        service.close()
        assert storage_dir.exists() and any(storage_dir.iterdir())
        stray = [p for p in tmp_path.iterdir() if p != storage_dir]
        assert stray == [], f"files escaped the storage dir: {stray}"


# ----------------------------------------------------------------------
# LSM snapshot compaction (the merge write path)
# ----------------------------------------------------------------------
class TestSnapshotCompaction:
    def _service(self, dataset, contact_config, **overrides):
        return StreamingReachabilityService.for_dataset(
            dataset,
            contact_config=contact_config,
            streaming_config=StreamingConfig(**overrides),
        )

    def test_zero_delta_merge_is_a_store_noop(self, tiny_dataset, tiny_contact_config):
        service = self._service(
            tiny_dataset, tiny_contact_config, max_delta_contacts=10_000
        )
        service.drain(tiny_dataset)
        service.merge()
        store = service.overlay.snapshot_store
        written = store.records_written
        runs = store.num_runs
        blocks = store.num_blocks
        service.merge()  # zero-delta: nothing new to freeze
        assert store.records_written == written, "zero-delta merge wrote records"
        assert store.num_runs == runs
        assert store.num_blocks == blocks
        assert service.num_merges == 2

    def test_compaction_triggers_and_bounds_run_count(
        self, tiny_dataset, tiny_network, tiny_contact_config
    ):
        service = self._service(
            tiny_dataset,
            tiny_contact_config,
            max_delta_contacts=16,
            compaction_max_runs=2,
            build_reachgraph_on_merge=False,
        )
        service.drain(tiny_dataset)
        stats = service.stats
        assert stats.merges > 3, "workload must force several merges"
        assert stats.compactions >= 1, "run count should have crossed the bound"
        store = service.overlay.snapshot_store
        # The leveled invariant: no level holds more runs than the fanout, so
        # the total run count is bounded by fanout x occupied levels instead
        # of growing with the merge count.
        per_level = store.runs_per_level
        assert all(count <= 2 for count in per_level.values()), per_level
        assert stats.snapshot_runs <= 2 * len(per_level)
        assert store.superseded_blocks > 0
        # Folding runs must not change what the snapshot answers.
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {"post-compaction": service.query},
            random_queries(tiny_dataset, count=25, seed=41),
            check_earliest=True,
        )

    def test_compaction_preserves_contact_views_across_merge(
        self, tiny_dataset, tiny_contact_config
    ):
        """``contacts_through`` coverage and the ``closed_contacts_since``
        positions must be invariant under merges *and* compactions."""

        def coverage(contacts):
            per_pair = {}
            for contact in contacts:
                key = (contact.first, contact.second)
                per_pair[key] = per_pair.get(key, 0) + contact.validity.length
            return per_pair

        service = self._service(
            tiny_dataset,
            tiny_contact_config,
            max_delta_contacts=16,
            compaction_max_runs=2,
            build_reachgraph_on_merge=False,
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=10).batches())
        midpoint = len(batches) // 2
        for batch in batches[:midpoint]:
            service.ingest(batch)
        ingestor = service.ingestor
        watermark = service.watermark
        before = coverage(ingestor.contacts_through(watermark))
        seen = ingestor.num_closed_contacts
        head = ingestor.closed_contacts_since(0)
        service.merge()
        assert coverage(ingestor.contacts_through(watermark)) == before
        assert ingestor.closed_contacts_since(0)[:seen] == head
        for batch in batches[midpoint:]:
            service.ingest(batch)
        # The second half must have folded runs at least once; the ingestor's
        # append-only views survive both the merges and the compactions.
        assert service.num_compactions >= 1, "workload must trigger a compaction"
        assert ingestor.closed_contacts_since(0)[:seen] == head
        final = service.watermark
        assert coverage(ingestor.contacts_through(watermark)) == before
        assert coverage(service.ingestor.contacts_through(final)) == coverage(
            prefix_network(tiny_dataset, TINY_THRESHOLD, through=final).contacts
        )

    def test_lsm_write_amplification_below_rebuild(
        self, tiny_dataset, tiny_contact_config
    ):
        """The point of the LSM path: on a multi-merge workload it must write
        strictly fewer snapshot records than rebuild-from-scratch."""
        ledgers = {}
        for mode in ("lsm", "rebuild"):
            service = self._service(
                tiny_dataset,
                tiny_contact_config,
                max_delta_contacts=16,
                snapshot_mode=mode,
                build_reachgraph_on_merge=False,
            )
            service.drain(tiny_dataset)
            assert service.num_merges > 3
            ledgers[mode] = service.snapshot_records_written
        assert ledgers["lsm"] < ledgers["rebuild"], ledgers

    def test_rebuild_mode_still_answers_identically(
        self, tiny_dataset, tiny_network, tiny_contact_config
    ):
        service = self._service(
            tiny_dataset,
            tiny_contact_config,
            max_delta_contacts=48,
            snapshot_mode="rebuild",
        )
        service.drain(tiny_dataset)
        assert service.num_merges > 0
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {"rebuild-mode": service.query},
            random_queries(tiny_dataset, count=25, seed=43),
            check_earliest=True,
        )


# ----------------------------------------------------------------------
# incremental ReachGraph maintenance vs rebuild-per-merge
# ----------------------------------------------------------------------
class TestGraphModeMaintenance:
    """The graph_mode axis: patching the reduced DAG must be invisible.

    Incremental and rebuild modes must answer bit-identically to each other
    and to the batch reference at every watermark; the only permitted
    difference is the write ledger (incremental strictly cheaper on a
    multi-merge workload).
    """

    @staticmethod
    def _service(dataset, contact_config, **overrides):
        overrides.setdefault("max_delta_contacts", 48)
        return StreamingReachabilityService.for_dataset(
            dataset,
            contact_config=contact_config,
            streaming_config=StreamingConfig(**overrides),
        )

    def test_equivalence_at_every_watermark(
        self, graph_mode, tiny_dataset, tiny_contact_config
    ):
        service = self._service(
            tiny_dataset, tiny_contact_config, graph_mode=graph_mode
        )
        workload = random_queries(tiny_dataset, count=12, seed=23)
        for position, batch in enumerate(
            DatasetReplaySource(tiny_dataset, batch_ticks=8).batches()
        ):
            service.ingest(batch)
            if position % 3 != 1:
                continue
            assert_methods_agree(
                reference_evaluator(
                    prefix_network(
                        tiny_dataset, TINY_THRESHOLD, through=service.watermark
                    )
                ),
                {f"graph-{graph_mode}": service.query},
                workload,
                context=f"graph_mode={graph_mode}, watermark={service.watermark}",
            )
        assert service.num_merges > 1, "the workload must exercise several merges"
        if graph_mode == "incremental":
            assert service.graph_rebuilds == 1
        else:
            assert service.graph_rebuilds == service.num_merges

    def test_incremental_patches_one_live_index(
        self, tiny_dataset, tiny_contact_config
    ):
        """Incremental mode keeps ONE index object and patches it in place."""
        service = self._service(
            tiny_dataset, tiny_contact_config, graph_mode="incremental"
        )
        processors = set()
        for batch in DatasetReplaySource(tiny_dataset, batch_ticks=8).batches():
            service.ingest(batch)
            processor = service.overlay.snapshot_processor
            if processor is not None:
                processors.add(id(processor))
        assert service.num_merges > 1
        assert len(processors) == 1, "merges must not swap the processor"
        index = service.overlay.snapshot_processor.index
        assert index.num_increments == service.num_merges - 1
        assert index.dag.horizon.end == service.overlay.snapshot_watermark

    def test_incremental_index_equals_batch_rebuild(
        self, tiny_dataset, tiny_contact_config
    ):
        """After the same merges, the patched index must be structurally
        identical to one rebuilt from scratch: same vertices (ids, intervals,
        members), same DN_1 edges, same long-edge layers, same assignment
        histories — partition placement is the only thing allowed to differ."""
        services = {
            mode: self._service(tiny_dataset, tiny_contact_config, graph_mode=mode)
            for mode in ("incremental", "rebuild")
        }
        for batch in DatasetReplaySource(tiny_dataset, batch_ticks=8).batches():
            for service in services.values():
                service.ingest(batch)
        for service in services.values():
            service.merge()  # freeze the tail so both graphs cover everything
        patched = services["incremental"].overlay.snapshot_processor.index
        rebuilt = services["rebuild"].overlay.snapshot_processor.index
        assert patched.dag.num_nodes == rebuilt.dag.num_nodes
        for mine, theirs in zip(patched.dag.nodes, rebuilt.dag.nodes):
            assert mine.node_id == theirs.node_id
            assert mine.interval == theirs.interval
            assert mine.members == theirs.members
        assert patched.dag.forward == rebuilt.dag.forward
        assert patched.dag.backward == rebuilt.dag.backward
        assert patched.hypergraph.resolutions == rebuilt.hypergraph.resolutions
        for resolution in patched.hypergraph.resolutions:
            assert (
                patched.hypergraph.layer(resolution).forward
                == rebuilt.hypergraph.layer(resolution).forward
            ), f"long-edge layer {resolution} diverged"
        for object_id in tiny_dataset.object_ids:
            assert patched.find_vertex_id(
                object_id, patched.dag.horizon.end
            ) == rebuilt.find_vertex_id(object_id, rebuilt.dag.horizon.end)

    def test_graph_ledger_incremental_strictly_below_rebuild(
        self, tiny_dataset, tiny_network, tiny_contact_config
    ):
        ledgers = {}
        for mode in ("incremental", "rebuild"):
            service = self._service(
                tiny_dataset,
                tiny_contact_config,
                max_delta_contacts=16,
                graph_mode=mode,
            )
            service.drain(tiny_dataset)
            assert service.num_merges > 3
            ledgers[mode] = service.graph_records_written
            assert_methods_agree(
                reference_evaluator(tiny_network),
                {f"graph-{mode}": service.query},
                random_queries(tiny_dataset, count=20, seed=29),
                check_earliest=True,
            )
        assert ledgers["incremental"] < ledgers["rebuild"], ledgers

    def test_forced_merge_at_same_bound_applies_empty_patch(
        self, tiny_dataset, tiny_network, tiny_contact_config
    ):
        service = self._service(
            tiny_dataset, tiny_contact_config, graph_mode="incremental"
        )
        service.drain(tiny_dataset)
        service.merge()
        index = service.overlay.snapshot_processor.index
        vertices_before = index.num_vertices
        written_before = service.graph_records_written
        service.merge(through=service.watermark)  # zero new ticks
        assert index.num_vertices == vertices_before
        assert service.graph_records_written == written_before
        assert_methods_agree(
            reference_evaluator(tiny_network),
            {"post-noop-merge": service.query},
            random_queries(tiny_dataset, count=10, seed=31),
            check_earliest=True,
        )

    def test_stale_patch_is_rejected_without_side_effects(
        self, tiny_dataset, tiny_contact_config
    ):
        """A patch captured against an older frontier must be refused by
        adoption *before* any overlay state mutates: snapshot store, delta,
        watermark, and index are exactly as they were."""
        from repro.core import IndexConstructionError
        from repro.streaming.service import build_merge

        service = self._service(
            tiny_dataset, tiny_contact_config, graph_mode="incremental"
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=8).batches())
        for batch in batches[:6]:
            service.ingest(batch)
        service.merge()
        # Capture a merge against the current frontier...
        for batch in batches[6:9]:
            service.ingest(batch)
        stale_inputs = service.prepare_merge()
        stale_build = build_merge(stale_inputs, None)
        # ...then advance the live index past it with a real merge.
        service.merge()
        overlay = service.overlay
        vertices = overlay.snapshot_processor.index.num_vertices
        snapshot_size = overlay.snapshot_size
        delta_size = overlay.delta_size
        watermark = overlay.snapshot_watermark
        with pytest.raises(IndexConstructionError):
            service.adopt_merge(stale_build, stale_inputs)
        assert overlay.snapshot_processor.index.num_vertices == vertices
        assert overlay.snapshot_size == snapshot_size
        assert overlay.delta_size == delta_size
        assert overlay.snapshot_watermark == watermark

    def test_close_reopen_answers_match_per_graph_mode(
        self, graph_mode, tmp_path, tiny_dataset, tiny_contact_config
    ):
        """The graph fast path is not persisted, but closing and reopening a
        service must answer identically regardless of how the graph was
        maintained while it was live."""
        storage_config = backend_storage_config("file", str(tmp_path))
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(
                max_delta_contacts=48, graph_mode=graph_mode
            ),
            storage_config=storage_config,
        )
        service.drain(tiny_dataset)
        assert service.num_merges > 0
        final = service.watermark
        workload = random_queries(tiny_dataset, count=15, seed=37)
        live = {query: service.query(query).reachable for query in workload}
        service.close()
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        assert reopened.watermark == final
        assert_methods_agree(
            reference_evaluator(
                prefix_network(tiny_dataset, TINY_THRESHOLD, through=final)
            ),
            {f"reopened-{graph_mode}": reopened.query},
            workload,
            check_earliest=True,
            require_earliest=True,
            context=f"graph_mode={graph_mode}, reopened",
        )
        for query in workload:
            assert bool(reopened.query(query).reachable) == bool(live[query])
        reopened.close()

    def test_engine_streaming_accepts_graph_mode(self, tiny_dataset):
        engine = ReachabilityEngine(tiny_dataset)
        service = engine.streaming(graph_mode="rebuild")
        assert service.streaming_config.graph_mode == "rebuild"
        with pytest.raises(ConfigurationError):
            engine.streaming(graph_mode="bogus")
        with pytest.raises(ConfigurationError):
            StreamingConfig(graph_mode="bogus")
        assert StreamingConfig().with_graph_mode("rebuild").graph_mode == "rebuild"


class TestStreamExperiment:
    def test_stream_replay_driver_rows(self):
        result = stream_replay(
            dataset_names=("rwp-tiny",), num_queries=4, batch_ticks=16
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["events"] == 8000
        assert row["ingest_events_per_sec"] > 0
        assert row["premerge_matches"] == "4/4"
        assert row["postmerge_matches"] == "4/4"


class TestMergeRestageRegression:
    """Regression for the quadratic ``_finish_adopt`` restage.

    After an LSM merge adopts, the rebuilt delta must contain only the closed
    contacts *past* the new snapshot watermark, each exactly once.  The old
    implementation restaged the ingestor's full closed-contact history on
    every merge — quadratic work that also re-added contacts the snapshot had
    already frozen, double-covering their validity ticks."""

    def test_no_duplicate_coverage_after_repeated_merges(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(
                max_delta_contacts=16, build_reachgraph_on_merge=False
            ),
        )
        service.drain(tiny_dataset)
        assert service.stats.merges > 3, "workload must force several merges"
        horizon = tiny_dataset.horizon
        interval = TimeInterval(horizon.start, horizon.end)
        covered = set()
        for contact in service.overlay.collect_contacts(interval, open_contacts=()):
            pair = (contact.first, contact.second)
            for tick in range(contact.validity.start, contact.validity.end + 1):
                assert (pair, tick) not in covered, (
                    f"contact {pair} double-covered at tick {tick}: the merge "
                    f"restaged a contact the snapshot already holds"
                )
                covered.add((pair, tick))

    def test_delta_holds_only_contacts_past_the_snapshot_watermark(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(
                max_delta_contacts=16, build_reachgraph_on_merge=False
            ),
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=10).batches())
        for batch in batches:
            service.ingest(batch)
            frozen = service.overlay.snapshot_watermark
            if frozen is None:
                continue
            horizon = tiny_dataset.horizon
            for contact in service.overlay._delta.contacts_overlapping(
                TimeInterval(horizon.start, horizon.end)
            ):
                assert contact.validity.end > frozen, (
                    f"delta holds {contact} entirely at or before the "
                    f"snapshot watermark {frozen}"
                )
