"""Tests for the streaming ingestion subsystem.

The correctness bar (set by the issue that introduced the subsystem): after
draining a replayed dataset, the streaming service must answer every query
exactly like the batch ``reference`` evaluator over the same data — for all
three merge policies, and also for queries issued mid-stream, where the answer
must reflect the ingested prefix.
"""

from __future__ import annotations

import pytest

from repro.baselines.reference import evaluate_reachability
from repro.contacts import build_contact_network
from repro.core import (
    ConfigurationError,
    Point,
    ReachabilityQuery,
    StreamingConfig,
    StreamingError,
    TimeInterval,
)
from repro.core.engine import ReachabilityEngine
from repro.streaming import (
    AmplificationPolicy,
    ContactEvent,
    DatasetReplaySource,
    DeltaSizePolicy,
    ElapsedIntervalsPolicy,
    GeneratorReplaySource,
    MergeContext,
    SampleEvent,
    StreamBatch,
    StreamIngestor,
    StreamingReachabilityService,
    make_policy,
    replay,
    stream_replay,
)
from repro.generators import RandomWaypointGenerator
from repro.workloads.queries import random_queries

# The contact threshold of the shared tiny_* fixtures (importing it from
# tests/conftest.py would collide with benchmarks/conftest.py when the whole
# repo is collected in one pytest run).
TINY_THRESHOLD = 30.0


# ----------------------------------------------------------------------
# events and sources
# ----------------------------------------------------------------------
class TestEvents:
    def test_batch_rejects_samples_beyond_watermark(self):
        sample = SampleEvent(1, 10, Point(0.0, 0.0))
        with pytest.raises(StreamingError):
            StreamBatch((sample,), watermark=5)

    def test_batch_of_defaults_watermark_to_latest_sample(self):
        batch = StreamBatch.of(
            [SampleEvent(1, 3, Point(0, 0)), SampleEvent(2, 7, Point(1, 1))]
        )
        assert batch.watermark == 7
        assert batch.num_events == 2

    def test_empty_batch_needs_explicit_watermark(self):
        with pytest.raises(StreamingError):
            StreamBatch.of([])
        assert StreamBatch.of([], watermark=4).watermark == 4

    def test_contact_event_roundtrip(self, tiny_network):
        contact = tiny_network.contacts[0]
        event = ContactEvent.from_contact(contact)
        assert event.to_contact() == contact

    def test_contact_event_requires_ordered_pair(self):
        with pytest.raises(StreamingError):
            ContactEvent(5, 2, TimeInterval(0, 1))


class TestSources:
    def test_dataset_replay_covers_every_sample(self, tiny_dataset):
        source = DatasetReplaySource(tiny_dataset, batch_ticks=7)
        batches = list(source.batches())
        total = sum(batch.num_events for batch in batches)
        assert total == source.num_events
        assert total == tiny_dataset.num_objects * tiny_dataset.num_instants
        watermarks = [batch.watermark for batch in batches]
        assert watermarks == sorted(watermarks)
        assert watermarks[-1] == tiny_dataset.horizon.end

    def test_generator_replay_materializes_lazily(self):
        generator = RandomWaypointGenerator(
            num_objects=5, horizon=20, environment_size=(100.0, 100.0), seed=3
        )
        source = GeneratorReplaySource(generator, batch_ticks=6)
        batches = list(source.batches())
        assert sum(len(batch) for batch in batches) == 5 * 20

    def test_replay_helper_dispatches(self, tiny_dataset):
        assert isinstance(replay(tiny_dataset), DatasetReplaySource)
        assert isinstance(replay("rwp-tiny"), DatasetReplaySource)
        with pytest.raises(StreamingError):
            replay(42)


# ----------------------------------------------------------------------
# ingestor
# ----------------------------------------------------------------------
class TestStreamIngestor:
    @pytest.fixture()
    def drained(self, tiny_dataset, tiny_contact_config):
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        ingestor.ingest_all(DatasetReplaySource(tiny_dataset, batch_ticks=9).batches())
        return ingestor

    def test_contacts_match_batch_join_up_to_splitting(self, drained, tiny_network):
        # Sum of per-(pair) covered instants must match the batch network
        # exactly: splitting validity intervals never loses coverage.
        def coverage(contacts):
            per_pair = {}
            for contact in contacts:
                key = (contact.first, contact.second)
                per_pair[key] = per_pair.get(key, 0) + contact.validity.length
            return per_pair

        assert coverage(drained.contacts_through_watermark()) == coverage(
            tiny_network.contacts
        )

    def test_prefix_dataset_roundtrips(self, drained, tiny_dataset):
        prefix = drained.prefix_dataset()
        assert prefix.num_objects == tiny_dataset.num_objects
        assert prefix.horizon == tiny_dataset.horizon
        t = tiny_dataset.horizon.midpoint
        assert prefix.positions_at(t) == tiny_dataset.positions_at(t)

    def test_grid_cells_flushed_in_interval_order(self, drained):
        keys = drained.flushed_cell_keys()
        assert keys, "expected at least one flushed cell"
        interval_indices = [key[0] for key in keys]
        assert interval_indices == sorted(interval_indices)
        records = drained.read_cell(keys[0])
        times = [record[1] for record in records]
        assert times == sorted(times)

    def test_watermark_regression_rejected(self, tiny_dataset, tiny_contact_config):
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=5).batches())
        ingestor.ingest(batches[1])
        with pytest.raises(StreamingError):
            ingestor.ingest(batches[0])

    def test_late_sample_rejected(self, tiny_dataset, tiny_contact_config):
        ingestor = StreamIngestor(
            tiny_dataset.environment_size, contact_config=tiny_contact_config
        )
        ingestor.ingest(StreamBatch.of([SampleEvent(1, 0, Point(0, 0))]))
        with pytest.raises(StreamingError):
            ingestor.ingest(StreamBatch.of([SampleEvent(2, 0, Point(1, 1))], watermark=1))


# ----------------------------------------------------------------------
# merge policies
# ----------------------------------------------------------------------
class TestMergePolicies:
    def _context(self, **overrides):
        base = dict(
            delta_contacts=10,
            snapshot_contacts=100,
            intervals_since_merge=1,
            watermark=50,
            snapshot_watermark=20,
        )
        base.update(overrides)
        return MergeContext(**base)

    def test_delta_size_policy(self):
        policy = DeltaSizePolicy(16)
        assert not policy.should_merge(self._context(delta_contacts=15))
        assert policy.should_merge(self._context(delta_contacts=16))

    def test_elapsed_intervals_policy(self):
        policy = ElapsedIntervalsPolicy(4)
        assert not policy.should_merge(self._context(intervals_since_merge=3))
        assert policy.should_merge(self._context(intervals_since_merge=4))

    def test_amplification_policy(self):
        policy = AmplificationPolicy(0.25)
        assert not policy.should_merge(
            self._context(delta_contacts=24, snapshot_contacts=100)
        )
        assert policy.should_merge(
            self._context(delta_contacts=25, snapshot_contacts=100)
        )
        assert not policy.should_merge(self._context(delta_contacts=0))

    def test_make_policy_respects_config(self):
        assert isinstance(
            make_policy(StreamingConfig(merge_policy="delta-size")), DeltaSizePolicy
        )
        assert isinstance(
            make_policy(StreamingConfig(merge_policy="elapsed-intervals")),
            ElapsedIntervalsPolicy,
        )
        assert isinstance(
            make_policy(StreamingConfig(merge_policy="amplification")),
            AmplificationPolicy,
        )

    def test_streaming_config_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(merge_policy="nope")
        with pytest.raises(ConfigurationError):
            StreamingConfig(batch_ticks=0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(query_cache_size=-1)
        assert StreamingConfig().with_merge_policy("amplification").merge_policy == (
            "amplification"
        )


# ----------------------------------------------------------------------
# service: equivalence with the batch reference evaluator
# ----------------------------------------------------------------------
#: Policy configs tuned so every policy actually merges a few times on the
#: tiny dataset (and the equivalence claim is exercised across merges).
POLICY_CONFIGS = {
    "delta-size": StreamingConfig(merge_policy="delta-size", max_delta_contacts=48),
    "elapsed-intervals": StreamingConfig(
        merge_policy="elapsed-intervals", max_elapsed_intervals=3
    ),
    "amplification": StreamingConfig(
        merge_policy="amplification", max_amplification=0.3
    ),
}


class TestStreamingEquivalence:
    @pytest.mark.parametrize("policy", sorted(POLICY_CONFIGS))
    def test_drained_stream_matches_reference(
        self, policy, tiny_dataset, tiny_network, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=POLICY_CONFIGS[policy],
        )
        service.drain(tiny_dataset)
        assert service.num_merges > 0, "policy thresholds should force merges"
        for query in random_queries(tiny_dataset, count=50, seed=17):
            expected = evaluate_reachability(tiny_network, query)
            actual = service.query(query)
            assert actual.reachable == expected.reachable, str(query)
            if expected.reachable and actual.earliest_time is not None:
                assert actual.earliest_time == expected.earliest_time, str(query)

    @pytest.mark.parametrize("policy", sorted(POLICY_CONFIGS))
    def test_mid_stream_queries_answer_over_prefix(
        self, policy, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=POLICY_CONFIGS[policy],
        )
        workload = random_queries(tiny_dataset, count=12, seed=5)
        source = DatasetReplaySource(tiny_dataset, batch_ticks=8)
        for position, batch in enumerate(source.batches()):
            service.ingest(batch)
            if position % 4 != 2:
                continue
            prefix_window = TimeInterval(
                tiny_dataset.horizon.start, service.watermark
            )
            prefix_network = build_contact_network(
                tiny_dataset, TINY_THRESHOLD, window=prefix_window
            )
            for query in workload:
                expected = evaluate_reachability(prefix_network, query)
                actual = service.query(query)
                assert actual.reachable == expected.reachable, (
                    f"{query} at watermark {service.watermark}"
                )

    def test_queries_before_any_ingest(self, tiny_dataset, tiny_contact_config):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        query = ReachabilityQuery(0, 1, TimeInterval(0, 10))
        assert not service.query(query).reachable
        same = ReachabilityQuery(3, 3, TimeInterval(0, 10))
        result = service.query(same)
        assert result.reachable and result.earliest_time == 0


class TestStreamingService:
    def test_cache_hits_and_invalidation(self, tiny_dataset, tiny_contact_config):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        batches = list(DatasetReplaySource(tiny_dataset, batch_ticks=10).batches())
        service.ingest(batches[0])
        query = ReachabilityQuery(0, 1, TimeInterval(0, 50))
        service.query(query)
        service.query(query)
        assert service.stats.cache_hits == 1
        # Watermark advancement invalidates the cache.
        service.ingest(batches[1])
        service.query(query)
        assert service.stats.cache_hits == 1
        assert service.stats.cache_misses == 2

    def test_cache_capacity_zero_disables_caching(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(query_cache_size=0),
        )
        query = ReachabilityQuery(0, 1, TimeInterval(0, 20))
        service.query(query)
        service.query(query)
        assert service.stats.cache_hits == 0

    def test_ingest_accepts_bare_event_iterables(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        events = [
            SampleEvent.from_sample(trajectory.sample_at(0))
            for trajectory in tiny_dataset
        ]
        assert service.ingest(events) == tiny_dataset.num_objects
        assert service.watermark == 0

    def test_merge_requires_data(self, tiny_dataset, tiny_contact_config):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset, contact_config=tiny_contact_config
        )
        with pytest.raises(StreamingError):
            service.merge()

    def test_forced_merge_clears_delta_and_enables_fast_path(
        self, tiny_dataset, tiny_contact_config
    ):
        service = StreamingReachabilityService.for_dataset(
            tiny_dataset,
            contact_config=tiny_contact_config,
            streaming_config=StreamingConfig(max_delta_contacts=10_000),
        )
        service.drain(tiny_dataset)
        assert service.num_merges == 0
        service.merge()
        assert service.overlay.delta_size == 0
        assert service.overlay.has_reachgraph
        assert service.stats.snapshot_watermark == tiny_dataset.horizon.end

    def test_engine_streaming_wiring(self, tiny_dataset, tiny_contact_config):
        engine = ReachabilityEngine(tiny_dataset, contact_config=tiny_contact_config)
        service = engine.streaming()
        assert isinstance(service, StreamingReachabilityService)
        assert service.contact_config is engine.contact_config
        stats = service.drain(engine.dataset)
        assert stats.events == tiny_dataset.num_objects * tiny_dataset.num_instants


class TestStreamExperiment:
    def test_stream_replay_driver_rows(self):
        result = stream_replay(
            dataset_names=("rwp-tiny",), num_queries=4, batch_ticks=16
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["events"] == 8000
        assert row["ingest_events_per_sec"] > 0
        assert row["premerge_matches"] == "4/4"
        assert row["postmerge_matches"] == "4/4"
