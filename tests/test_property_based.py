"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.contacts import Contact, build_contact_network, pairs_within_distance
from repro.core import Point, TimeInterval
from repro.baselines import earliest_arrival
from repro.storage import BufferPool, SimulatedDisk
from repro.trajectory import MBR

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
intervals = st.tuples(
    st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200)
).map(lambda pair: TimeInterval(min(pair), max(pair)))

points = st.builds(
    Point,
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
)

position_maps = st.dictionaries(
    st.integers(min_value=0, max_value=30),
    st.builds(
        Point,
        st.floats(min_value=0, max_value=500, allow_nan=False),
        st.floats(min_value=0, max_value=500, allow_nan=False),
    ),
    min_size=0,
    max_size=18,
)


class TestTimeIntervalProperties:
    @given(intervals, intervals)
    def test_intersection_is_commutative_and_contained(self, a, b):
        left = a.intersection(b)
        right = b.intersection(a)
        assert left == right
        if left is not None:
            assert a.contains_interval(left)
            assert b.contains_interval(left)
            assert a.overlaps(b)
        else:
            assert not a.overlaps(b)

    @given(intervals, st.integers(min_value=1, max_value=50))
    def test_split_partitions_the_interval(self, interval, chunk):
        parts = list(interval.split(chunk))
        assert sum(len(part) for part in parts) == len(interval)
        assert parts[0].start == interval.start
        assert parts[-1].end == interval.end
        for before, after in zip(parts, parts[1:]):
            assert after.start == before.end + 1
        assert all(len(part) <= chunk for part in parts)

    @given(intervals, intervals)
    def test_union_span_contains_both(self, a, b):
        union = a.union_span(b)
        assert union.contains_interval(a)
        assert union.contains_interval(b)


class TestMbrProperties:
    @given(st.lists(points, min_size=1, max_size=20))
    def test_mbr_contains_every_input_point(self, point_list):
        rect = MBR.from_points(point_list)
        for point in point_list:
            assert rect.contains_point(point)

    @given(st.lists(points, min_size=1, max_size=20), st.floats(min_value=0, max_value=100))
    def test_expanded_mbr_still_contains_points(self, point_list, margin):
        rect = MBR.from_points(point_list).expanded(margin)
        for point in point_list:
            assert rect.contains_point(point)

    @given(st.lists(points, min_size=1, max_size=10), st.lists(points, min_size=1, max_size=10))
    def test_union_contains_both_rectangles(self, first, second):
        a, b = MBR.from_points(first), MBR.from_points(second)
        union = a.union(b)
        assert union.intersects(a) and union.intersects(b)
        assert union.area >= max(a.area, b.area)


class TestJoinProperties:
    @given(position_maps, st.floats(min_value=1.0, max_value=200.0))
    def test_grid_join_matches_brute_force(self, positions, threshold):
        expected = set()
        ids = sorted(positions)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if positions[a].distance_to(positions[b]) <= threshold:
                    expected.add((a, b))
        assert set(pairs_within_distance(positions, threshold)) == expected

    @given(position_maps, st.floats(min_value=1.0, max_value=100.0))
    def test_join_pairs_are_normalized_and_unique(self, positions, threshold):
        pairs = pairs_within_distance(positions, threshold)
        assert len(pairs) == len(set(pairs))
        assert all(a < b for a, b in pairs)


class TestEarliestArrivalProperties:
    contacts_strategy = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=10),
        ).filter(lambda t: t[0] != t[1]),
        min_size=0,
        max_size=25,
    )

    @staticmethod
    def _make_contacts(raw):
        contacts = []
        for a, b, start, length in raw:
            contacts.append(Contact.between(a, b, TimeInterval(start, start + length)))
        return contacts

    @given(contacts_strategy, st.integers(min_value=0, max_value=6))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_arrival_times_lie_inside_the_query_interval(self, raw, source):
        contacts = self._make_contacts(raw)
        interval = TimeInterval(2, 25)
        arrival = earliest_arrival(contacts, source, interval)
        assert arrival[source] == interval.start
        for object_id, t in arrival.items():
            assert interval.start <= t <= interval.end or object_id == source

    @given(contacts_strategy, st.integers(min_value=0, max_value=6))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_monotone_in_interval_extension(self, raw, source):
        contacts = self._make_contacts(raw)
        short = earliest_arrival(contacts, source, TimeInterval(0, 12))
        longer = earliest_arrival(contacts, source, TimeInterval(0, 30))
        assert set(short) <= set(longer)
        for object_id, t in short.items():
            assert longer[object_id] <= t

    @given(contacts_strategy)
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_symmetry_of_single_instant_reachability(self, raw):
        """Property 5.1: reachability over a single instant is symmetric."""
        contacts = self._make_contacts(raw)
        instant = TimeInterval(5, 5)
        for a in range(4):
            for b in range(4):
                if a == b:
                    continue
                forward = b in earliest_arrival(contacts, a, instant, destination=b)
                backward = a in earliest_arrival(contacts, b, instant, destination=a)
                assert forward == backward


class TestBufferPoolProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=39), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=16),
    )
    def test_buffer_pool_never_exceeds_capacity_and_serves_correct_data(
        self, accesses, capacity
    ):
        disk = SimulatedDisk()
        for value in range(40):
            disk.allocate(f"payload-{value}")
        pool = BufferPool(disk, capacity=capacity)
        for block in accesses:
            assert pool.read(block) == f"payload-{block}"
            assert pool.resident_blocks <= capacity
        assert pool.hits + pool.misses == len(accesses)


class TestContactNetworkProperties:
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=25))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_contacts_have_continuous_validity_and_lie_in_horizon(self, num_objects, horizon):
        from repro.generators import RandomWaypointGenerator

        dataset = RandomWaypointGenerator(
            num_objects, horizon, environment_size=(300.0, 300.0), seed=num_objects * 31 + horizon
        ).generate()
        network = build_contact_network(dataset, threshold=40.0)
        for contact in network:
            assert dataset.horizon.contains_interval(contact.validity)
            # Validity is maximal: the pair is within range at every tick of the
            # interval and out of range (or at the horizon edge) just outside it.
            for t in contact.validity.instants():
                a = dataset.trajectory(contact.first).position_at(t)
                b = dataset.trajectory(contact.second).position_at(t)
                assert a.distance_to(b) <= 40.0 + 1e-9
