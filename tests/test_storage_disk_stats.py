"""Unit tests for the simulated disk and its IO accounting."""

from __future__ import annotations

import pytest

from repro.core import StorageError
from repro.core.errors import BlockOutOfRangeError
from repro.storage import IOStats, SimulatedDisk


class TestIOStats:
    def test_first_read_is_random(self):
        stats = IOStats()
        stats.record_read(5)
        assert stats.random_reads == 1
        assert stats.sequential_reads == 0

    def test_consecutive_block_read_is_sequential(self):
        stats = IOStats()
        stats.record_read(5)
        stats.record_read(6)
        stats.record_read(7)
        assert stats.random_reads == 1
        assert stats.sequential_reads == 2

    def test_non_consecutive_read_is_random(self):
        stats = IOStats()
        stats.record_read(5)
        stats.record_read(9)
        stats.record_read(3)
        assert stats.random_reads == 3

    def test_backwards_read_is_random(self):
        stats = IOStats()
        stats.record_read(5)
        stats.record_read(4)
        assert stats.random_reads == 2

    def test_normalization_uses_sequential_cost(self):
        stats = IOStats(sequential_cost=20)
        stats.record_read(0)
        for block in range(1, 21):
            stats.record_read(block)
        # 1 random + 20 sequential = 2.0 normalized
        assert stats.normalized() == pytest.approx(2.0)

    def test_snapshot_delta(self):
        stats = IOStats()
        stats.record_read(0)
        before = stats.snapshot()
        stats.record_read(1)
        stats.record_read(10)
        delta = stats.delta_since(before)
        assert delta.sequential_reads == 1
        assert delta.random_reads == 1

    def test_reset_locality_breaks_sequential_run(self):
        stats = IOStats()
        stats.record_read(5)
        stats.reset_locality()
        stats.record_read(6)
        assert stats.random_reads == 2

    def test_reset_clears_everything(self):
        stats = IOStats()
        stats.record_read(1)
        stats.record_write(2)
        stats.record_buffer_hit(1)
        stats.reset()
        assert stats.total_reads == 0
        assert stats.writes == 0
        assert stats.buffer_hits == 0


class TestSimulatedDisk:
    def test_allocate_returns_increasing_ids(self):
        disk = SimulatedDisk()
        first = disk.allocate("a")
        second = disk.allocate("b")
        assert (first, second) == (0, 1)
        assert disk.num_blocks == 2

    def test_read_returns_written_payload_and_charges_io(self):
        disk = SimulatedDisk()
        block = disk.allocate()
        disk.write(block, {"hello": 1})
        before_reads = disk.stats.total_reads
        assert disk.read(block) == {"hello": 1}
        assert disk.stats.total_reads == before_reads + 1

    def test_peek_does_not_charge_io(self):
        disk = SimulatedDisk()
        block = disk.allocate("payload")
        reads_before = disk.stats.total_reads
        assert disk.peek(block) == "payload"
        assert disk.stats.total_reads == reads_before

    def test_out_of_range_access_raises(self):
        disk = SimulatedDisk()
        with pytest.raises(BlockOutOfRangeError):
            disk.read(0)
        disk.allocate()
        with pytest.raises(BlockOutOfRangeError):
            disk.read(5)

    def test_allocate_many_is_contiguous(self):
        disk = SimulatedDisk()
        disk.allocate("x")
        blocks = disk.allocate_many(4)
        assert blocks == [1, 2, 3, 4]
        assert disk.num_blocks == 5

    def test_allocate_many_rejects_negative(self):
        with pytest.raises(StorageError):
            SimulatedDisk().allocate_many(-1)

    def test_sequential_scan_is_mostly_sequential_io(self):
        disk = SimulatedDisk()
        for value in range(50):
            disk.allocate(value)
        for block in range(50):
            disk.read(block)
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == 49
