"""Unit tests for the trajectory generators (RWP, road network, sparse GPS)."""

from __future__ import annotations


import pytest

from repro.core import DatasetError
from repro.generators import (
    RandomWaypointGenerator,
    RoadNetwork,
    RoadNetworkGenerator,
    SparseGpsTraceGenerator,
)


class TestRandomWaypointGenerator:
    def test_dataset_dimensions(self):
        dataset = RandomWaypointGenerator(10, 50, environment_size=(500, 500), seed=1).generate()
        assert dataset.num_objects == 10
        assert dataset.num_instants == 50

    def test_positions_stay_inside_environment(self):
        dataset = RandomWaypointGenerator(8, 80, environment_size=(300, 200), seed=2).generate()
        for trajectory in dataset:
            for sample in trajectory.samples():
                assert 0 <= sample.position.x <= 300
                assert 0 <= sample.position.y <= 200

    def test_determinism_with_same_seed(self):
        first = RandomWaypointGenerator(5, 30, environment_size=(400, 400), seed=9).generate()
        second = RandomWaypointGenerator(5, 30, environment_size=(400, 400), seed=9).generate()
        for object_id in first.object_ids:
            assert [s.position for s in first.trajectory(object_id).samples()] == [
                s.position for s in second.trajectory(object_id).samples()
            ]

    def test_different_seeds_differ(self):
        first = RandomWaypointGenerator(5, 30, environment_size=(400, 400), seed=1).generate()
        second = RandomWaypointGenerator(5, 30, environment_size=(400, 400), seed=2).generate()
        assert any(
            first.trajectory(i).position_at(10) != second.trajectory(i).position_at(10)
            for i in first.object_ids
        )

    def test_step_length_bounded_by_speed(self):
        speed_range = (1.0, 3.0)
        period = 6.0
        dataset = RandomWaypointGenerator(
            5, 60, environment_size=(500, 500), speed_range=speed_range,
            sampling_period=period, seed=3,
        ).generate()
        max_step = speed_range[1] * period + 1e-6
        for trajectory in dataset:
            previous = None
            for sample in trajectory.samples():
                if previous is not None:
                    step = previous.distance_to(sample.position)
                    assert step <= max_step
                previous = sample.position

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_objects": 0},
            {"horizon": 0},
            {"environment_size": (0, 100)},
            {"speed_range": (0.0, 2.0)},
            {"speed_range": (3.0, 1.0)},
            {"sampling_period": 0},
            {"pause_range": (2, 1)},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        defaults = dict(num_objects=5, horizon=10, environment_size=(100.0, 100.0))
        defaults.update(kwargs)
        with pytest.raises(DatasetError):
            RandomWaypointGenerator(**defaults)


class TestRoadNetwork:
    def test_network_is_connected(self):
        network = RoadNetwork((1000.0, 1000.0), rows=4, cols=4, seed=3)
        # A path must exist between every pair of corner intersections.
        path = network.shortest_path(0, network.num_nodes - 1)
        assert path[0] == 0 and path[-1] == network.num_nodes - 1
        assert len(path) >= 2

    def test_shortest_path_to_self(self):
        network = RoadNetwork((1000.0, 1000.0), seed=3)
        assert network.shortest_path(5, 5) == [5]

    def test_nodes_confined_to_coverage_region(self):
        network = RoadNetwork((1000.0, 1000.0), coverage=0.5, seed=1)
        # Grid anchors lie in the lower-left half; jitter is bounded by 20% of
        # one grid cell, so no node strays far beyond 50% of the environment.
        for node in network.nodes:
            assert node.x <= 1000.0 * 0.5 + 100.0
            assert node.y <= 1000.0 * 0.5 + 100.0

    def test_rejects_degenerate_grid(self):
        with pytest.raises(DatasetError):
            RoadNetwork((100.0, 100.0), rows=1, cols=5)

    def test_edge_between_unknown_pair_raises(self):
        network = RoadNetwork((1000.0, 1000.0), rows=4, cols=4, seed=3)
        with pytest.raises(DatasetError):
            network.edge_between(0, network.num_nodes - 1)


class TestRoadNetworkGenerator:
    def test_vehicles_stay_near_the_road_network(self):
        generator = RoadNetworkGenerator(6, 60, environment_size=(5000.0, 5000.0), seed=4)
        dataset = generator.generate()
        # Every sampled position lies on a road segment, i.e. within the
        # coverage region of the network (plus jitter slack).
        for trajectory in dataset:
            for sample in trajectory.samples():
                assert sample.position.x <= 5000.0 * 0.5 + 300.0
                assert sample.position.y <= 5000.0 * 0.5 + 300.0

    def test_deterministic_given_seed(self):
        a = RoadNetworkGenerator(4, 40, environment_size=(4000.0, 4000.0), seed=5).generate()
        b = RoadNetworkGenerator(4, 40, environment_size=(4000.0, 4000.0), seed=5).generate()
        assert a.trajectory(2).position_at(20) == b.trajectory(2).position_at(20)

    def test_rejects_non_positive_sampling_period(self):
        with pytest.raises(DatasetError):
            RoadNetworkGenerator(4, 40, sampling_period=0)


class TestSparseGpsTraceGenerator:
    def test_output_is_dense_despite_sparse_recording(self):
        generator = SparseGpsTraceGenerator(
            5, 60, environment_size=(5000.0, 5000.0), recording_interval=10, seed=6
        )
        dataset = generator.generate()
        assert dataset.num_instants == 60
        assert dataset.num_objects == 5

    def test_interpolated_positions_move_continuously(self):
        generator = SparseGpsTraceGenerator(
            4, 50, environment_size=(5000.0, 5000.0), recording_interval=10, seed=6
        )
        dataset = generator.generate()
        # Between recorded fixes the interpolation is linear, so per-tick
        # displacement within one recording window is constant.
        trajectory = dataset.trajectory(0)
        steps = [
            trajectory.position_at(t).distance_to(trajectory.position_at(t + 1))
            for t in range(1, 8)
        ]
        assert all(step == pytest.approx(steps[0], abs=1e-6) for step in steps)

    def test_rejects_non_positive_recording_interval(self):
        with pytest.raises(DatasetError):
            SparseGpsTraceGenerator(4, 40, recording_interval=0)
