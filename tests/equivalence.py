"""Reusable cross-method equivalence assertions.

Every index, baseline, and streaming service in this repo answers the same
question; the strongest guarantee the test suite gives is that they all
answer it *identically*.  This module is the one place that comparison loop
lives: hand it a ground-truth evaluator and a mapping of named methods, and
it asserts that every method returns the reference verdict (and, when asked,
the exact earliest reach time) on every query — collecting all disagreements
before failing so a mismatch report shows the full picture.

Used by ``test_streaming.py``, ``test_integration_equivalence.py``, and the
sharded-ingestion property suite in ``test_sharding.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.baselines.reference import evaluate_reachability
from repro.contacts import build_contact_network
from repro.contacts.network import ContactNetwork
from repro.core import (
    GRAPH_MODES,
    MERGE_EXECUTORS,
    STORAGE_BACKENDS,
    QueryResult,
    ReachabilityQuery,
    StorageConfig,
    TimeInterval,
)
from repro.trajectory.model import TrajectoryDataset

__all__ = [
    "EQUIVALENCE_BACKENDS",
    "EQUIVALENCE_GRAPH_MODES",
    "EQUIVALENCE_LABEL_MODES",
    "EQUIVALENCE_MERGE_EXECUTORS",
    "backend_storage_config",
    "prefix_network",
    "reference_evaluator",
    "assert_methods_agree",
    "assert_reopened_matches_prefix",
]

Evaluator = Callable[[ReachabilityQuery], QueryResult]

#: The storage-backend axis of the equivalence suites: every service variant
#: (streaming, sharded, async) must answer bit-identically no matter which
#: block device its snapshot extents land on.
EQUIVALENCE_BACKENDS = tuple(b for b in STORAGE_BACKENDS if b != "sim")

#: The ReachGraph-maintenance axis: whether merges patch the reduced DAG in
#: place or rebuild the index from scratch must never change an answer — at
#: any watermark, on any service variant.
EQUIVALENCE_GRAPH_MODES = GRAPH_MODES

#: The merge-executor axis: where the pure build phase of a merge runs —
#: the calling thread, a thread pool, or a worker process — must never change
#: an answer.  The adopt phase always runs on the owning thread, so every
#: executor kind commits byte-identical snapshots.
EQUIVALENCE_MERGE_EXECUTORS = MERGE_EXECUTORS

#: The interval-label axis: whether the ReachGraph fast path consults the
#: GRAIL-style label index (O(1) negative rejection + frontier pruning) or
#: traverses unpruned must never change an answer — labels are a one-sided
#: filter whose ``True`` verdicts are provably exact, so both settings answer
#: bit-identically at every watermark.
EQUIVALENCE_LABEL_MODES = (True, False)


def backend_storage_config(
    backend: str, storage_dir: Optional[str] = None
) -> Optional[StorageConfig]:
    """A storage config placing a service's blocks on ``backend``.

    ``"sim"`` returns ``None`` (the services' default config).  Persistent
    backends without a ``storage_dir`` run in anonymous scratch directories
    that vanish with the storage system — pass a real directory (e.g. a
    pytest ``tmp_path``) when the test exercises close/reopen.
    """
    if backend == "sim":
        return None
    return StorageConfig(backend=backend, storage_dir=storage_dir)


def prefix_network(
    dataset: TrajectoryDataset,
    threshold: float,
    through: Optional[int] = None,
) -> ContactNetwork:
    """The batch contact network of ``dataset`` up to instant ``through``.

    With ``through=None`` the full horizon is used.  This is the ground truth
    a streaming service must match after ingesting the prefix that ends at
    ``through`` (its watermark, or a sharded service's low-watermark).
    """
    window = None
    if through is not None:
        window = TimeInterval(dataset.horizon.start, through)
    return build_contact_network(dataset, threshold, window=window)


def reference_evaluator(network: ContactNetwork) -> Evaluator:
    """The batch ``reference`` evaluator bound to a contact network."""
    return lambda query: evaluate_reachability(network, query)


def assert_methods_agree(
    reference: Evaluator,
    methods: Mapping[str, Evaluator],
    queries: Iterable[ReachabilityQuery],
    check_earliest: bool = False,
    require_earliest: bool = False,
    context: str = "",
) -> None:
    """Assert every method returns the reference verdict on every query.

    With ``check_earliest`` the earliest reach time of reachable queries is
    compared too — but only when the method reports one (bidirectional
    traversals legitimately return ``None``).  ``require_earliest``
    additionally treats a missing earliest time as a disagreement, for
    methods that are supposed to compute it exactly (ReachGrid, SPJ, the
    streaming union path).  All disagreements are collected before failing so
    the assertion message shows every mismatch, not just the first.
    """
    disagreements = []
    for query in queries:
        expected = reference(query)
        for name, evaluate in methods.items():
            actual = evaluate(query)
            if bool(actual.reachable) != bool(expected.reachable):
                disagreements.append(
                    f"{name}: {query}: reachable={actual.reachable}, "
                    f"reference says {expected.reachable}"
                )
            elif check_earliest and expected.reachable:
                if actual.earliest_time is None:
                    if require_earliest:
                        disagreements.append(
                            f"{name}: {query}: earliest_time missing, "
                            f"reference says {expected.earliest_time}"
                        )
                elif actual.earliest_time != expected.earliest_time:
                    disagreements.append(
                        f"{name}: {query}: earliest_time={actual.earliest_time}, "
                        f"reference says {expected.earliest_time}"
                    )
    suffix = f" [{context}]" if context else ""
    assert not disagreements, (
        f"{len(disagreements)} disagreement(s) with the reference evaluator"
        f"{suffix}:\n" + "\n".join(disagreements)
    )


def assert_reopened_matches_prefix(
    reopened,
    dataset: TrajectoryDataset,
    threshold: float,
    queries: Iterable[ReachabilityQuery],
    context: str = "",
) -> None:
    """The close/reopen axis of the equivalence contract, in one call.

    ``reopened`` is any read-only restored service (unsharded
    ``SnapshotQueryService``, ``ShardedSnapshotQueryService``, or the result
    of ``AsyncReachabilityService.reopen``): whatever watermark it reports is
    the prefix it promised, and every answer must match the batch reference
    evaluator over exactly that prefix.  Earliest reach times are compared
    whenever the service reports them, but not *required* — a reopened
    service whose delta is empty answers through the restored ReachGraph
    fast path, whose bidirectional traversal legitimately omits them.
    """
    network = prefix_network(dataset, threshold, through=reopened.watermark)
    assert_methods_agree(
        reference_evaluator(network),
        {"reopened": reopened.query},
        queries,
        check_earliest=True,
        context=context or f"reopened at watermark {reopened.watermark}",
    )
