"""Shared plumbing for the experiment drivers.

An *experiment* reproduces one table or figure of the paper's evaluation
section: it builds the relevant index(es) on a (scaled-down) dataset, runs a
query workload through them, and reports aggregate rows that have the same
columns as the paper's plot axes.  The drivers live in
:mod:`repro.experiments.figures`; this module holds the result containers and
the aggregation helpers they share.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.types import QueryResult, ReachabilityQuery
from ..workloads.queries import QueryWorkload

__all__ = ["ExperimentResult", "WorkloadAggregate", "run_workload", "aggregate_results"]


@dataclass(frozen=True, slots=True)
class WorkloadAggregate:
    """Aggregate statistics of evaluating one workload with one method."""

    method: str
    num_queries: int
    mean_io: float
    mean_random_ios: float
    mean_cpu_seconds: float
    mean_visited: float
    reachable_fraction: float

    def as_row(self) -> Dict[str, object]:
        """Flatten into a plain dict (one table row)."""
        return {
            "method": self.method,
            "queries": self.num_queries,
            "mean_io": round(self.mean_io, 3),
            "mean_random_ios": round(self.mean_random_ios, 3),
            "mean_cpu_ms": round(self.mean_cpu_seconds * 1000.0, 3),
            "mean_visited": round(self.mean_visited, 2),
            "reachable_fraction": round(self.reachable_fraction, 3),
        }


@dataclass(slots=True)
class ExperimentResult:
    """The output of one experiment driver: named rows plus free-form notes."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one row (keyword arguments become columns)."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-form observation (shown below the table)."""
        self.notes.append(note)

    def column_names(self) -> List[str]:
        """Union of the column names across rows, in first-seen order."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def column(self, name: str) -> List[object]:
        """The values of one column across all rows (missing cells skipped)."""
        return [row[name] for row in self.rows if name in row]


def aggregate_results(method: str, results: Sequence[QueryResult]) -> WorkloadAggregate:
    """Aggregate per-query results into one row."""
    if not results:
        return WorkloadAggregate(method, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return WorkloadAggregate(
        method=method,
        num_queries=len(results),
        mean_io=statistics.fmean(result.io for result in results),
        mean_random_ios=statistics.fmean(result.random_ios for result in results),
        mean_cpu_seconds=statistics.fmean(result.cpu_seconds for result in results),
        mean_visited=statistics.fmean(result.visited for result in results),
        reachable_fraction=statistics.fmean(
            1.0 if result.reachable else 0.0 for result in results
        ),
    )


def run_workload(
    evaluate: Callable[[ReachabilityQuery], QueryResult],
    workload: QueryWorkload | Iterable[ReachabilityQuery],
    method: str = "method",
    limit: Optional[int] = None,
) -> WorkloadAggregate:
    """Evaluate every query of a workload and aggregate the results."""
    results: List[QueryResult] = []
    for position, query in enumerate(workload):
        if limit is not None and position >= limit:
            break
        results.append(evaluate(query))
    return aggregate_results(method, results)
