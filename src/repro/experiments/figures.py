"""Experiment drivers: one function per table/figure of the paper's evaluation.

Every driver returns an :class:`~repro.experiments.harness.ExperimentResult`
whose rows mirror the axes of the corresponding plot (or the columns of the
corresponding table).  The drivers run on the scaled-down canned datasets of
:mod:`repro.workloads.datasets`; absolute numbers therefore differ from the
paper's 100+ GB testbed, but the comparative shapes — who wins, where the
crossovers are — are the quantities being reproduced (see EXPERIMENTS.md).

The module keeps a small cache of generated datasets and contact networks so
that a benchmark session that regenerates several figures does not pay for the
spatiotemporal join more than once per dataset.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

from ..baselines.grail import GrailIndex
from ..baselines.spj import SpjBaseline
from ..contacts.join import build_contact_network
from ..contacts.network import ContactNetwork
from ..core.config import GrailConfig, ReachGraphConfig, ReachGridConfig
from ..reachgraph.augmentation import augment_dag
from ..reachgraph.index import ReachGraphIndex
from ..reachgraph.query import ReachGraphQueryProcessor
from ..reachgraph.reduction import reduce_contact_network
from ..reachgrid.index import ReachGridIndex
from ..reachgrid.query import ReachGridQueryProcessor
from ..trajectory.model import TrajectoryDataset
from ..trajectory.store import TrajectoryStore
from ..workloads.datasets import DATASETS, DatasetSpec
from ..workloads.queries import fixed_length_queries, random_queries
from .harness import ExperimentResult, run_workload

__all__ = [
    "table1_complexity",
    "figure8_grid_resolution",
    "figure9_reachgrid_construction",
    "figure10_contact_network_size",
    "figure11_dn_construction_time",
    "reduction_ratio",
    "table4_average_degree",
    "figure12_partition_depth",
    "figure13_traversal_strategies",
    "reachgrid_vs_spj",
    "figure14_reachgrid_vs_reachgraph",
    "figure15_cpu_time",
    "table5_grail_comparison",
    "EXPERIMENTS",
    "clear_cache",
]

# ----------------------------------------------------------------------
# dataset / network cache
# ----------------------------------------------------------------------
_DATASET_CACHE: Dict[str, TrajectoryDataset] = {}
_NETWORK_CACHE: Dict[str, ContactNetwork] = {}


def clear_cache() -> None:
    """Drop every cached dataset and contact network (frees memory)."""
    _DATASET_CACHE.clear()
    _NETWORK_CACHE.clear()


def _spec(name: str) -> DatasetSpec:
    return DATASETS[name]


def _dataset(name: str) -> TrajectoryDataset:
    if name not in _DATASET_CACHE:
        _DATASET_CACHE[name] = _spec(name).generate()
    return _DATASET_CACHE[name]


def _network(name: str) -> ContactNetwork:
    if name not in _NETWORK_CACHE:
        _NETWORK_CACHE[name] = build_contact_network(
            _dataset(name), _spec(name).contact_threshold
        )
    return _NETWORK_CACHE[name]


def _default_query_length(dataset: TrajectoryDataset) -> Tuple[int, int]:
    """The paper's [150, 350] query-length range, clamped to the horizon."""
    horizon = dataset.num_instants
    return (min(150, max(2, horizon // 4)), min(350, horizon))


# ----------------------------------------------------------------------
# Table 1 — complexity comparison (analytical)
# ----------------------------------------------------------------------
def table1_complexity() -> ExperimentResult:
    """Table 1: analytical IO complexity of GRAIL, ReachGraph, and ReachGrid."""
    result = ExperimentResult(
        experiment="table1",
        description="Analytical complexity comparison (Table 1)",
    )
    result.add_row(
        approach="GRAIL",
        query_time="O(|O| * |Tp| * nr)",
        construction_time="O(d * |O| * |T|)",
    )
    result.add_row(
        approach="ReachGraph",
        query_time="O(|O| * |T'p| / (np * bp))",
        construction_time="O(|O| * |T|)",
    )
    result.add_row(
        approach="ReachGrid",
        query_time="O(|O| * |T'p| / (nc * bc))",
        construction_time="O(|O| * |T|)",
    )
    result.add_note(
        "|T'p| <= |Tp| is the earliest sub-interval in which the destination "
        "becomes reachable; nc/bc and np/bp are the per-cell / per-partition "
        "object counts and blocking factors."
    )
    return result


# ----------------------------------------------------------------------
# Figure 8 — ReachGrid resolution optimization
# ----------------------------------------------------------------------
def figure8_grid_resolution(
    dataset_name: str = "rwp-small",
    spatial_resolutions: Sequence[float] = (100.0, 200.0, 400.0, 800.0, 1600.0),
    temporal_resolutions: Sequence[int] = (5, 10, 20, 40, 80),
    num_queries: int = 25,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 8: ReachGrid query IO versus spatial and temporal grid resolution."""
    spec = _spec(dataset_name)
    dataset = _dataset(dataset_name)
    workload = random_queries(
        dataset, count=num_queries, length_range=_default_query_length(dataset), seed=seed
    )
    result = ExperimentResult(
        experiment="figure8",
        description=(
            "ReachGrid IO count vs spatial grid resolution (a) and temporal "
            "grid resolution (b), dataset " + dataset_name
        ),
    )

    base = spec.grid_config
    for spatial in spatial_resolutions:
        config = ReachGridConfig(
            temporal_resolution=base.temporal_resolution, spatial_resolution=spatial
        )
        index = ReachGridIndex(dataset, config, spec.contact_config).build()
        aggregate = run_workload(
            ReachGridQueryProcessor(index).evaluate, workload, method="reachgrid"
        )
        result.add_row(
            panel="a",
            spatial_resolution_m=spatial,
            temporal_resolution=base.temporal_resolution,
            mean_io=round(aggregate.mean_io, 3),
        )

    for temporal in temporal_resolutions:
        config = ReachGridConfig(
            temporal_resolution=temporal, spatial_resolution=base.spatial_resolution
        )
        index = ReachGridIndex(dataset, config, spec.contact_config).build()
        aggregate = run_workload(
            ReachGridQueryProcessor(index).evaluate, workload, method="reachgrid"
        )
        result.add_row(
            panel="b",
            spatial_resolution_m=base.spatial_resolution,
            temporal_resolution=temporal,
            mean_io=round(aggregate.mean_io, 3),
        )
    result.add_note(
        "Both sweeps are U-shaped: too fine a grid scatters seeds over many "
        "blocks (more random IO), too coarse a grid drags irrelevant "
        "trajectory segments into every read."
    )
    return result


# ----------------------------------------------------------------------
# Figure 9 — ReachGrid construction time vs |T|
# ----------------------------------------------------------------------
def figure9_reachgrid_construction(
    dataset_names: Sequence[str] = ("rwp-small", "rwp-medium", "rwp-large"),
    horizon_fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> ExperimentResult:
    """Figure 9: ReachGrid index construction time as the horizon grows."""
    result = ExperimentResult(
        experiment="figure9",
        description="ReachGrid construction time vs horizon length",
    )
    for name in dataset_names:
        spec = _spec(name)
        full = _dataset(name)
        for fraction in horizon_fractions:
            length = max(2, int(full.num_instants * fraction))
            dataset = full.restricted(length)
            started = time.perf_counter()
            index = ReachGridIndex(dataset, spec.grid_config, spec.contact_config).build()
            elapsed = time.perf_counter() - started
            result.add_row(
                dataset=name,
                num_objects=dataset.num_objects,
                horizon=length,
                build_seconds=round(elapsed, 4),
                cells=index.num_cells,
                blocks=index.num_blocks,
            )
    result.add_note(
        "Construction time grows with both the number of objects and the "
        "horizon length, as in the paper (Figures 9a/9b)."
    )
    return result


# ----------------------------------------------------------------------
# Figure 10 — contact network (DN) size vs |T|
# ----------------------------------------------------------------------
def figure10_contact_network_size(
    dataset_names: Sequence[str] = ("rwp-small", "rwp-medium", "rwp-large"),
    horizon_fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> ExperimentResult:
    """Figure 10: DN vertex and edge counts as the horizon grows."""
    result = ExperimentResult(
        experiment="figure10",
        description="Contact network (DN) edges and vertices vs horizon length",
    )
    for name in dataset_names:
        network = _network(name)
        full_horizon = network.horizon
        for fraction in horizon_fractions:
            length = max(2, int(full_horizon.length * fraction))
            window = full_horizon.clipped(
                full_horizon.start, full_horizon.start + length - 1
            )
            dag, report = reduce_contact_network(network, window=window)
            result.add_row(
                dataset=name,
                num_objects=network.dataset.num_objects,
                horizon=length,
                dn_vertices=report.dag_vertices,
                dn_edges=report.dag_edges,
            )
    result.add_note(
        "Vertex and edge counts grow with the horizon and with the object "
        "count (Figures 10a/10b)."
    )
    return result


# ----------------------------------------------------------------------
# Figure 11 — DN construction time vs |T|
# ----------------------------------------------------------------------
def figure11_dn_construction_time(
    dataset_names: Sequence[str] = ("rwp-small", "rwp-medium", "vn-small", "vn-medium"),
    horizon_fractions: Sequence[float] = (0.5, 1.0),
) -> ExperimentResult:
    """Figure 11: contact network (DN) construction time as the horizon grows."""
    result = ExperimentResult(
        experiment="figure11",
        description="Contact network (DN) construction time vs horizon length",
    )
    for name in dataset_names:
        spec = _spec(name)
        full = _dataset(name)
        for fraction in horizon_fractions:
            length = max(2, int(full.num_instants * fraction))
            dataset = full.restricted(length)
            started = time.perf_counter()
            network = build_contact_network(dataset, spec.contact_threshold)
            dag, _ = reduce_contact_network(network)
            elapsed = time.perf_counter() - started
            result.add_row(
                dataset=name,
                family=spec.family,
                num_objects=dataset.num_objects,
                horizon=length,
                build_seconds=round(elapsed, 4),
                dn_vertices=dag.num_nodes,
            )
    result.add_note(
        "Construction time increases with object count and horizon; the join "
        "dominates, exactly as in the paper's Figure 11."
    )
    return result


# ----------------------------------------------------------------------
# Section 6.2.1.1 — reduction ratio
# ----------------------------------------------------------------------
def reduction_ratio(
    dataset_names: Sequence[str] = ("rwp-small", "rwp-medium", "vn-small", "vn-medium"),
) -> ExperimentResult:
    """Reduction-phase effectiveness: DN size versus the TEN representation."""
    result = ExperimentResult(
        experiment="reduction",
        description="DN vertices/edges vs TEN vertices/edges (Section 6.2.1.1)",
    )
    for name in dataset_names:
        spec = _spec(name)
        network = _network(name)
        _, report = reduce_contact_network(network)
        result.add_row(
            dataset=name,
            family=spec.family,
            ten_vertices=report.ten_vertices,
            ten_edges=report.ten_edges,
            dn_vertices=report.dag_vertices,
            dn_edges=report.dag_edges,
            vertex_reduction_pct=round(100.0 * report.vertex_reduction, 1),
            edge_reduction_pct=round(100.0 * report.edge_reduction, 1),
        )
    result.add_note(
        "The paper reports ~81%/80% vertex/edge reduction on RWP data and "
        "~64%/61% on VN data; the reproduced reductions are of the same order."
    )
    return result


# ----------------------------------------------------------------------
# Table 4 — average vertex degree per resolution
# ----------------------------------------------------------------------
def table4_average_degree(
    dataset_names: Sequence[str] = ("rwp-medium", "vn-medium", "vnr"),
    resolutions: Sequence[int] = (2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Table 4: average long-edge degree of DN_i for increasing resolutions."""
    result = ExperimentResult(
        experiment="table4",
        description="Average vertex degree of DN_i per resolution (Table 4)",
    )
    for name in dataset_names:
        network = _network(name)
        dag, _ = reduce_contact_network(network)
        hypergraph, report = augment_dag(dag, resolutions)
        for resolution in sorted(resolutions):
            result.add_row(
                dataset=name,
                resolution=resolution,
                average_degree=round(
                    report.average_degree_per_resolution.get(resolution, 0.0), 2
                ),
                long_edges=report.long_edges_per_resolution.get(resolution, 0),
            )
    result.add_note(
        "Average degree grows with the resolution (objects reach more objects "
        "over longer windows); the sparse GPS dataset (vnr) stays much lower, "
        "matching the paper's VN_R column."
    )
    return result


# ----------------------------------------------------------------------
# Figure 12 — partition depth optimization
# ----------------------------------------------------------------------
def figure12_partition_depth(
    dataset_name: str = "rwp-medium",
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    num_queries: int = 25,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 12: BM-BFS query IO versus the disk-partition depth ``dp``."""
    spec = _spec(dataset_name)
    dataset = _dataset(dataset_name)
    network = _network(dataset_name)
    workload = random_queries(
        dataset, count=num_queries, length_range=_default_query_length(dataset), seed=seed
    )
    result = ExperimentResult(
        experiment="figure12",
        description="IO count vs partition depth (dataset " + dataset_name + ")",
    )
    for depth in depths:
        config = ReachGraphConfig(partition_depth=depth)
        index = ReachGraphIndex(
            dataset, config, spec.contact_config, contact_network=network
        ).build()
        processor = ReachGraphQueryProcessor(index)
        aggregate = run_workload(
            lambda query: processor.evaluate(query, strategy="bm-bfs"),
            workload,
            method=f"dp={depth}",
        )
        result.add_row(
            partition_depth=depth,
            mean_io=round(aggregate.mean_io, 3),
            partitions=index.num_partitions,
        )
    result.add_note(
        "Deeper partitions buffer more future vertices per read until the "
        "partitions become so large that irrelevant vertices dominate — the "
        "same trade-off as the paper's Figure 12."
    )
    return result


# ----------------------------------------------------------------------
# Figure 13 — BM-BFS vs B-BFS vs E-DFS
# ----------------------------------------------------------------------
def figure13_traversal_strategies(
    dataset_names: Sequence[str] = ("rwp-medium", "vn-medium"),
    num_queries: int = 25,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 13: ReachGraph online query processing per traversal strategy."""
    result = ExperimentResult(
        experiment="figure13",
        description="ReachGraph query IO: BM-BFS vs B-BFS vs E-DFS",
    )
    for name in dataset_names:
        spec = _spec(name)
        dataset = _dataset(name)
        network = _network(name)
        index = ReachGraphIndex(
            dataset, ReachGraphConfig(), spec.contact_config, contact_network=network
        ).build()
        processor = ReachGraphQueryProcessor(index)
        workload = random_queries(
            dataset,
            count=num_queries,
            length_range=_default_query_length(dataset),
            seed=seed,
        )
        for strategy in ("bm-bfs", "b-bfs", "e-dfs"):
            aggregate = run_workload(
                lambda query, s=strategy: processor.evaluate(query, strategy=s),
                workload,
                method=strategy,
            )
            result.add_row(
                dataset=name,
                strategy=strategy,
                mean_io=round(aggregate.mean_io, 3),
                mean_visited=round(aggregate.mean_visited, 1),
            )
    result.add_note(
        "Expected ordering per dataset: BM-BFS <= B-BFS < E-DFS (the paper "
        "reports >80% improvement over E-DFS and ~15% over B-BFS)."
    )
    return result


# ----------------------------------------------------------------------
# Section 6.1.2 — ReachGrid vs SPJ
# ----------------------------------------------------------------------
def reachgrid_vs_spj(
    dataset_names: Sequence[str] = ("rwp-small", "vn-small"),
    num_queries: int = 15,
    seed: int = 0,
) -> ExperimentResult:
    """ReachGrid versus the naive SPJ baseline (Section 6.1.2)."""
    result = ExperimentResult(
        experiment="spj",
        description="ReachGrid vs SPJ query IO (Section 6.1.2)",
    )
    for name in dataset_names:
        spec = _spec(name)
        dataset = _dataset(name)
        workload = random_queries(
            dataset,
            count=num_queries,
            length_range=_default_query_length(dataset),
            seed=seed,
        )
        grid = ReachGridIndex(dataset, spec.grid_config, spec.contact_config).build()
        grid_aggregate = run_workload(
            ReachGridQueryProcessor(grid).evaluate, workload, method="reachgrid"
        )
        store = TrajectoryStore(dataset).build()
        spj = SpjBaseline(store, spec.contact_threshold)
        spj_aggregate = run_workload(spj.evaluate, workload, method="spj")
        improvement = 0.0
        if spj_aggregate.mean_io > 0:
            improvement = 100.0 * (1.0 - grid_aggregate.mean_io / spj_aggregate.mean_io)
        result.add_row(
            dataset=name,
            reachgrid_mean_io=round(grid_aggregate.mean_io, 3),
            spj_mean_io=round(spj_aggregate.mean_io, 3),
            improvement_pct=round(improvement, 1),
        )
    result.add_note(
        "The paper reports ReachGrid outperforming SPJ by at least 96%; the "
        "reproduced improvement is large on every dataset."
    )
    return result


# ----------------------------------------------------------------------
# Figure 14 — ReachGrid vs ReachGraph across query-interval lengths
# ----------------------------------------------------------------------
def figure14_reachgrid_vs_reachgraph(
    dataset_names: Sequence[str] = ("rwp-medium", "vn-medium"),
    lengths: Sequence[int] = (100, 300, 500),
    num_queries: int = 20,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 14: query IO of ReachGrid and ReachGraph for growing intervals."""
    result = ExperimentResult(
        experiment="figure14",
        description="ReachGrid vs ReachGraph IO per query-interval length",
    )
    for name in dataset_names:
        spec = _spec(name)
        dataset = _dataset(name)
        network = _network(name)
        grid = ReachGridIndex(dataset, spec.grid_config, spec.contact_config).build()
        grid_processor = ReachGridQueryProcessor(grid)
        graph = ReachGraphIndex(
            dataset, ReachGraphConfig(), spec.contact_config, contact_network=network
        ).build()
        graph_processor = ReachGraphQueryProcessor(graph)
        for length in lengths:
            effective = min(length, dataset.num_instants)
            workload = fixed_length_queries(
                dataset, length=effective, count=num_queries, seed=seed
            )
            grid_aggregate = run_workload(
                grid_processor.evaluate, workload, method="reachgrid"
            )
            graph_aggregate = run_workload(
                lambda query: graph_processor.evaluate(query, strategy="bm-bfs"),
                workload,
                method="reachgraph",
            )
            result.add_row(
                dataset=name,
                query_length=effective,
                reachgrid_mean_io=round(grid_aggregate.mean_io, 3),
                reachgraph_mean_io=round(graph_aggregate.mean_io, 3),
            )
    result.add_note(
        "ReachGrid is competitive for short query intervals and falls behind "
        "for long ones; on the road-network (vn) data ReachGraph wins across "
        "the board because the spatial grid cannot exploit locality of a "
        "non-uniform object distribution (Section 6.3)."
    )
    return result


# ----------------------------------------------------------------------
# Figure 15 — CPU time comparison
# ----------------------------------------------------------------------
def figure15_cpu_time(
    dataset_names: Sequence[str] = ("rwp-medium", "vn-medium"),
    lengths: Sequence[int] = (100, 300, 500),
    num_queries: int = 20,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 15: CPU time of ReachGrid vs ReachGraph (disk IO excluded)."""
    result = ExperimentResult(
        experiment="figure15",
        description="ReachGrid vs ReachGraph CPU time per query-interval length",
    )
    for name in dataset_names:
        spec = _spec(name)
        dataset = _dataset(name)
        network = _network(name)
        grid = ReachGridIndex(dataset, spec.grid_config, spec.contact_config).build()
        grid_processor = ReachGridQueryProcessor(grid)
        graph = ReachGraphIndex(
            dataset, ReachGraphConfig(), spec.contact_config, contact_network=network
        ).build()
        graph_processor = ReachGraphQueryProcessor(graph)
        for length in lengths:
            effective = min(length, dataset.num_instants)
            workload = fixed_length_queries(
                dataset, length=effective, count=num_queries, seed=seed
            )
            grid_aggregate = run_workload(
                grid_processor.evaluate, workload, method="reachgrid"
            )
            graph_aggregate = run_workload(
                lambda query: graph_processor.evaluate(query, strategy="bm-bfs"),
                workload,
                method="reachgraph",
            )
            result.add_row(
                dataset=name,
                query_length=effective,
                reachgrid_cpu_ms=round(grid_aggregate.mean_cpu_seconds * 1000.0, 3),
                reachgraph_cpu_ms=round(graph_aggregate.mean_cpu_seconds * 1000.0, 3),
            )
    result.add_note(
        "ReachGraph's CPU time is far lower because its reachability is "
        "precomputed; ReachGrid performs spatiotemporal joins at query time "
        "(Figure 15)."
    )
    return result


# ----------------------------------------------------------------------
# Table 5 — GRAIL vs ReachGraph
# ----------------------------------------------------------------------
def table5_grail_comparison(
    dataset_names: Sequence[str] = ("rwp-medium", "vn-medium"),
    num_queries: int = 25,
    query_length: int = 300,
    seed: int = 0,
) -> ExperimentResult:
    """Table 5: GRAIL vs ReachGraph, memory-resident (runtime) and disk (IO)."""
    result = ExperimentResult(
        experiment="table5",
        description="GRAIL vs ReachGraph: memory runtime and disk IO (Table 5)",
    )
    for name in dataset_names:
        spec = _spec(name)
        dataset = _dataset(name)
        network = _network(name)
        effective = min(query_length, dataset.num_instants)
        workload = fixed_length_queries(
            dataset, length=effective, count=num_queries, seed=seed
        )

        dag, _ = reduce_contact_network(network)
        grail = GrailIndex(dag, GrailConfig()).build()
        graph = ReachGraphIndex(
            dataset, ReachGraphConfig(), spec.contact_config, contact_network=network
        ).build()
        graph_processor = ReachGraphQueryProcessor(graph)

        grail_memory = run_workload(grail.evaluate_memory, workload, method="grail")
        graph_memory = run_workload(
            lambda query: graph_processor.evaluate(query, strategy="bm-bfs"),
            workload,
            method="reachgraph",
        )
        grail_disk = run_workload(grail.evaluate_disk, workload, method="grail-disk")
        graph_disk = run_workload(
            lambda query: graph_processor.evaluate(query, strategy="bm-bfs"),
            workload,
            method="reachgraph-disk",
        )
        result.add_row(
            dataset=name,
            panel="a (memory, runtime ms)",
            grail=round(grail_memory.mean_cpu_seconds * 1000.0, 3),
            reachgraph=round(graph_memory.mean_cpu_seconds * 1000.0, 3),
        )
        improvement = 0.0
        if grail_disk.mean_io > 0:
            improvement = 100.0 * (1.0 - graph_disk.mean_io / grail_disk.mean_io)
        result.add_row(
            dataset=name,
            panel="b (disk, IO count)",
            grail=round(grail_disk.mean_io, 3),
            reachgraph=round(graph_disk.mean_io, 3),
            improvement_pct=round(improvement, 1),
        )
    result.add_note(
        "Expected shape: comparable runtimes in memory (GRAIL may win on RWP, "
        "ReachGraph on VN), and a large ReachGraph advantage in disk IO "
        "(the paper reports 76% and 88%)."
    )
    return result


# ----------------------------------------------------------------------
# registry used by the CLI and the benchmark suite
# ----------------------------------------------------------------------
def _stream_replay(**kwargs) -> ExperimentResult:
    """Streaming ingest throughput and delta vs post-merge query IO."""
    # Imported lazily: repro.streaming.experiment imports this package's
    # harness, so a top-level import here would be circular.
    from ..streaming.experiment import stream_replay

    return stream_replay(**kwargs)


def _sharded_stream_replay(**kwargs) -> ExperimentResult:
    """Sharded streaming ingest: throughput and query IO vs shard count."""
    from ..streaming.experiment import sharded_stream_replay

    return sharded_stream_replay(**kwargs)


def _async_stream_replay(**kwargs) -> ExperimentResult:
    """Sync vs async serving: throughput and query latency under load."""
    from ..streaming.experiment import async_stream_replay

    return async_stream_replay(**kwargs)


def _disk_backend_replay(**kwargs) -> ExperimentResult:
    """Storage backends: ingest/query cost and reopen fidelity per backend."""
    from ..streaming.experiment import disk_backend_replay

    return disk_backend_replay(**kwargs)


def _space_replay(**kwargs) -> ExperimentResult:
    """Space reclamation: device footprint vs live bytes under GC."""
    from ..streaming.experiment import space_replay

    return space_replay(**kwargs)


def _graph_merge_replay(**kwargs) -> ExperimentResult:
    """ReachGraph merge cost: patch the reduced DAG vs rebuild it every merge."""
    from ..streaming.experiment import graph_merge_replay

    return graph_merge_replay(**kwargs)


def _parallel_merge_replay(**kwargs) -> ExperimentResult:
    """Merge-executor scaling: drain cost and build overlap per executor."""
    from ..streaming.experiment import parallel_merge_replay

    return parallel_merge_replay(**kwargs)


def _query_latency_replay(**kwargs) -> ExperimentResult:
    """Query fast path: labels on/off latency, cache warmth, zone-map skips."""
    from ..streaming.experiment import query_latency_replay

    return query_latency_replay(**kwargs)


EXPERIMENTS = {
    "table1": table1_complexity,
    "figure8": figure8_grid_resolution,
    "figure9": figure9_reachgrid_construction,
    "figure10": figure10_contact_network_size,
    "figure11": figure11_dn_construction_time,
    "reduction": reduction_ratio,
    "table4": table4_average_degree,
    "figure12": figure12_partition_depth,
    "figure13": figure13_traversal_strategies,
    "spj": reachgrid_vs_spj,
    "figure14": figure14_reachgrid_vs_reachgraph,
    "figure15": figure15_cpu_time,
    "table5": table5_grail_comparison,
    "stream": _stream_replay,
    "stream-sharded": _sharded_stream_replay,
    "stream-async": _async_stream_replay,
    "stream-disk": _disk_backend_replay,
    "stream-space": _space_replay,
    "stream-graph": _graph_merge_replay,
    "stream-parallel": _parallel_merge_replay,
    "stream-query": _query_latency_replay,
}
