"""Experiment drivers that regenerate the paper's tables and figures."""

from __future__ import annotations

from .figures import EXPERIMENTS, clear_cache
from .harness import ExperimentResult, WorkloadAggregate, aggregate_results, run_workload
from .report import format_result, format_results, render_table

__all__ = [
    "EXPERIMENTS",
    "clear_cache",
    "ExperimentResult",
    "WorkloadAggregate",
    "aggregate_results",
    "run_workload",
    "format_result",
    "format_results",
    "render_table",
]
