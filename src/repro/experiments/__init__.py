"""Experiment drivers that regenerate the paper's tables and figures."""

from __future__ import annotations

from .figures import EXPERIMENTS, clear_cache
from .harness import ExperimentResult, WorkloadAggregate, aggregate_results, run_workload
from .report import (
    format_result,
    format_results,
    format_results_json,
    render_table,
    result_to_dict,
)

__all__ = [
    "EXPERIMENTS",
    "clear_cache",
    "ExperimentResult",
    "WorkloadAggregate",
    "aggregate_results",
    "run_workload",
    "format_result",
    "format_results",
    "format_results_json",
    "render_table",
    "result_to_dict",
]
