"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures and tables; the reproduction
prints the same series as fixed-width text tables so they can be diffed,
pasted into EXPERIMENTS.md, or eyeballed in a terminal.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from .harness import ExperimentResult

__all__ = [
    "format_result",
    "format_results",
    "render_table",
    "result_to_dict",
    "format_results_json",
]


def render_table(column_names: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table with a header rule."""
    materialized: List[List[str]] = [[str(value) for value in row] for row in rows]
    headers = [str(name) for name in column_names]
    widths = [len(header) for header in headers]
    for row in materialized:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[position]) for position, cell in enumerate(cells))

    lines = [format_row(headers), format_row(["-" * width for width in widths])]
    lines.extend(format_row(row) for row in materialized)
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Render one experiment result (title, table, notes)."""
    lines = [f"== {result.experiment}: {result.description} =="]
    columns = result.column_names()
    if result.rows:
        table_rows = [[row.get(column, "") for column in columns] for row in result.rows]
        lines.append(render_table(columns, table_rows))
    else:
        lines.append("(no rows)")
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_results(results: Iterable[ExperimentResult]) -> str:
    """Render several experiment results separated by blank lines."""
    return "\n\n".join(format_result(result) for result in results)


def result_to_dict(result: ExperimentResult) -> Dict[str, object]:
    """Flatten one experiment result into a JSON-serializable dict."""
    return {
        "experiment": result.experiment,
        "description": result.description,
        "columns": result.column_names(),
        "rows": [dict(row) for row in result.rows],
        "notes": list(result.notes),
    }


def format_results_json(results: Iterable[ExperimentResult]) -> str:
    """Render experiment results as a machine-readable JSON document."""
    return json.dumps(
        {"results": [result_to_dict(result) for result in results]},
        indent=2,
        default=str,
    )
