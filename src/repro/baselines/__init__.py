"""Baseline reachability evaluation strategies the paper compares against."""

from __future__ import annotations

from .external_traversal import ExternalBfsBaseline, ExternalDfsBaseline
from .grail import GrailIndex
from .reference import earliest_arrival, evaluate_reachability, reachable_set
from .spj import SpjBaseline

__all__ = [
    "SpjBaseline",
    "GrailIndex",
    "ExternalDfsBaseline",
    "ExternalBfsBaseline",
    "earliest_arrival",
    "evaluate_reachability",
    "reachable_set",
]
