"""SPJ: the naive spatiotemporal-join baseline of Section 6.1.2.

SPJ answers a reachability query by materializing, at query time, the contact
network ``C'`` relevant to the query interval — it retrieves from disk *every*
trajectory segment overlapping the query interval, self-joins them to extract
contacts, and then traverses the resulting network to verify reachability.

Its cost is therefore dominated by reading all samples of the query interval,
regardless of where the source and destination are or how early the
destination becomes reachable — which is exactly the redundancy ReachGrid
avoids.
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..core.errors import QueryError, UnknownObjectError
from ..core.types import QueryResult, ReachabilityQuery, TimeInterval
from ..contacts.join import pairs_within_distance
from ..contacts.network import Contact
from ..trajectory.store import TrajectoryStore
from .reference import earliest_arrival

__all__ = ["SpjBaseline"]


class SpjBaseline:
    """Materialize-then-traverse query evaluation over a raw trajectory store."""

    def __init__(self, store: TrajectoryStore, distance_threshold: float) -> None:
        if not store.is_built:
            raise QueryError("the trajectory store must be built before querying")
        if distance_threshold <= 0:
            raise QueryError("distance_threshold must be positive")
        self.store = store
        self.distance_threshold = distance_threshold

    def evaluate(self, query: ReachabilityQuery) -> QueryResult:
        """Evaluate one reachability query by full materialization of ``C'``."""
        dataset = self.store.dataset
        if query.source not in dataset:
            raise UnknownObjectError(query.source)
        if query.destination not in dataset:
            raise UnknownObjectError(query.destination)
        interval = query.interval.intersection(dataset.horizon)
        if interval is None:
            raise QueryError("query interval does not overlap the dataset horizon")

        storage = self.store.storage
        storage.reset_for_query()
        io_before = storage.snapshot()
        cpu_started = time.process_time()

        contacts = self._materialize_contacts(interval)
        if query.source == query.destination:
            reachable, earliest = True, interval.start
        else:
            arrival = earliest_arrival(
                contacts, query.source, interval, destination=query.destination
            )
            reachable = query.destination in arrival
            earliest = arrival.get(query.destination)

        delta = storage.charge_since(io_before)
        return QueryResult(
            reachable=reachable,
            earliest_time=earliest if reachable else None,
            io=delta.normalized(storage.config.sequential_cost),
            random_ios=delta.random_reads,
            sequential_ios=delta.sequential_reads,
            cpu_seconds=time.process_time() - cpu_started,
            visited=interval.length,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _materialize_contacts(self, interval: TimeInterval) -> List[Contact]:
        """Read every tick of ``interval`` from disk and extract the contacts."""
        open_contacts: Dict[tuple, int] = {}
        finished: List[Contact] = []
        previous_pairs: set = set()
        for t in interval.instants():
            positions = {
                sample.object_id: sample.position for sample in self.store.read_tick(t)
            }
            current_pairs = set(
                pairs_within_distance(positions, self.distance_threshold)
            )
            for pair in previous_pairs - current_pairs:
                start = open_contacts.pop(pair)
                finished.append(Contact(pair[0], pair[1], TimeInterval(start, t - 1)))
            for pair in current_pairs - previous_pairs:
                open_contacts[pair] = t
            previous_pairs = current_pairs
        for pair, start in open_contacts.items():
            finished.append(Contact(pair[0], pair[1], TimeInterval(start, interval.end)))
        return finished
