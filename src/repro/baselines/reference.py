"""Reference (in-memory) reachability evaluation.

A straightforward earliest-arrival sweep over the contacts of a contact
network.  It is *not* one of the paper's competitors; it exists as ground
truth for tests and as the traversal component of the SPJ baseline
(materialize the relevant contact network, then traverse it).

The algorithm processes contact validity intervals in time order and
maintains, for every object, the earliest time at which the item could have
reached it.  An item moves across a contact ``{a, b}`` with validity
``[s, e]`` at time ``max(s, arrival(a))`` provided that time is ``<= e`` —
i.e. the objects are still in contact when the item arrives (contacts are
bidirectional within a single time instance, Property 5.1).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Optional, Set

from ..core.types import ObjectId, QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from ..contacts.network import Contact, ContactNetwork

__all__ = ["earliest_arrival", "evaluate_reachability", "reachable_set"]


def earliest_arrival(
    contacts: Iterable[Contact],
    source: ObjectId,
    interval: TimeInterval,
    destination: Optional[ObjectId] = None,
) -> Dict[ObjectId, TimeInstant]:
    """Earliest time each object becomes reachable from ``source`` in ``interval``.

    Only contacts whose validity overlaps ``interval`` are considered, and the
    item is released at ``interval.start``.  When ``destination`` is given the
    sweep stops as soon as it is reached (early termination).

    Returns a mapping from object id to the earliest reach time; the source
    maps to ``interval.start``.
    """
    arrival: Dict[ObjectId, TimeInstant] = {source: interval.start}
    relevant = [c for c in contacts if c.validity.overlaps(interval)]
    # Sort by validity start; a contact can hand the item over at any instant
    # of its validity interval that is >= the carrier's arrival time.
    relevant.sort(key=lambda c: c.validity.start)

    changed = True
    # A small fixed-point loop: a single pass in start order is not sufficient
    # because a long-lived contact can transmit late (after one of its members
    # is reached by a contact that *starts* later).  Each pass only adds
    # strictly earlier/new arrivals, so the loop terminates quickly.
    while changed:
        changed = False
        for contact in relevant:
            lo = max(contact.validity.start, interval.start)
            hi = min(contact.validity.end, interval.end)
            if lo > hi:
                continue
            a, b = contact.first, contact.second
            for carrier, receiver in ((a, b), (b, a)):
                if carrier not in arrival:
                    continue
                transmit_time = max(lo, arrival[carrier])
                if transmit_time > hi:
                    continue
                if receiver not in arrival or transmit_time < arrival[receiver]:
                    arrival[receiver] = transmit_time
                    changed = True
                    if destination is not None and receiver == destination:
                        return arrival
    return arrival


def reachable_set(
    network: ContactNetwork, source: ObjectId, interval: TimeInterval
) -> Set[ObjectId]:
    """All objects reachable from ``source`` during ``interval``."""
    return set(earliest_arrival(network.contacts, source, interval))


def evaluate_reachability(
    network: ContactNetwork, query: ReachabilityQuery
) -> QueryResult:
    """Evaluate a reachability query exactly, entirely in memory."""
    if query.source == query.destination:
        return QueryResult(reachable=True, earliest_time=query.interval.start)
    arrival = earliest_arrival(
        network.contacts, query.source, query.interval, destination=query.destination
    )
    if query.destination in arrival:
        return QueryResult(
            reachable=True, earliest_time=arrival[query.destination]
        )
    return QueryResult(reachable=False)
