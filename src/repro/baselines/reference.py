"""Reference (in-memory) reachability evaluation.

A straightforward earliest-arrival sweep over the contacts of a contact
network.  It is *not* one of the paper's competitors; it exists as ground
truth for tests and as the traversal component of the SPJ baseline
(materialize the relevant contact network, then traverse it).

The algorithm processes contact validity intervals in time order and
maintains, for every object, the earliest time at which the item could have
reached it.  An item moves across a contact ``{a, b}`` with validity
``[s, e]`` at time ``max(s, arrival(a))`` provided that time is ``<= e`` —
i.e. the objects are still in contact when the item arrives (contacts are
bidirectional within a single time instance, Property 5.1).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set

from ..core.types import ObjectId, QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from ..contacts.network import Contact, ContactNetwork

__all__ = ["earliest_arrival", "evaluate_reachability", "reachable_set"]


def earliest_arrival(
    contacts: Iterable[Contact],
    source: ObjectId,
    interval: TimeInterval,
    destination: Optional[ObjectId] = None,
) -> Dict[ObjectId, TimeInstant]:
    """Earliest time each object becomes reachable from ``source`` in ``interval``.

    Only contacts whose validity overlaps ``interval`` are considered, and the
    item is released at ``interval.start``.  When ``destination`` is given the
    sweep stops as soon as the destination is *settled* (early termination).

    A temporal Dijkstra: objects are settled in order of arrival time, and
    transmission times never decrease along a path (``transmit >= carrier
    arrival``), so a settled arrival is the true minimum — including under
    early termination, and regardless of how contact validity intervals are
    split (the streaming subsystem splits them at merge boundaries).

    Returns a mapping from object id to the earliest reach time; the source
    maps to ``interval.start``.
    """
    by_object: Dict[ObjectId, List[Contact]] = defaultdict(list)
    for contact in contacts:
        if contact.validity.overlaps(interval):
            by_object[contact.first].append(contact)
            by_object[contact.second].append(contact)

    arrival: Dict[ObjectId, TimeInstant] = {source: interval.start}
    settled: Set[ObjectId] = set()
    heap: List[tuple] = [(interval.start, source)]
    while heap:
        time, carrier = heapq.heappop(heap)
        if carrier in settled:
            continue  # a stale heap entry superseded by an earlier arrival
        settled.add(carrier)
        if destination is not None and carrier == destination:
            return arrival
        for contact in by_object[carrier]:
            receiver = contact.other(carrier)
            if receiver in settled:
                continue
            lo = max(contact.validity.start, interval.start)
            hi = min(contact.validity.end, interval.end)
            transmit_time = max(lo, time)
            if transmit_time > hi:
                continue
            if receiver not in arrival or transmit_time < arrival[receiver]:
                arrival[receiver] = transmit_time
                heapq.heappush(heap, (transmit_time, receiver))
    return arrival


def reachable_set(
    network: ContactNetwork, source: ObjectId, interval: TimeInterval
) -> Set[ObjectId]:
    """All objects reachable from ``source`` during ``interval``."""
    return set(earliest_arrival(network.contacts, source, interval))


def evaluate_reachability(
    network: ContactNetwork, query: ReachabilityQuery
) -> QueryResult:
    """Evaluate a reachability query exactly, entirely in memory."""
    if query.source == query.destination:
        return QueryResult(reachable=True, earliest_time=query.interval.start)
    arrival = earliest_arrival(
        network.contacts, query.source, query.interval, destination=query.destination
    )
    if query.destination in arrival:
        return QueryResult(
            reachable=True, earliest_time=arrival[query.destination]
        )
    return QueryResult(reachable=False)
