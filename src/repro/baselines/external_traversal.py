"""Standalone wrappers for the external traversal baselines (E-DFS / E-BFS).

The traversals themselves are implemented inside
:class:`~repro.reachgraph.query.ReachGraphQueryProcessor` (they run on the
same disk-resident hyper graph as BM-BFS, which is what makes Figure 13 an
apples-to-apples comparison).  These wrappers expose them under their own
names so that the benchmark harness and downstream users can treat every
baseline uniformly.
"""

from __future__ import annotations

from ..core.types import QueryResult, ReachabilityQuery
from ..reachgraph.index import ReachGraphIndex
from ..reachgraph.query import ReachGraphQueryProcessor

__all__ = ["ExternalDfsBaseline", "ExternalBfsBaseline"]


class ExternalDfsBaseline:
    """External DFS over the hyper graph (the paper's naive E-DFS baseline)."""

    def __init__(self, index: ReachGraphIndex) -> None:
        self._processor = ReachGraphQueryProcessor(index)

    def evaluate(self, query: ReachabilityQuery) -> QueryResult:
        """Evaluate a query with a plain external depth-first traversal."""
        return self._processor.evaluate(query, strategy="e-dfs")


class ExternalBfsBaseline:
    """External BFS over the hyper graph (slower than E-DFS per the paper)."""

    def __init__(self, index: ReachGraphIndex) -> None:
        self._processor = ReachGraphQueryProcessor(index)

    def evaluate(self, query: ReachabilityQuery) -> QueryResult:
        """Evaluate a query with a plain external breadth-first traversal."""
        return self._processor.evaluate(query, strategy="e-bfs")
