"""GRAIL: randomized interval labelling for graph reachability (Yildirim et al.).

GRAIL is the state-of-the-art memory-resident reachability index the paper
compares against (Section 6.4, Table 5).  Each vertex receives ``d`` interval
labels; label ``i`` of vertex ``v`` is ``[low_i(v), rank_i(v)]`` where
``rank_i`` is the post-order rank of a randomized DFS and ``low_i`` is the
minimum rank in ``v``'s subtree.  ``u`` can reach ``v`` only if every label of
``v`` is contained in the corresponding label of ``u``; queries run a DFS that
prunes with this containment test.

Two query modes are provided, matching the two halves of Table 5:

* **memory-resident** — the labels and adjacency live in memory; queries
  report pure CPU time.
* **disk-resident** — vertex records (labels + successors) are packed onto
  disk blocks *in creation order*, exactly the layout the paper assumes for
  GRAIL ("the vertices are placed on disk in the same order they are
  generated"), and queries are charged the block reads of the pruned DFS.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..core.config import GrailConfig, StorageConfig
from ..core.errors import IndexConstructionError, IndexNotBuiltError, QueryError
from ..core.types import QueryResult, ReachabilityQuery
from ..reachgraph.dag import ContactDag
from ..storage import StorageSystem

__all__ = ["GrailIndex"]

#: One GRAIL interval: (low, rank), both inclusive post-order ranks.
Label = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class _GrailVertexRecord:
    """On-disk record of one DN vertex for the disk-resident GRAIL variant."""

    node_id: int
    start: int
    end: int
    labels: Tuple[Label, ...]
    successors: Tuple[int, ...]


class GrailIndex:
    """GRAIL interval labelling over a reduced contact DAG ``DN``."""

    def __init__(
        self,
        dag: ContactDag,
        config: GrailConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> None:
        self.dag = dag
        self.config = config or GrailConfig()
        self.storage = StorageSystem(storage_config, name="grail", attach=False)
        self._vertex_file = self.storage.new_blockfile("grail-vertices")
        self._labels: List[Tuple[Label, ...]] = []
        self._records_per_extent = self.storage.config.block_size
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "GrailIndex":
        """Compute the ``d`` randomized labelings and lay vertices out on disk."""
        if self._built:
            raise IndexConstructionError("GRAIL index already built")
        rng = random.Random(self.config.seed)
        per_vertex: List[List[Label]] = [[] for _ in range(self.dag.num_nodes)]
        for _ in range(self.config.num_labelings):
            lows, ranks = self._random_labeling(rng)
            for node_id in range(self.dag.num_nodes):
                per_vertex[node_id].append((lows[node_id], ranks[node_id]))
        self._labels = [tuple(labels) for labels in per_vertex]

        # Disk layout: vertices in creation (topological) order, packed into
        # fixed-size chunks, one extent per chunk.
        chunk: List[_GrailVertexRecord] = []
        chunk_index = 0
        for node_id in self.dag.topological_order():
            node = self.dag.node(node_id)
            chunk.append(
                _GrailVertexRecord(
                    node_id=node_id,
                    start=node.interval.start,
                    end=node.interval.end,
                    labels=self._labels[node_id],
                    successors=tuple(self.dag.successors(node_id)),
                )
            )
            if len(chunk) == self._records_per_extent:
                self._vertex_file.append_extent(chunk_index, chunk)
                chunk_index += 1
                chunk = []
        if chunk:
            self._vertex_file.append_extent(chunk_index, chunk)
        self._built = True
        return self

    def _random_labeling(self, rng: random.Random) -> Tuple[List[int], List[int]]:
        """One randomized post-order labeling of the DAG.

        The post-order rank is produced by a DFS from the roots with children
        visited in random order; ``low`` values are then folded bottom-up
        (children precede parents in reverse topological order, so a single
        reverse sweep suffices).
        """
        num_nodes = self.dag.num_nodes
        ranks = [0] * num_nodes
        visited = [False] * num_nodes
        counter = 0

        roots = [
            node_id
            for node_id in self.dag.topological_order()
            if not self.dag.predecessors(node_id)
        ]
        rng.shuffle(roots)
        for root in roots:
            if visited[root]:
                continue
            # Iterative post-order DFS with randomized child order.
            stack: List[Tuple[int, int]] = [(root, 0)]
            children_cache: Dict[int, List[int]] = {}
            visited[root] = True
            while stack:
                node_id, child_index = stack[-1]
                if node_id not in children_cache:
                    children = list(self.dag.successors(node_id))
                    rng.shuffle(children)
                    children_cache[node_id] = children
                children = children_cache[node_id]
                if child_index < len(children):
                    stack[-1] = (node_id, child_index + 1)
                    child = children[child_index]
                    if not visited[child]:
                        visited[child] = True
                        stack.append((child, 0))
                else:
                    counter += 1
                    ranks[node_id] = counter
                    stack.pop()

        lows = list(ranks)
        for node_id in reversed(self.dag.topological_order()):
            for child in self.dag.successors(node_id):
                if lows[child] < lows[node_id]:
                    lows[node_id] = lows[child]
        return lows, ranks

    # ------------------------------------------------------------------
    # label containment
    # ------------------------------------------------------------------
    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("GrailIndex.build() has not been called")

    def labels_of(self, node_id: int) -> Tuple[Label, ...]:
        """The ``d`` interval labels of a vertex."""
        self._require_built()
        return self._labels[node_id]

    @staticmethod
    def _contains(outer: Sequence[Label], inner: Sequence[Label]) -> bool:
        """True when every ``inner`` interval is contained in ``outer``'s."""
        for (outer_low, outer_rank), (inner_low, inner_rank) in zip(outer, inner):
            if inner_low < outer_low or inner_rank > outer_rank:
                return False
        return True

    # ------------------------------------------------------------------
    # memory-resident query (Table 5a)
    # ------------------------------------------------------------------
    def evaluate_memory(self, query: ReachabilityQuery) -> QueryResult:
        """Evaluate a query entirely in memory; only CPU time is reported."""
        self._require_built()
        interval = query.interval.intersection(self.dag.horizon)
        if interval is None:
            raise QueryError("query interval does not overlap the indexed horizon")
        cpu_started = time.process_time()
        source_vertex = self.dag.node_of(query.source, interval.start)
        target_vertex = self.dag.node_of(query.destination, interval.end)
        visited_counter = [0]
        reachable = self._dfs_memory(source_vertex, target_vertex, set(), visited_counter)
        return QueryResult(
            reachable=reachable,
            cpu_seconds=time.process_time() - cpu_started,
            visited=visited_counter[0],
        )

    def _dfs_memory(
        self, current: int, target: int, seen: Set[int], visited_counter: List[int]
    ) -> bool:
        if current == target:
            return True
        seen.add(current)
        visited_counter[0] += 1
        target_labels = self._labels[target]
        for child in self.dag.successors(current):
            if child in seen:
                continue
            if not self._contains(self._labels[child], target_labels):
                continue
            if self._dfs_memory(child, target, seen, visited_counter):
                return True
        return False

    # ------------------------------------------------------------------
    # disk-resident query (Table 5b)
    # ------------------------------------------------------------------
    def evaluate_disk(self, query: ReachabilityQuery) -> QueryResult:
        """Evaluate a query reading vertex records from the simulated disk."""
        self._require_built()
        interval = query.interval.intersection(self.dag.horizon)
        if interval is None:
            raise QueryError("query interval does not overlap the indexed horizon")
        storage = self.storage
        storage.reset_for_query()
        io_before = storage.snapshot()
        cpu_started = time.process_time()

        source_vertex = self.dag.node_of(query.source, interval.start)
        target_vertex = self.dag.node_of(query.destination, interval.end)
        target_labels = self._labels[target_vertex]

        record_cache: Dict[int, _GrailVertexRecord] = {}

        def fetch(node_id: int) -> _GrailVertexRecord:
            record = record_cache.get(node_id)
            if record is not None:
                return record
            extent_key = node_id // self._records_per_extent
            for loaded in self._vertex_file.read_extent(extent_key):
                record_cache[loaded.node_id] = loaded
            return record_cache[node_id]

        visited = 0
        stack = [source_vertex]
        seen = {source_vertex}
        reachable = False
        while stack:
            node_id = stack.pop()
            record = fetch(node_id)
            visited += 1
            if node_id == target_vertex:
                reachable = True
                break
            for child in record.successors:
                if child in seen:
                    continue
                child_record = fetch(child)
                if not self._contains(child_record.labels, target_labels):
                    continue
                seen.add(child)
                stack.append(child)

        delta = storage.charge_since(io_before)
        return QueryResult(
            reachable=reachable,
            io=delta.normalized(storage.config.sequential_cost),
            random_ios=delta.random_reads,
            sequential_ios=delta.sequential_reads,
            cpu_seconds=time.process_time() - cpu_started,
            visited=visited,
        )
