"""Test-support utilities shipped with the library.

The only resident so far is the crash-injection fault-point registry
(:mod:`repro.testing.faults`).  It lives in the package proper — not under
``tests/`` — because production modules embed named :func:`crash_point`
probes, and those probes must import from an installed location.
"""

from .faults import (
    KNOWN_FAULT_POINTS,
    SimulatedCrash,
    arm,
    armed,
    clear,
    crash_point,
    disarm,
    simulate_kill,
)

__all__ = [
    "KNOWN_FAULT_POINTS",
    "SimulatedCrash",
    "arm",
    "armed",
    "clear",
    "crash_point",
    "disarm",
    "simulate_kill",
]
