"""Crash-injection fault points for recovery testing.

Production code calls :func:`crash_point` at the handful of places where a
``kill -9`` would be most damaging (between a manifest write and the device
flush, between the build and adopt halves of a merge, mid-compaction, between
per-shard closes).  The call is a dictionary-membership check when nothing is
armed, so leaving the probes in shipped code costs nothing.

Tests arm a point by name — optionally "after N hits" so a probe inside a
loop can fire on a chosen iteration — and the probe raises
:class:`SimulatedCrash`.  A simulated crash deliberately unwinds *without*
flushing anything: pairing it with :func:`simulate_kill` (which discards the
service's devices the way the kernel would on SIGKILL) leaves on disk exactly
what a real crash would leave.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "FAULT_POINT_DESCRIPTIONS",
    "KNOWN_FAULT_POINTS",
    "SimulatedCrash",
    "arm",
    "armed",
    "clear",
    "crash_point",
    "disarm",
    "simulate_kill",
]


class SimulatedCrash(BaseException):
    """Raised by an armed :func:`crash_point`.

    Derives from ``BaseException`` so ordinary ``except Exception`` cleanup
    handlers — which a real ``kill -9`` would never run — do not swallow it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


#: Every fault point compiled into production code, with where it sits and
#: what a crash there must leave behind.  The keys double as the registry:
#: :data:`KNOWN_FAULT_POINTS` is derived from this mapping, so adding a probe
#: means adding its description here — the two cannot drift apart.
FAULT_POINT_DESCRIPTIONS: Dict[str, str] = {
    "flush-post-ingestor": (
        "Inside StreamingReachabilityService.flush(), after the ingestor's "
        "state (including the WAL journal) is written back but before the "
        "manifest commits.  Recovery must replay the WAL tail past the last "
        "committed flush."
    ),
    "flush-post-manifest": (
        "Inside flush(), after the overlay manifest metadata is staged but "
        "before the storage flush commits it.  Recovery reopens the previous "
        "commit, with the ingestor's WAL durably ahead of it."
    ),
    "merge-pre-adopt": (
        "Between a merge's build phase resolving and adopt_merge() starting — "
        "the built artifacts exist only in memory.  A crash abandons the "
        "build: the manifest still describes the pre-merge commit, and "
        "recovery reopens pre-merge state.  The sharded coordinator fires "
        "this before each shard's adoption."
    ),
    "compaction-mid": (
        "Mid-compaction, after the merged run is staged but before the "
        "superseded runs are retired in the manifest.  Recovery must come up "
        "on the pre-compaction run set."
    ),
    "shard-close": (
        "Between per-shard close() calls during a sharded shutdown — a prefix "
        "of shards closed, the rest merely flushed.  Every shard flushed "
        "before closing began, so recovery loses nothing."
    ),
    "sharded-flush-post-shards": (
        "Inside the coordinator's flush(), after every shard flushed but "
        "before the coordinator's own manifest commits — the shards are "
        "durably ahead of the cross-shard state.  Recovery reconciles the "
        "window from the older coordinator commit."
    ),
    "gc-post-copy": (
        "Inside a backend's copy-forward reclaim, after the compacted "
        "sidecar image is written and fsynced but before the manifest "
        "commits the swap.  The sidecar is uncommitted garbage: recovery "
        "attaches the old image, deletes the stray sidecar, and loses "
        "nothing."
    ),
    "gc-pre-commit": (
        "Inside a backend's copy-forward reclaim, immediately before the "
        "manifest write that commits the compacted image (the remapped "
        "directory/catalog plus the log='gc' redo flag).  A crash on either "
        "side of the commit point must recover: before it the old image is "
        "authoritative; after it, attach redoes the file swap."
    ),
    "wal-truncate-pre-commit": (
        "Inside StreamIngestor.flush(), after the checkpointed journal "
        "prefix is dropped and the state snapshot staged, but before the "
        "storage flush commits either.  Recovery reopens the previous "
        "commit, whose catalog still holds the journal extents, and "
        "replays them as before."
    ),
    "repack-pre-adopt": (
        "Inside ReachGraphIndex.repack_frontier(), after the packed "
        "partition's extent is staged but before the superseded frontier "
        "partitions are retired.  The manifest still describes the "
        "pre-repack catalog, so recovery reopens the unpacked partitions."
    ),
}

#: Every fault point compiled into production code.  ``arm`` validates
#: against this so a typo in a test arms a real probe or fails loudly.
KNOWN_FAULT_POINTS: Tuple[str, ...] = tuple(FAULT_POINT_DESCRIPTIONS)

_armed: Dict[str, int] = {}


def arm(point: str, after: int = 0) -> None:
    """Arm ``point``; the probe raises on its ``after + 1``-th hit."""
    if point not in KNOWN_FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; known points: {KNOWN_FAULT_POINTS}"
        )
    if after < 0:
        raise ValueError("after must be >= 0")
    _armed[point] = after


def disarm(point: str) -> None:
    """Disarm ``point`` if armed (no-op otherwise)."""
    _armed.pop(point, None)


def clear() -> None:
    """Disarm every fault point."""
    _armed.clear()


def armed() -> Tuple[str, ...]:
    """Names of currently armed fault points (order unspecified)."""
    return tuple(_armed)


def crash_point(point: str) -> None:
    """Raise :class:`SimulatedCrash` if ``point`` is armed (else no-op)."""
    remaining = _armed.get(point)
    if remaining is None:
        return
    if remaining > 0:
        _armed[point] = remaining - 1
        return
    del _armed[point]
    raise SimulatedCrash(point)


def simulate_kill(*storages: object) -> None:
    """Drop the given storage systems' devices as ``kill -9`` would.

    Each argument is a :class:`~repro.storage.StorageSystem` (or anything
    with a ``.disk`` exposing ``discard()``).  ``discard`` closes the device
    handle without the final flush, so the on-disk state is whatever earlier
    explicit flushes made durable — exactly the post-SIGKILL picture.
    """
    for storage in storages:
        disk = getattr(storage, "disk", storage)
        discard = getattr(disk, "discard", None)
        if discard is not None:
            discard()
