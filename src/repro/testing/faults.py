"""Crash-injection fault points for recovery testing.

Production code calls :func:`crash_point` at the handful of places where a
``kill -9`` would be most damaging (between a manifest write and the device
flush, between the build and adopt halves of a merge, mid-compaction, between
per-shard closes).  The call is a dictionary-membership check when nothing is
armed, so leaving the probes in shipped code costs nothing.

Tests arm a point by name — optionally "after N hits" so a probe inside a
loop can fire on a chosen iteration — and the probe raises
:class:`SimulatedCrash`.  A simulated crash deliberately unwinds *without*
flushing anything: pairing it with :func:`simulate_kill` (which discards the
service's devices the way the kernel would on SIGKILL) leaves on disk exactly
what a real crash would leave.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "KNOWN_FAULT_POINTS",
    "SimulatedCrash",
    "arm",
    "armed",
    "clear",
    "crash_point",
    "disarm",
    "simulate_kill",
]


class SimulatedCrash(BaseException):
    """Raised by an armed :func:`crash_point`.

    Derives from ``BaseException`` so ordinary ``except Exception`` cleanup
    handlers — which a real ``kill -9`` would never run — do not swallow it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


#: Every fault point compiled into production code.  ``arm`` validates
#: against this so a typo in a test arms a real probe or fails loudly.
KNOWN_FAULT_POINTS: Tuple[str, ...] = (
    "flush-post-ingestor",
    "flush-post-manifest",
    "merge-pre-adopt",
    "compaction-mid",
    "shard-close",
    "sharded-flush-post-shards",
)

_armed: Dict[str, int] = {}


def arm(point: str, after: int = 0) -> None:
    """Arm ``point``; the probe raises on its ``after + 1``-th hit."""
    if point not in KNOWN_FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; known points: {KNOWN_FAULT_POINTS}"
        )
    if after < 0:
        raise ValueError("after must be >= 0")
    _armed[point] = after


def disarm(point: str) -> None:
    """Disarm ``point`` if armed (no-op otherwise)."""
    _armed.pop(point, None)


def clear() -> None:
    """Disarm every fault point."""
    _armed.clear()


def armed() -> Tuple[str, ...]:
    """Names of currently armed fault points (order unspecified)."""
    return tuple(_armed)


def crash_point(point: str) -> None:
    """Raise :class:`SimulatedCrash` if ``point`` is armed (else no-op)."""
    remaining = _armed.get(point)
    if remaining is None:
        return
    if remaining > 0:
        _armed[point] = remaining - 1
        return
    del _armed[point]
    raise SimulatedCrash(point)


def simulate_kill(*storages: object) -> None:
    """Drop the given storage systems' devices as ``kill -9`` would.

    Each argument is a :class:`~repro.storage.StorageSystem` (or anything
    with a ``.disk`` exposing ``discard()``).  ``discard`` closes the device
    handle without the final flush, so the on-disk state is whatever earlier
    explicit flushes made durable — exactly the post-SIGKILL picture.
    """
    for storage in storages:
        disk = getattr(storage, "disk", storage)
        discard = getattr(disk, "discard", None)
        if discard is not None:
            discard()
