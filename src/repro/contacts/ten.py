"""Time Expanded Network (TEN) model of a contact network.

TEN (Section 5.1.1) instantiates one vertex ``o(t)`` per object per time
instance.  A bidirectional *contact edge* joins ``oi(t)`` and ``oj(t)`` when
the objects are in contact at ``t``; a directed *holding edge* joins ``oi(t)``
to ``oi(t+1)`` (the object keeps the item while time passes).

The TEN of even a modest dataset is large (``|O| x |T|`` vertices), which is
the motivation for the ReachGraph reduction phase.  This class therefore
offers two modes: cheap *counting* of vertices/edges (used by the reduction
ratio experiment in Section 6.2.1.1) and on-demand *snapshot adjacency* (used
by the reduction itself), without ever materializing the full vertex set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from ..core.types import ObjectId, TimeInstant, TimeInterval
from .network import ContactNetwork

__all__ = ["TENVertex", "TimeExpandedNetwork"]


@dataclass(frozen=True, slots=True)
class TENVertex:
    """A TEN vertex ``o(t)``: one object at one time instance."""

    object_id: ObjectId
    time: TimeInstant


class TimeExpandedNetwork:
    """A view of a contact network as a Time Expanded Network."""

    def __init__(self, network: ContactNetwork) -> None:
        self.network = network

    # ------------------------------------------------------------------
    # sizes (Section 6.2.1.1 compares these against DN sizes)
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> TimeInterval:
        """The time horizon of the underlying contact network."""
        return self.network.horizon

    @property
    def num_vertices(self) -> int:
        """``|O| * |T|``: one vertex per object per time instance."""
        return self.network.dataset.num_objects * self.horizon.length

    @property
    def num_holding_edges(self) -> int:
        """Directed edges ``o(t) -> o(t+1)``: ``|O| * (|T| - 1)``."""
        return self.network.dataset.num_objects * (self.horizon.length - 1)

    @property
    def num_contact_edges(self) -> int:
        """Bidirectional contact edges, one per (contact, tick) pair."""
        return self.network.total_contact_instants()

    @property
    def num_edges(self) -> int:
        """Total TEN edge count (holding + contact edges)."""
        return self.num_holding_edges + self.num_contact_edges

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot_vertices(self, t: TimeInstant) -> List[TENVertex]:
        """All TEN vertices of snapshot ``G_t``."""
        return [TENVertex(object_id, t) for object_id in self.network.object_ids]

    def snapshot_adjacency(self, t: TimeInstant) -> Dict[ObjectId, Set[ObjectId]]:
        """Contact-edge adjacency of snapshot ``G_t`` (objects with no contact
        at ``t`` do not appear as keys)."""
        return self.network.snapshot_adjacency(t)

    def snapshot_components(self, t: TimeInstant) -> List[frozenset]:
        """Connected components of snapshot ``G_t`` over *all* objects.

        Objects without contacts at ``t`` form singleton components, matching
        the paper's definition (every object belongs to exactly one component
        of every snapshot).
        """
        adjacency = self.snapshot_adjacency(t)
        components: List[frozenset] = []
        seen: Set[ObjectId] = set()
        for object_id in self.network.object_ids:
            if object_id in seen:
                continue
            if object_id not in adjacency:
                seen.add(object_id)
                components.append(frozenset((object_id,)))
                continue
            # BFS over the snapshot contact graph.
            frontier = [object_id]
            members: Set[ObjectId] = {object_id}
            seen.add(object_id)
            while frontier:
                current = frontier.pop()
                for neighbour in adjacency.get(current, ()):
                    if neighbour not in members:
                        members.add(neighbour)
                        seen.add(neighbour)
                        frontier.append(neighbour)
            components.append(frozenset(members))
        return components

    def iter_snapshots(self) -> Iterator[Tuple[TimeInstant, List[frozenset]]]:
        """Yield ``(t, components of G_t)`` over the whole horizon."""
        for t in self.horizon.instants():
            yield t, self.snapshot_components(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeExpandedNetwork(vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
