"""Contacts and contact networks.

A *contact* ``c = {oi, oj}`` happens when two objects are within the distance
threshold ``dT``; the maximal continuous interval over which they stay within
``dT`` is the contact's *validity interval* ``Tc`` (Section 3.1).  A *contact
network* ``C`` is the collection of all contacts among a set of objects over a
time horizon, together with the trajectory dataset they came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.errors import ContactNetworkError
from ..core.types import ObjectId, TimeInstant, TimeInterval
from ..trajectory.model import TrajectoryDataset

__all__ = ["Contact", "ContactNetwork"]


@dataclass(frozen=True, slots=True)
class Contact:
    """A contact between two objects with a continuous validity interval.

    The pair is stored unordered (contacts are symmetric); ``first`` is always
    the smaller object id.  Two contacts between the same objects with
    disjoint validity intervals are distinct contacts (the paper's ``c1`` and
    ``c4`` example).
    """

    first: ObjectId
    second: ObjectId
    validity: TimeInterval

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ContactNetworkError("a contact requires two distinct objects")
        if self.first > self.second:
            raise ContactNetworkError(
                "contact objects must be stored in ascending id order"
            )

    @staticmethod
    def between(a: ObjectId, b: ObjectId, validity: TimeInterval) -> "Contact":
        """Create a contact normalizing the object order."""
        lo, hi = (a, b) if a < b else (b, a)
        return Contact(lo, hi, validity)

    @property
    def objects(self) -> Tuple[ObjectId, ObjectId]:
        """The two contacting objects (ascending id order)."""
        return (self.first, self.second)

    def involves(self, object_id: ObjectId) -> bool:
        """True when ``object_id`` is one of the contacting objects."""
        return object_id == self.first or object_id == self.second

    def other(self, object_id: ObjectId) -> ObjectId:
        """The partner of ``object_id`` in this contact."""
        if object_id == self.first:
            return self.second
        if object_id == self.second:
            return self.first
        raise ContactNetworkError(f"object {object_id} is not part of this contact")

    def active_at(self, t: TimeInstant) -> bool:
        """True when the contact's validity interval contains ``t``."""
        return self.validity.contains(t)

    def clipped(self, lo: TimeInstant, hi: TimeInstant) -> Optional["Contact"]:
        """This contact restricted to ``[lo, hi]``, or ``None`` if none remains.

        Returns ``self`` when the window already covers the validity interval.
        Splitting or truncating a validity interval at any boundary is
        lossless for reachability (transmission happens at single instants),
        which is the invariant the streaming subsystem's watermark clipping —
        snapshot boundaries, global low-watermarks — relies on.
        """
        if hi < lo:
            return None
        validity = self.validity.clipped(lo, hi)
        if validity is None:
            return None
        if validity == self.validity:
            return self
        return Contact(self.first, self.second, validity)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"c(o{self.first}, o{self.second}, {self.validity})"


class ContactNetwork:
    """The contact network ``C`` of a trajectory dataset over its horizon.

    Contacts are indexed two ways for efficient access during index
    construction and query processing:

    * by time instance — all contacts active at tick ``t`` (used to build the
      TEN snapshots and the per-snapshot connected components), and
    * by object — all contacts involving an object, sorted by start time.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        contacts: Iterable[Contact],
        distance_threshold: float,
    ) -> None:
        self.dataset = dataset
        self.distance_threshold = distance_threshold
        self._contacts: List[Contact] = sorted(
            contacts, key=lambda c: (c.validity.start, c.first, c.second)
        )
        horizon = dataset.horizon
        self._by_time: Dict[TimeInstant, List[Contact]] = {}
        self._by_object: Dict[ObjectId, List[Contact]] = {}
        for contact in self._contacts:
            if not horizon.contains_interval(contact.validity):
                raise ContactNetworkError(
                    f"contact {contact} lies outside the dataset horizon {horizon}"
                )
            if contact.first not in dataset or contact.second not in dataset:
                raise ContactNetworkError(
                    f"contact {contact} references an unknown object"
                )
            for t in contact.validity.instants():
                self._by_time.setdefault(t, []).append(contact)
            self._by_object.setdefault(contact.first, []).append(contact)
            self._by_object.setdefault(contact.second, []).append(contact)

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    @property
    def contacts(self) -> List[Contact]:
        """All contacts sorted by validity start time."""
        return list(self._contacts)

    @property
    def num_contacts(self) -> int:
        """Number of distinct contacts (each with a continuous validity)."""
        return len(self._contacts)

    @property
    def horizon(self) -> TimeInterval:
        """The time horizon of the underlying dataset."""
        return self.dataset.horizon

    @property
    def object_ids(self) -> List[ObjectId]:
        """All object ids of the underlying dataset."""
        return self.dataset.object_ids

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    # ------------------------------------------------------------------
    # snapshot views
    # ------------------------------------------------------------------
    def contacts_at(self, t: TimeInstant) -> List[Contact]:
        """Contacts whose validity interval contains ``t``."""
        return list(self._by_time.get(t, ()))

    def contact_pairs_at(self, t: TimeInstant) -> List[Tuple[ObjectId, ObjectId]]:
        """Pairs of objects in contact at tick ``t``."""
        return [contact.objects for contact in self._by_time.get(t, ())]

    def snapshot_adjacency(self, t: TimeInstant) -> Dict[ObjectId, Set[ObjectId]]:
        """Adjacency lists of the snapshot graph ``G_t`` (contacts only)."""
        adjacency: Dict[ObjectId, Set[ObjectId]] = {}
        for contact in self._by_time.get(t, ()):
            adjacency.setdefault(contact.first, set()).add(contact.second)
            adjacency.setdefault(contact.second, set()).add(contact.first)
        return adjacency

    # ------------------------------------------------------------------
    # per-object views
    # ------------------------------------------------------------------
    def contacts_of(self, object_id: ObjectId) -> List[Contact]:
        """Contacts involving ``object_id``, sorted by start time."""
        return list(self._by_object.get(object_id, ()))

    def contacts_overlapping(self, interval: TimeInterval) -> List[Contact]:
        """Contacts whose validity interval overlaps ``interval``."""
        return [c for c in self._contacts if c.validity.overlaps(interval)]

    # ------------------------------------------------------------------
    # statistics (used by the experiments section)
    # ------------------------------------------------------------------
    def total_contact_instants(self) -> int:
        """Total number of (contact, tick) pairs; a density measure."""
        return sum(contact.validity.length for contact in self._contacts)

    def average_degree_at(self, t: TimeInstant) -> float:
        """Average snapshot degree at tick ``t`` over all objects."""
        adjacency = self.snapshot_adjacency(t)
        if not self.dataset.num_objects:
            return 0.0
        return sum(len(neighbours) for neighbours in adjacency.values()) / float(
            self.dataset.num_objects
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContactNetwork(dataset={self.dataset.name!r}, "
            f"contacts={len(self._contacts)}, dT={self.distance_threshold})"
        )
