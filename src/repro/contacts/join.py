"""Spatiotemporal (window trajectory) join.

Contacts are extracted from trajectories by a self-join: for every time
instance, find all pairs of objects within distance ``dT`` of each other
(Section 4: ``R(Tp) ⋈_dT R(Tp)``).  A uniform grid hash with cell side ``dT``
turns the quadratic all-pairs test into a neighbourhood test over 9 cells,
which is the standard plane-sweep/grid approach used by CPA-style joins.

Two entry points are provided:

* :func:`join_at_instant` — the per-tick join used when building the full
  contact network offline.
* :func:`sweep_join` — the time-sweeping join used by ReachGrid's online
  query processing, which scans a window tick by tick and can stop as soon as
  a new reachable object is found.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.errors import ContactNetworkError
from ..core.types import ObjectId, Point, TimeInstant, TimeInterval
from ..trajectory.model import TrajectoryDataset
from .network import Contact, ContactNetwork

__all__ = [
    "join_at_instant",
    "sweep_join",
    "build_contact_network",
    "pairs_within_distance",
]


def _grid_key(position: Point, cell_size: float) -> Tuple[int, int]:
    return (int(position.x // cell_size), int(position.y // cell_size))


def pairs_within_distance(
    positions: Dict[ObjectId, Point], threshold: float
) -> List[Tuple[ObjectId, ObjectId]]:
    """All unordered pairs of objects within ``threshold`` of each other.

    Uses a uniform grid hash with cell side ``threshold`` so that only the 3x3
    neighbourhood of each cell needs to be examined.
    """
    if threshold <= 0:
        raise ContactNetworkError("distance threshold must be positive")
    cells: Dict[Tuple[int, int], List[ObjectId]] = defaultdict(list)
    for object_id, position in positions.items():
        cells[_grid_key(position, threshold)].append(object_id)

    threshold_sq = threshold * threshold
    pairs: List[Tuple[ObjectId, ObjectId]] = []
    for (cx, cy), members in cells.items():
        # Pairs inside the same cell.
        for i, a in enumerate(members):
            pa = positions[a]
            for b in members[i + 1 :]:
                pb = positions[b]
                dx = pa.x - pb.x
                dy = pa.y - pb.y
                if dx * dx + dy * dy <= threshold_sq:
                    pairs.append((a, b) if a < b else (b, a))
        # Pairs with forward neighbour cells (each unordered cell pair once).
        for dx_cell, dy_cell in ((1, -1), (1, 0), (1, 1), (0, 1)):
            neighbour = cells.get((cx + dx_cell, cy + dy_cell))
            if not neighbour:
                continue
            for a in members:
                pa = positions[a]
                for b in neighbour:
                    pb = positions[b]
                    dx = pa.x - pb.x
                    dy = pa.y - pb.y
                    if dx * dx + dy * dy <= threshold_sq:
                        pairs.append((a, b) if a < b else (b, a))
    return pairs


def join_at_instant(
    dataset: TrajectoryDataset, t: TimeInstant, threshold: float
) -> List[Tuple[ObjectId, ObjectId]]:
    """Pairs of objects of ``dataset`` within ``threshold`` at tick ``t``."""
    return pairs_within_distance(dataset.positions_at(t), threshold)


def sweep_join(
    positions_by_tick: Iterable[Tuple[TimeInstant, Dict[ObjectId, Point]]],
    threshold: float,
    left: Optional[Set[ObjectId]] = None,
) -> Iterator[Tuple[TimeInstant, ObjectId, ObjectId]]:
    """Sweep a window in time order, yielding contact events as they occur.

    ``positions_by_tick`` provides, for each tick of the window in increasing
    order, the positions of the candidate objects.  When ``left`` is given,
    only pairs with at least one member in ``left`` are reported (ReachGrid
    joins seeds against candidates).  Each event is ``(t, a, b)`` with
    ``a < b``; the caller can stop consuming the iterator as soon as it has
    what it needs (early termination).
    """
    for t, positions in positions_by_tick:
        for a, b in pairs_within_distance(positions, threshold):
            if left is not None and a not in left and b not in left:
                continue
            yield (t, a, b)


def build_contact_network(
    dataset: TrajectoryDataset,
    threshold: float,
    window: Optional[TimeInterval] = None,
) -> ContactNetwork:
    """Materialize the contact network of ``dataset`` (or a sub-window of it).

    The join is evaluated tick by tick; runs of consecutive ticks during which
    the same pair stays within ``threshold`` are merged into a single contact
    with a continuous validity interval, as required by Section 3.1.
    """
    horizon = window or dataset.horizon
    horizon = horizon.intersection(dataset.horizon)
    if horizon is None:
        raise ContactNetworkError("join window does not overlap the dataset horizon")

    # Open contacts: pair -> start tick of the current continuous run.
    open_contacts: Dict[Tuple[ObjectId, ObjectId], TimeInstant] = {}
    finished: List[Contact] = []

    previous_pairs: Set[Tuple[ObjectId, ObjectId]] = set()
    for t in horizon.instants():
        current_pairs = set(join_at_instant(dataset, t, threshold))
        # Pairs that stopped being in contact: close their validity interval.
        for pair in previous_pairs - current_pairs:
            start = open_contacts.pop(pair)
            finished.append(Contact(pair[0], pair[1], TimeInterval(start, t - 1)))
        # Pairs that just came into contact: open a new validity interval.
        for pair in current_pairs - previous_pairs:
            open_contacts[pair] = t
        previous_pairs = current_pairs

    # Close every contact still open at the end of the window.
    for pair, start in open_contacts.items():
        finished.append(Contact(pair[0], pair[1], TimeInterval(start, horizon.end)))

    return ContactNetwork(dataset, finished, distance_threshold=threshold)
