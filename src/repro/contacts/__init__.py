"""Contact extraction and contact-network models (including TEN)."""

from __future__ import annotations

from .join import (
    build_contact_network,
    join_at_instant,
    pairs_within_distance,
    sweep_join,
)
from .network import Contact, ContactNetwork
from .ten import TENVertex, TimeExpandedNetwork

__all__ = [
    "Contact",
    "ContactNetwork",
    "TimeExpandedNetwork",
    "TENVertex",
    "build_contact_network",
    "join_at_instant",
    "sweep_join",
    "pairs_within_distance",
]
