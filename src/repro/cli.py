"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli figure13             # run one experiment
    python -m repro.cli all --output out.txt # run everything, save the report
    python -m repro.cli figure14 --quick     # smaller workloads, faster run
    python -m repro.cli stream --quick       # streaming ingest vs batch rebuild
    python -m repro.cli stream --shards 4    # ... on 4 ingestion shards
    python -m repro.cli stream --storage-backend file  # ... on a real block file
    python -m repro.cli stream-sharded       # shard-count scaling curve
    python -m repro.cli stream-async --concurrency 8  # sync vs asyncio serving
    python -m repro.cli stream-disk          # sim vs file vs mmap comparison
    python -m repro.cli stream-space         # GC: live vs device blocks
    python -m repro.cli stream-graph         # incremental vs rebuild graph merges
    python -m repro.cli stream-parallel      # merge-executor scaling curve
    python -m repro.cli stream --merge-executor process --merge-workers 4
    python -m repro.cli table5 --json out.json  # machine-readable results too

Besides the experiments, ``recover`` reopens the durable state a streaming
service left (or a crash stranded) on disk and answers through it::

    python -m repro.cli recover --storage-dir state/            # unsharded
    python -m repro.cli recover --storage-dir state/ --sharded  # sharded/async
    python -m repro.cli recover --storage-dir state/ --probe 0 5  # sample query
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core.config import GRAPH_MODES, MERGE_EXECUTORS, STORAGE_BACKENDS
from .experiments.figures import EXPERIMENTS
from .experiments.report import format_result, format_results_json

__all__ = ["main", "build_parser"]

#: Keyword overrides applied in --quick mode (smaller workloads, tiny datasets).
_QUICK_OVERRIDES = {
    "figure8": {"dataset_name": "rwp-tiny", "num_queries": 8},
    "figure9": {"dataset_names": ("rwp-tiny",), "horizon_fractions": (0.5, 1.0)},
    "figure10": {"dataset_names": ("rwp-tiny",), "horizon_fractions": (0.5, 1.0)},
    "figure11": {"dataset_names": ("rwp-tiny", "vn-tiny"), "horizon_fractions": (1.0,)},
    "reduction": {"dataset_names": ("rwp-tiny", "vn-tiny")},
    "table4": {"dataset_names": ("rwp-tiny", "vn-tiny")},
    "figure12": {"dataset_name": "rwp-tiny", "depths": (1, 4, 16, 64), "num_queries": 8},
    "figure13": {"dataset_names": ("rwp-tiny", "vn-tiny"), "num_queries": 8},
    "spj": {"dataset_names": ("rwp-tiny", "vn-tiny"), "num_queries": 5},
    "figure14": {"dataset_names": ("rwp-tiny", "vn-tiny"), "lengths": (50, 100, 200), "num_queries": 6},
    "figure15": {"dataset_names": ("rwp-tiny", "vn-tiny"), "lengths": (50, 100, 200), "num_queries": 6},
    "table5": {"dataset_names": ("rwp-tiny", "vn-tiny"), "num_queries": 8, "query_length": 100},
    "stream": {"dataset_names": ("rwp-tiny",), "num_queries": 6},
    "stream-sharded": {"dataset_names": ("rwp-tiny",), "num_queries": 6, "shard_counts": (1, 2, 4)},
    "stream-async": {"dataset_names": ("rwp-tiny",), "num_queries": 6, "queries_per_batch": 2},
    "stream-disk": {"dataset_names": ("rwp-tiny",), "num_queries": 6},
    "stream-space": {"dataset_names": ("rwp-tiny",), "num_queries": 6, "max_delta_contacts": 24},
    "stream-graph": {"dataset_names": ("rwp-tiny",), "num_queries": 6, "max_delta_contacts": 24},
    "stream-query": {"dataset_names": ("rwp-tiny",), "num_queries": 8, "max_delta_contacts": 24},
    "stream-parallel": {
        "dataset_names": ("rwp-tiny",),
        "num_queries": 6,
        "worker_counts": (1, 2),
        "shards": 2,
        "max_delta_contacts": 24,
    },
}

#: How --shards N is injected, per experiment that understands sharding.
_SHARD_KWARGS = {
    "stream": lambda shards: {"shards": shards},
    "stream-sharded": lambda shards: {"shard_counts": (shards,)},
    "stream-async": lambda shards: {"shards": shards},
    "stream-parallel": lambda shards: {"shards": shards},
}

#: How --storage-backend NAME is injected, per experiment that runs its
#: streaming services behind a selectable block device.
_STORAGE_BACKEND_KWARGS = {
    "stream": lambda backend: {"storage_backend": backend},
    "stream-sharded": lambda backend: {"storage_backend": backend},
    "stream-async": lambda backend: {"storage_backend": backend},
    "stream-disk": lambda backend: {"backends": (backend,)},
    "stream-space": lambda backend: {"backends": (backend,)},
    "stream-graph": lambda backend: {"storage_backend": backend},
    "stream-parallel": lambda backend: {"storage_backend": backend},
    "stream-query": lambda backend: {"storage_backend": backend},
}

#: How --concurrency N is injected, per experiment that serves queries
#: concurrently with ingestion.
_CONCURRENCY_KWARGS = {
    "stream-async": lambda concurrency: {"concurrency": concurrency},
}

#: How --graph-mode MODE is injected, per experiment whose streaming service
#: maintains a ReachGraph fast path across merges.
_GRAPH_MODE_KWARGS = {
    "stream": lambda mode: {"graph_mode": mode},
    "stream-graph": lambda mode: {"graph_modes": (mode,)},
}

#: How --merge-executor KIND (and --merge-workers N) are injected, per
#: experiment whose streaming service runs merge builds through an executor.
_MERGE_EXECUTOR_KWARGS = {
    "stream": lambda kind: {"merge_executor": kind},
    "stream-parallel": lambda kind: {"executors": (kind,)},
}

_MERGE_WORKERS_KWARGS = {
    "stream": lambda workers: {"merge_workers": workers},
    "stream-parallel": lambda workers: {"worker_counts": (workers,)},
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Efficient Reachability "
            "Query Evaluation in Large Spatiotemporal Contact Datasets' "
            "(VLDB 2012) on scaled-down datasets."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (e.g. figure13, table5), 'all', 'list', or "
            "'recover' (reopen a streaming service's durable state)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use tiny datasets and small workloads (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "also emit machine-readable JSON results; pass a file path, "
            "or '-' to print the JSON to stdout after the text report"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help=(
            "run streaming experiments with N ingestion shards "
            f"(applies to: {', '.join(sorted(_SHARD_KWARGS))})"
        ),
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        metavar="N",
        default=None,
        help=(
            "issue N concurrent queries against the asyncio serving front-end "
            f"(applies to: {', '.join(sorted(_CONCURRENCY_KWARGS))})"
        ),
    )
    parser.add_argument(
        "--graph-mode",
        choices=GRAPH_MODES,
        default=None,
        help=(
            "maintain the streaming ReachGraph incrementally or rebuild it "
            f"per merge (applies to: {', '.join(sorted(_GRAPH_MODE_KWARGS))})"
        ),
    )
    parser.add_argument(
        "--merge-executor",
        choices=MERGE_EXECUTORS,
        default=None,
        help=(
            "run merge builds inline, on a thread pool, or on worker "
            f"processes (applies to: {', '.join(sorted(_MERGE_EXECUTOR_KWARGS))})"
        ),
    )
    parser.add_argument(
        "--merge-workers",
        type=int,
        metavar="N",
        default=None,
        help=(
            "pool size for --merge-executor thread/process "
            f"(applies to: {', '.join(sorted(_MERGE_WORKERS_KWARGS))})"
        ),
    )
    parser.add_argument(
        "--storage-backend",
        choices=STORAGE_BACKENDS,
        default=None,
        help=(
            "run streaming experiments on this block-device backend "
            f"(applies to: {', '.join(sorted(_STORAGE_BACKEND_KWARGS))}); "
            "for 'recover', the backend the state was written with "
            "(default: file)"
        ),
    )
    parser.add_argument(
        "--storage-dir",
        metavar="DIR",
        default=None,
        help="directory holding a streaming service's device files ('recover')",
    )
    parser.add_argument(
        "--name",
        metavar="NAME",
        default=None,
        help=(
            "service name the state was written under ('recover'; default: "
            "'stream' unsharded, 'sharded-stream' with --sharded; services "
            "built via engine.streaming()/for_dataset persist under "
            "'<dataset>-stream', '<dataset>-sharded', or '<dataset>-async')"
        ),
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="reopen a sharded (or async) service's state ('recover')",
    )
    parser.add_argument(
        "--probe",
        nargs=2,
        type=int,
        metavar=("SRC", "DST"),
        default=None,
        help=(
            "after reopening, answer one reachability probe from object SRC "
            "to object DST over the committed prefix ('recover')"
        ),
    )
    return parser


def _run_recover(args, parser: argparse.ArgumentParser) -> int:
    """Reopen durable streaming state and report what was recovered."""
    from .core.engine import ReachabilityEngine
    from .core.types import ReachabilityQuery, TimeInterval

    if args.storage_dir is None:
        parser.error("recover requires --storage-dir")
    service = ReachabilityEngine.reopen_streaming(
        args.storage_backend or "file",
        args.storage_dir,
        name=args.name,
        sharded=args.sharded,
    )
    try:
        print(f"reopened: {service!r}")
        print(f"committed watermark: {service.watermark}")
        if args.sharded:
            print(f"shards: {service.num_shards}")
            print(f"cross-shard contacts: {len(service.cross_shard_contacts)}")
        else:
            path = "reachgraph" if service.overlay.has_reachgraph else "union"
            print(f"query path: {path}")
        if args.probe is not None:
            source, destination = args.probe
            interval = TimeInterval(0, service.watermark)
            result = service.query(
                ReachabilityQuery(
                    source=source, destination=destination, interval=interval
                )
            )
            print(
                f"probe o{source} ~{interval}~> o{destination}: "
                f"reachable={bool(result)}, earliest={result.earliest_time}"
            )
    finally:
        service.close()
    return 0


def _run_one(
    name: str,
    quick: bool,
    shards: Optional[int] = None,
    concurrency: Optional[int] = None,
    storage_backend: Optional[str] = None,
    graph_mode: Optional[str] = None,
    merge_executor: Optional[str] = None,
    merge_workers: Optional[int] = None,
):
    driver = EXPERIMENTS[name]
    kwargs = dict(_QUICK_OVERRIDES.get(name, {})) if quick else {}
    if shards is not None and name in _SHARD_KWARGS:
        kwargs.update(_SHARD_KWARGS[name](shards))
    if concurrency is not None and name in _CONCURRENCY_KWARGS:
        kwargs.update(_CONCURRENCY_KWARGS[name](concurrency))
    if storage_backend is not None and name in _STORAGE_BACKEND_KWARGS:
        kwargs.update(_STORAGE_BACKEND_KWARGS[name](storage_backend))
    if graph_mode is not None and name in _GRAPH_MODE_KWARGS:
        kwargs.update(_GRAPH_MODE_KWARGS[name](graph_mode))
    if merge_executor is not None and name in _MERGE_EXECUTOR_KWARGS:
        kwargs.update(_MERGE_EXECUTOR_KWARGS[name](merge_executor))
    if merge_workers is not None and name in _MERGE_WORKERS_KWARGS:
        kwargs.update(_MERGE_WORKERS_KWARGS[name](merge_workers))
    return driver(**kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "recover":
        return _run_recover(args, parser)

    if args.experiment == "list":
        for name, driver in EXPERIMENTS.items():
            doc = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0

    if args.experiment == "all":
        names: List[str] = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'/'list'"
        )
        return 2  # pragma: no cover - parser.error raises SystemExit

    if args.shards is not None and args.shards <= 0:
        parser.error("--shards must be positive")
    if args.concurrency is not None and args.concurrency <= 0:
        parser.error("--concurrency must be positive")
    if args.merge_workers is not None and args.merge_workers <= 0:
        parser.error("--merge-workers must be positive")
    results = []
    for name in names:
        print(f"running {name} ...", file=sys.stderr)
        results.append(
            _run_one(
                name,
                args.quick,
                shards=args.shards,
                concurrency=args.concurrency,
                storage_backend=args.storage_backend,
                graph_mode=args.graph_mode,
                merge_executor=args.merge_executor,
                merge_workers=args.merge_workers,
            )
        )
    report = "\n\n".join(format_result(result) for result in results)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.json is not None:
        document = format_results_json(results)
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
