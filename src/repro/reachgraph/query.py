"""ReachGraph query processing: BM-BFS, B-BFS, and E-DFS (Section 5.2).

Three traversal strategies over the same disk-resident hyper graph:

* **BM-BFS** (the paper's contribution, Algorithm 2) — bidirectional
  multi-resolution BFS.  A forward BFS from the source's component at ``t1``
  explores the first half of the query interval while a backward BFS (over the
  reverse DN_1 edges) from the destination's component at ``t2`` explores the
  second half; the traversal terminates as soon as an object appears on both
  sides.  The forward traversal takes the highest-resolution long edges that
  fit before the interval midpoint, which lets it cover the half-interval in
  far fewer vertex visits.
* **B-BFS** — the same bidirectional traversal restricted to DN_1 edges.
* **E-DFS** — the naive baseline: an external DFS from the source component
  looking for the destination component, without inspecting component members
  and without bidirectional search.

Every strategy reads vertices through the partition extents written by
:class:`~repro.reachgraph.index.ReachGraphIndex`; a retrieved partition is
kept in a per-query cache (the buffer pool underneath also keeps its blocks),
so vertices of the same partition cost no further IO.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Set, Tuple

from ..core.errors import QueryError, UnknownObjectError
from ..core.types import ObjectId, QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from .index import ReachGraphIndex, VertexRecord

__all__ = ["ReachGraphQueryProcessor", "STRATEGIES"]

#: The traversal strategies understood by :meth:`ReachGraphQueryProcessor.evaluate`.
STRATEGIES = ("bm-bfs", "b-bfs", "e-dfs", "e-bfs")


class _VertexCache:
    """Per-query cache of vertex records, filled one partition at a time."""

    def __init__(self, index: ReachGraphIndex) -> None:
        self._index = index
        self._records: Dict[int, VertexRecord] = {}
        self.partitions_read = 0

    def get(self, node_id: int) -> VertexRecord:
        record = self._records.get(node_id)
        if record is not None:
            return record
        partition_id = self._index.partition_of(node_id)
        for loaded in self._index.read_partition(partition_id):
            self._records[loaded.node_id] = loaded
        self.partitions_read += 1
        return self._records[node_id]


class ReachGraphQueryProcessor:
    """Evaluates reachability queries against a built :class:`ReachGraphIndex`."""

    def __init__(self, index: ReachGraphIndex) -> None:
        if not index.is_built:
            raise QueryError("ReachGraph index must be built before querying")
        self.index = index

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self, query: ReachabilityQuery, strategy: str = "bm-bfs"
    ) -> QueryResult:
        """Evaluate one reachability query with the chosen traversal strategy."""
        if strategy not in STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        dataset = self.index.dataset
        if query.source not in dataset:
            raise UnknownObjectError(query.source)
        if query.destination not in dataset:
            raise UnknownObjectError(query.destination)
        interval = query.interval.intersection(dataset.horizon)
        if interval is None:
            raise QueryError(
                f"query interval {query.interval} does not overlap the horizon "
                f"{dataset.horizon}"
            )

        storage = self.index.storage
        storage.reset_for_query()
        io_before = storage.snapshot()
        cpu_started = time.process_time()
        cache = _VertexCache(self.index)

        if query.source == query.destination:
            reachable, visited = True, 0
        elif strategy in ("bm-bfs", "b-bfs"):
            reachable, visited = self._bidirectional_bfs(
                query, interval, cache, use_long_edges=(strategy == "bm-bfs")
            )
        elif strategy == "e-bfs":
            reachable, visited = self._external_search(
                query, interval, cache, depth_first=False
            )
        else:  # e-dfs
            reachable, visited = self._external_search(
                query, interval, cache, depth_first=True
            )

        delta = storage.charge_since(io_before)
        return QueryResult(
            reachable=reachable,
            earliest_time=None,
            io=delta.normalized(storage.config.sequential_cost),
            random_ios=delta.random_reads,
            sequential_ios=delta.sequential_reads,
            cpu_seconds=time.process_time() - cpu_started,
            visited=visited,
        )

    # ------------------------------------------------------------------
    # BM-BFS / B-BFS (Algorithm 2)
    # ------------------------------------------------------------------
    def _bidirectional_bfs(
        self,
        query: ReachabilityQuery,
        interval: TimeInterval,
        cache: _VertexCache,
        use_long_edges: bool,
    ) -> Tuple[bool, int]:
        t1, t2 = interval.start, interval.end
        mid = interval.midpoint
        v1 = self.index.find_vertex_id(query.source, t1)
        v2 = self.index.find_vertex_id(query.destination, t2)

        record1 = cache.get(v1)
        record2 = cache.get(v2)
        objects_forward: Set[ObjectId] = set(record1.members)
        objects_backward: Set[ObjectId] = set(record2.members)
        visited = 2
        if objects_forward & objects_backward:
            return True, visited

        queue_forward: deque[int] = deque([v1])
        queue_backward: deque[int] = deque([v2])
        seen_forward: Set[int] = {v1}
        seen_backward: Set[int] = {v2}

        while queue_forward or queue_backward:
            if queue_forward:
                found, visited = self._process_forward(
                    queue_forward,
                    seen_forward,
                    objects_forward,
                    objects_backward,
                    cache,
                    mid,
                    use_long_edges,
                    visited,
                )
                if found:
                    return True, visited
            if queue_backward:
                found, visited = self._process_backward(
                    queue_backward,
                    seen_backward,
                    objects_backward,
                    objects_forward,
                    cache,
                    mid,
                    t2,
                    visited,
                )
                if found:
                    return True, visited
        return False, visited

    def _process_forward(
        self,
        queue: deque,
        seen: Set[int],
        own_objects: Set[ObjectId],
        other_objects: Set[ObjectId],
        cache: _VertexCache,
        mid: TimeInstant,
        use_long_edges: bool,
        visited: int,
    ) -> Tuple[bool, int]:
        node_id = queue.popleft()
        record = cache.get(node_id)
        visited += 1
        own_objects.update(record.members)
        if other_objects.intersection(record.members):
            return True, visited

        children: List[int] = []
        if use_long_edges:
            # Highest-resolution long edges whose window fits before the
            # interval midpoint are taken first; they let the traversal leap
            # over long stretches of the first half-interval.
            for resolution in sorted(self.index.config.sorted_resolutions, reverse=True):
                if record.start + resolution > mid:
                    continue
                for target_id in record.long_successors_at(resolution):
                    children.append(target_id)
                if children:
                    break
        for target_id in record.successors:
            children.append(target_id)

        for target_id in children:
            if target_id in seen:
                continue
            target = cache.get(target_id)
            if target.start > mid:
                continue
            seen.add(target_id)
            queue.append(target_id)
        return False, visited

    def _process_backward(
        self,
        queue: deque,
        seen: Set[int],
        own_objects: Set[ObjectId],
        other_objects: Set[ObjectId],
        cache: _VertexCache,
        mid: TimeInstant,
        t2: TimeInstant,
        visited: int,
    ) -> Tuple[bool, int]:
        node_id = queue.popleft()
        record = cache.get(node_id)
        visited += 1
        own_objects.update(record.members)
        if other_objects.intersection(record.members):
            return True, visited

        for source_id in record.predecessors:
            if source_id in seen:
                continue
            source = cache.get(source_id)
            # The backward traversal covers components that can still pass the
            # item onwards during the second half of the query interval.
            if source.end < mid or source.start > t2:
                continue
            seen.add(source_id)
            queue.append(source_id)
        return False, visited

    # ------------------------------------------------------------------
    # E-DFS / E-BFS baselines
    # ------------------------------------------------------------------
    def _external_search(
        self,
        query: ReachabilityQuery,
        interval: TimeInterval,
        cache: _VertexCache,
        depth_first: bool,
    ) -> Tuple[bool, int]:
        t1, t2 = interval.start, interval.end
        v1 = self.index.find_vertex_id(query.source, t1)
        v2 = self.index.find_vertex_id(query.destination, t2)
        if v1 == v2:
            return True, 1

        frontier: deque[int] = deque([v1])
        seen: Set[int] = {v1}
        visited = 0
        while frontier:
            node_id = frontier.pop() if depth_first else frontier.popleft()
            record = cache.get(node_id)
            visited += 1
            if node_id == v2:
                return True, visited
            for target_id in record.successors:
                if target_id in seen:
                    continue
                target = cache.get(target_id)
                if target.start > t2:
                    continue
                seen.add(target_id)
                frontier.append(target_id)
        return False, visited
