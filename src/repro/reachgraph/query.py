"""ReachGraph query processing: BM-BFS, B-BFS, and E-DFS (Section 5.2).

Three traversal strategies over the same disk-resident hyper graph:

* **BM-BFS** (the paper's contribution, Algorithm 2) — bidirectional
  multi-resolution BFS.  A forward BFS from the source's component at ``t1``
  explores the first half of the query interval while a backward BFS (over the
  reverse DN_1 edges) from the destination's component at ``t2`` explores the
  second half; the traversal terminates as soon as an object appears on both
  sides.  The forward traversal takes the highest-resolution long edges that
  fit before the interval midpoint, which lets it cover the half-interval in
  far fewer vertex visits.
* **B-BFS** — the same bidirectional traversal restricted to DN_1 edges.
* **E-DFS** — the naive baseline: an external DFS from the source component
  looking for the destination component, without inspecting component members
  and without bidirectional search.

Every strategy reads vertices through the partition extents written by
:class:`~repro.reachgraph.index.ReachGraphIndex`; a retrieved partition is
kept in a per-query cache (the buffer pool underneath also keeps its blocks),
so vertices of the same partition cost no further IO.  Two read-side
accelerations sit in front of the traversal:

* when the index carries a :class:`~repro.reachgraph.labels.ReachLabelIndex`,
  the bidirectional strategies consult it first — a label rejection proves
  the query unreachable in O(1) with no partition IO, and during traversal
  the forward frontier drops children that provably cannot reach the
  destination component while the backward frontier drops predecessors the
  source component provably cannot reach (both exact: labels only ever
  reject provable negatives, so answers are bit-identical to pure
  traversal);
* an optional cross-query :class:`PartitionCache` — a generation-stamped
  shared LRU owned by the serving layer — short-circuits partition reads
  that any earlier query on the same graph generation already paid for.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import QueryError, UnknownObjectError
from ..core.types import ObjectId, QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from .index import ReachGraphIndex, VertexRecord
from .labels import ReachLabelIndex

__all__ = ["PartitionCache", "ReachGraphQueryProcessor", "STRATEGIES"]

#: The traversal strategies understood by :meth:`ReachGraphQueryProcessor.evaluate`.
STRATEGIES = ("bm-bfs", "b-bfs", "e-dfs", "e-bfs")


class PartitionCache:
    """A cross-query LRU of partition records, shared by every query path.

    Owned by the serving layer (one per delta overlay) and handed to every
    :class:`ReachGraphQueryProcessor` it creates, so sync, async, and
    parallel-worker queries against the same graph all share one cache.  The
    cache is generation-stamped: :meth:`invalidate` empties it and bumps the
    generation whenever the underlying graph mutates (merge adoption,
    frontier repack, rebuild swap) — the same bump discipline the
    parallel query fleet uses for its reopened snapshots.  Thread-safe; a
    capacity of ``0`` disables caching (every lookup misses).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[VertexRecord, ...]]" = OrderedDict()
        self._lock = threading.Lock()
        self._generation = 1
        self.hits = 0
        self.misses = 0

    @property
    def generation(self) -> int:
        """The current cache generation (bumped by :meth:`invalidate`)."""
        return self._generation

    def lookup(self, partition_id: int) -> Optional[Tuple[VertexRecord, ...]]:
        """The cached records of a partition, or ``None`` on a miss."""
        with self._lock:
            records = self._entries.get(partition_id)
            if records is None:
                self.misses += 1
                return None
            self._entries.move_to_end(partition_id)
            self.hits += 1
            return records

    def insert(self, partition_id: int, records: Tuple[VertexRecord, ...]) -> None:
        """Remember a partition's records, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[partition_id] = records
            self._entries.move_to_end(partition_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every entry and bump the generation (graph mutated)."""
        with self._lock:
            self._entries.clear()
            self._generation += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _VertexCache:
    """Per-query cache of vertex records, filled one partition at a time.

    Consults the shared :class:`PartitionCache` (when one is attached)
    before paying a partition read; partitions loaded from disk are
    published back so later queries skip the IO.
    """

    def __init__(
        self, index: ReachGraphIndex, shared: Optional[PartitionCache] = None
    ) -> None:
        self._index = index
        self._shared = shared
        self._records: Dict[int, VertexRecord] = {}
        self.partitions_read = 0

    def get(self, node_id: int) -> VertexRecord:
        record = self._records.get(node_id)
        if record is not None:
            return record
        partition_id = self._index.partition_of(node_id)
        shared = self._shared
        if shared is not None:
            cached = shared.lookup(partition_id)
            if cached is not None:
                for loaded in cached:
                    self._records[loaded.node_id] = loaded
                return self._records[node_id]
        records = tuple(self._index.read_partition(partition_id))
        for loaded in records:
            self._records[loaded.node_id] = loaded
        self.partitions_read += 1
        if shared is not None:
            shared.insert(partition_id, records)
        return self._records[node_id]


class ReachGraphQueryProcessor:
    """Evaluates reachability queries against a built :class:`ReachGraphIndex`."""

    def __init__(
        self,
        index: ReachGraphIndex,
        partition_cache: Optional[PartitionCache] = None,
        use_labels: bool = True,
    ) -> None:
        if not index.is_built:
            raise QueryError("ReachGraph index must be built before querying")
        self.index = index
        #: Shared cross-query cache (attached by the serving layer), or None.
        self.partition_cache = partition_cache
        #: Consult interval labels when the index carries them.  Exposed as a
        #: toggle so experiments can measure traversal-only cost on the same
        #: index without rebuilding it label-free.
        self.use_labels = use_labels
        #: Queries answered unreachable by the O(1) label check alone.
        self.label_rejections = 0
        #: Frontier expansions skipped because labels proved them useless.
        self.label_frontier_prunes = 0

    def _labels(self) -> Optional[ReachLabelIndex]:
        return self.index.labels if self.use_labels else None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self, query: ReachabilityQuery, strategy: str = "bm-bfs"
    ) -> QueryResult:
        """Evaluate one reachability query with the chosen traversal strategy."""
        if strategy not in STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        dataset = self.index.dataset
        if query.source not in dataset:
            raise UnknownObjectError(query.source)
        if query.destination not in dataset:
            raise UnknownObjectError(query.destination)
        interval = query.interval.intersection(dataset.horizon)
        if interval is None:
            raise QueryError(
                f"query interval {query.interval} does not overlap the horizon "
                f"{dataset.horizon}"
            )

        storage = self.index.storage
        storage.reset_for_query()
        io_before = storage.snapshot()
        cpu_started = time.process_time()
        cache = _VertexCache(self.index, shared=self.partition_cache)

        if query.source == query.destination:
            reachable, visited = True, 0
        elif strategy in ("bm-bfs", "b-bfs"):
            reachable, visited = self._bidirectional_bfs(
                query, interval, cache, use_long_edges=(strategy == "bm-bfs")
            )
        elif strategy == "e-bfs":
            reachable, visited = self._external_search(
                query, interval, cache, depth_first=False
            )
        else:  # e-dfs
            reachable, visited = self._external_search(
                query, interval, cache, depth_first=True
            )

        delta = storage.charge_since(io_before)
        return QueryResult(
            reachable=reachable,
            earliest_time=None,
            io=delta.normalized(storage.config.sequential_cost),
            random_ios=delta.random_reads,
            sequential_ios=delta.sequential_reads,
            cpu_seconds=time.process_time() - cpu_started,
            visited=visited,
        )

    # ------------------------------------------------------------------
    # BM-BFS / B-BFS (Algorithm 2)
    # ------------------------------------------------------------------
    def _bidirectional_bfs(
        self,
        query: ReachabilityQuery,
        interval: TimeInterval,
        cache: _VertexCache,
        use_long_edges: bool,
    ) -> Tuple[bool, int]:
        t1, t2 = interval.start, interval.end
        mid = interval.midpoint
        v1 = self.index.find_vertex_id(query.source, t1)
        v2 = self.index.find_vertex_id(query.destination, t2)

        labels = self._labels()
        if labels is not None and labels.rejects(v1, v2):
            # The query is reachable iff the DAG reaches v2 from v1 (a
            # temporal handoff path visits a chain of components connected
            # by DN_1 edges); a label rejection proves there is no such
            # path, so the negative needs no partition IO at all.
            self.label_rejections += 1
            return False, 0

        record1 = cache.get(v1)
        record2 = cache.get(v2)
        objects_forward: Set[ObjectId] = set(record1.members)
        objects_backward: Set[ObjectId] = set(record2.members)
        visited = 2
        if objects_forward & objects_backward:
            return True, visited

        queue_forward: deque[int] = deque([v1])
        queue_backward: deque[int] = deque([v2])
        seen_forward: Set[int] = {v1}
        seen_backward: Set[int] = {v2}

        while queue_forward or queue_backward:
            if queue_forward:
                found, visited = self._process_forward(
                    queue_forward,
                    seen_forward,
                    objects_forward,
                    objects_backward,
                    cache,
                    mid,
                    use_long_edges,
                    visited,
                    labels,
                    v2,
                )
                if found:
                    return True, visited
            if queue_backward:
                found, visited = self._process_backward(
                    queue_backward,
                    seen_backward,
                    objects_backward,
                    objects_forward,
                    cache,
                    mid,
                    t2,
                    visited,
                    labels,
                    v1,
                )
                if found:
                    return True, visited
        return False, visited

    def _process_forward(
        self,
        queue: "deque[int]",
        seen: Set[int],
        own_objects: Set[ObjectId],
        other_objects: Set[ObjectId],
        cache: _VertexCache,
        mid: TimeInstant,
        use_long_edges: bool,
        visited: int,
        labels: Optional[ReachLabelIndex],
        target_vertex: int,
    ) -> Tuple[bool, int]:
        node_id = queue.popleft()
        record = cache.get(node_id)
        visited += 1
        own_objects.update(record.members)
        if other_objects.intersection(record.members):
            return True, visited

        children: List[int] = []
        if use_long_edges:
            # Highest-resolution long edges whose window fits before the
            # interval midpoint are taken first; they let the traversal leap
            # over long stretches of the first half-interval.
            for resolution in sorted(self.index.config.sorted_resolutions, reverse=True):
                if record.start + resolution > mid:
                    continue
                for target_id in record.long_successors_at(resolution):
                    children.append(target_id)
                if children:
                    break
        for target_id in record.successors:
            children.append(target_id)

        for target_id in children:
            if target_id in seen:
                continue
            # Every vertex of a v1→v2 path reaches v2, so a child the labels
            # prove cannot reach the destination component contributes
            # nothing: skip it before paying its partition read.
            if labels is not None and labels.rejects(target_id, target_vertex):
                self.label_frontier_prunes += 1
                continue
            target = cache.get(target_id)
            if target.start > mid:
                continue
            seen.add(target_id)
            queue.append(target_id)
        return False, visited

    def _process_backward(
        self,
        queue: "deque[int]",
        seen: Set[int],
        own_objects: Set[ObjectId],
        other_objects: Set[ObjectId],
        cache: _VertexCache,
        mid: TimeInstant,
        t2: TimeInstant,
        visited: int,
        labels: Optional[ReachLabelIndex],
        source_vertex: int,
    ) -> Tuple[bool, int]:
        node_id = queue.popleft()
        record = cache.get(node_id)
        visited += 1
        own_objects.update(record.members)
        if other_objects.intersection(record.members):
            return True, visited

        for source_id in record.predecessors:
            if source_id in seen:
                continue
            # Mirror of the forward prune: every vertex of a v1→v2 path is
            # reachable from v1, so a predecessor the labels prove v1 cannot
            # reach is useless to the backward half.
            if labels is not None and labels.rejects(source_vertex, source_id):
                self.label_frontier_prunes += 1
                continue
            source = cache.get(source_id)
            # The backward traversal covers components that can still pass the
            # item onwards during the second half of the query interval.
            if source.end < mid or source.start > t2:
                continue
            seen.add(source_id)
            queue.append(source_id)
        return False, visited

    # ------------------------------------------------------------------
    # E-DFS / E-BFS baselines
    # ------------------------------------------------------------------
    def _external_search(
        self,
        query: ReachabilityQuery,
        interval: TimeInterval,
        cache: _VertexCache,
        depth_first: bool,
    ) -> Tuple[bool, int]:
        t1, t2 = interval.start, interval.end
        v1 = self.index.find_vertex_id(query.source, t1)
        v2 = self.index.find_vertex_id(query.destination, t2)
        if v1 == v2:
            return True, 1

        frontier: deque[int] = deque([v1])
        seen: Set[int] = {v1}
        visited = 0
        while frontier:
            node_id = frontier.pop() if depth_first else frontier.popleft()
            record = cache.get(node_id)
            visited += 1
            if node_id == v2:
                return True, visited
            for target_id in record.successors:
                if target_id in seen:
                    continue
                target = cache.get(target_id)
                if target.start > t2:
                    continue
                seen.add(target_id)
                frontier.append(target_id)
        return False, visited
