"""The reduction phase: contact network (TEN) → reduced DAG ``DN``.

Section 5.1.2.1 performs two lossless reduction steps:

1. **Snapshot reduction** — within every snapshot ``G_t``, all vertices of a
   connected component are collapsed to a single hyper vertex (every member is
   reachable from every other member at ``t``, Properties 5.1/5.2).  An edge
   joins a component of ``G_t`` to a component of ``G_{t+1}`` when the TEN has
   at least one edge between their members — i.e. exactly when the two
   components share an object (TEN cross-snapshot edges are the per-object
   holding edges).
2. **Temporal merge** — consecutive snapshots of an *identical* component are
   merged into one vertex that persists over an interval; the edge that enters
   the persisted vertex is the aggregated edge and its weight is the interval
   length.

Both steps are folded into a single forward pass over the snapshots: a
component that is exactly equal to a currently-open vertex extends it,
anything else closes/creates vertices and adds the connecting edges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.types import ObjectId, TimeInterval
from ..contacts.network import ContactNetwork
from .dag import ContactDag

__all__ = ["ReductionReport", "reduce_contact_network"]


@dataclass(frozen=True, slots=True)
class ReductionReport:
    """Size statistics of the reduction (Section 6.2.1.1 reports these)."""

    ten_vertices: int
    ten_edges: int
    dag_vertices: int
    dag_edges: int
    build_seconds: float

    @property
    def vertex_reduction(self) -> float:
        """Fraction of TEN vertices removed by the reduction."""
        if self.ten_vertices == 0:
            return 0.0
        return 1.0 - self.dag_vertices / self.ten_vertices

    @property
    def edge_reduction(self) -> float:
        """Fraction of TEN edges removed by the reduction."""
        if self.ten_edges == 0:
            return 0.0
        return 1.0 - self.dag_edges / self.ten_edges


def reduce_contact_network(
    network: ContactNetwork,
    window: Optional[TimeInterval] = None,
) -> Tuple[ContactDag, ReductionReport]:
    """Build the reduced DAG ``DN`` of a contact network.

    Parameters
    ----------
    network:
        The contact network to reduce.
    window:
        Restrict the reduction to a sub-interval of the horizon (used by the
        Figure 10/11 experiments that grow ``|T|``); defaults to the full
        horizon.

    Returns
    -------
    (dag, report):
        The reduced DAG and the size statistics comparing it against the TEN
        representation of the same window.
    """
    started = time.perf_counter()
    horizon = window.intersection(network.horizon) if window else network.horizon
    if horizon is None:
        raise ValueError("reduction window does not overlap the network horizon")

    dag = ContactDag(horizon, network.dataset.num_objects)

    # For each object, the id of the vertex it belonged to at the previous
    # tick; used both for the temporal merge test and for edge creation.
    previous_assignment: Dict[ObjectId, int] = {}

    for t in horizon.instants():
        components = _snapshot_components(network, t)
        current_assignment: Dict[ObjectId, int] = {}
        for members in components:
            node_id = _match_open_vertex(dag, previous_assignment, members, t)
            if node_id is not None:
                # The same component persisted from t-1: extend its interval.
                dag.extend_node(node_id, t)
            else:
                node = dag.add_node(TimeInterval(t, t), members)
                node_id = node.node_id
                # Edges from the previous vertices of every member (the TEN
                # holding edges collapse to component-to-component edges).
                sources: Set[int] = set()
                for member in members:
                    prev = previous_assignment.get(member)
                    if prev is not None and prev != node_id:
                        sources.add(prev)
                for source in sources:
                    dag.add_edge(source, node_id)
            for member in members:
                current_assignment[member] = node_id
        previous_assignment = current_assignment

    ten_vertices = network.dataset.num_objects * horizon.length
    ten_edges = network.dataset.num_objects * (horizon.length - 1) + sum(
        1
        for contact in network.contacts
        for _ in range(
            max(
                0,
                min(contact.validity.end, horizon.end)
                - max(contact.validity.start, horizon.start)
                + 1,
            )
        )
        if contact.validity.overlaps(horizon)
    )
    report = ReductionReport(
        ten_vertices=ten_vertices,
        ten_edges=ten_edges,
        dag_vertices=dag.num_nodes,
        dag_edges=dag.num_edges,
        build_seconds=time.perf_counter() - started,
    )
    return dag, report


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _snapshot_components(network: ContactNetwork, t: int) -> List[FrozenSet[ObjectId]]:
    """Connected components of snapshot ``G_t`` (singletons included)."""
    adjacency = network.snapshot_adjacency(t)
    components: List[FrozenSet[ObjectId]] = []
    seen: Set[ObjectId] = set()
    for object_id in network.object_ids:
        if object_id in seen:
            continue
        if object_id not in adjacency:
            seen.add(object_id)
            components.append(frozenset((object_id,)))
            continue
        members: Set[ObjectId] = {object_id}
        frontier = [object_id]
        seen.add(object_id)
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency.get(current, ()):
                if neighbour not in members:
                    members.add(neighbour)
                    seen.add(neighbour)
                    frontier.append(neighbour)
        components.append(frozenset(members))
    return components


def _match_open_vertex(
    dag: ContactDag,
    previous_assignment: Dict[ObjectId, int],
    members: FrozenSet[ObjectId],
    t: int,
) -> Optional[int]:
    """Return the id of an open vertex identical to ``members`` at ``t-1``.

    A vertex can be extended only when *all* its members were assigned to it
    at the previous tick, it has exactly the same member set, and it is still
    open (its interval ends at ``t-1``).
    """
    candidate = previous_assignment.get(next(iter(members)))
    if candidate is None:
        return None
    node = dag.node(candidate)
    if node.members != members:
        return None
    if node.interval.end != t - 1:
        return None
    return candidate
