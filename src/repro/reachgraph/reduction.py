"""The reduction phase: contact network (TEN) → reduced DAG ``DN``.

Section 5.1.2.1 performs two lossless reduction steps:

1. **Snapshot reduction** — within every snapshot ``G_t``, all vertices of a
   connected component are collapsed to a single hyper vertex (every member is
   reachable from every other member at ``t``, Properties 5.1/5.2).  An edge
   joins a component of ``G_t`` to a component of ``G_{t+1}`` when the TEN has
   at least one edge between their members — i.e. exactly when the two
   components share an object (TEN cross-snapshot edges are the per-object
   holding edges).
2. **Temporal merge** — consecutive snapshots of an *identical* component are
   merged into one vertex that persists over an interval; the edge that enters
   the persisted vertex is the aggregated edge and its weight is the interval
   length.

Both steps are one forward pass over the snapshots, and that pass is
factored as a *resumable* :class:`ReductionCursor`: each
:meth:`~ReductionCursor.advance` consumes one snapshot's adjacency and emits
incremental operations (extend an open vertex, create a vertex, connect it)
into a :class:`DagSink`.  Batch reduction (:func:`reduce_contact_network`)
simply replays the whole horizon through a cursor writing straight into a
:class:`~repro.reachgraph.dag.ContactDag`; the streaming merge path resumes a
cursor from a captured :class:`ReductionFrontier` and records the same
operations into a patch instead — one code path, two write targets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Protocol, Sequence, Set, Tuple

from ..core.errors import IndexConstructionError
from ..core.types import ObjectId, TimeInstant, TimeInterval
from ..contacts.network import ContactNetwork
from .dag import ContactDag

__all__ = [
    "DagSink",
    "ReductionCursor",
    "ReductionFrontier",
    "ReductionReport",
    "reduce_contact_network",
    "snapshot_components",
]


@dataclass(frozen=True, slots=True)
class ReductionReport:
    """Size statistics of the reduction (Section 6.2.1.1 reports these)."""

    ten_vertices: int
    ten_edges: int
    dag_vertices: int
    dag_edges: int
    build_seconds: float

    @property
    def vertex_reduction(self) -> float:
        """Fraction of TEN vertices removed by the reduction."""
        if self.ten_vertices == 0:
            return 0.0
        return 1.0 - self.dag_vertices / self.ten_vertices

    @property
    def edge_reduction(self) -> float:
        """Fraction of TEN edges removed by the reduction."""
        if self.ten_edges == 0:
            return 0.0
        return 1.0 - self.dag_edges / self.ten_edges


class DagSink(Protocol):
    """Where a :class:`ReductionCursor` writes its incremental operations.

    :class:`~repro.reachgraph.dag.ContactDag` satisfies this structurally (the
    batch build); the streaming merge path records the operations into a
    :class:`~repro.reachgraph.dag.DagPatch` builder instead.  Node ids are
    implicit: the cursor numbers vertices in creation order, and every sink
    must assign the same sequence (``ContactDag`` does — it numbers by
    ``len(nodes)``).
    """

    def add_node(self, interval: TimeInterval, members: FrozenSet[ObjectId]) -> object:
        """Create the next vertex (id = number of vertices created so far)."""
        ...

    def extend_node(self, node_id: int, new_end: TimeInstant) -> None:
        """Extend the persistence interval of an open vertex."""
        ...

    def add_edge(self, source_id: int, target_id: int) -> None:
        """Add a DN_1 edge (deduplicated by the sink)."""
        ...


@dataclass(frozen=True, slots=True)
class ReductionFrontier:
    """The resumable state of a reduction, frozen at tick ``end``.

    Everything :meth:`ReductionCursor.resume` needs to continue the one-pass
    reduction past ``end`` without re-reading the DAG it came from: the
    per-object vertex assignments at ``end`` and the member sets of the still
    open vertices (the only vertices the temporal-merge test can extend).
    Captured by :meth:`ReachGraphIndex.frontier
    <repro.reachgraph.index.ReachGraphIndex.frontier>` on the live thread and
    handed to the pure patch computation, which may then run off-thread.
    """

    start: TimeInstant
    end: TimeInstant
    num_nodes: int
    object_ids: Tuple[ObjectId, ...]
    assignments: Tuple[Tuple[ObjectId, int], ...]
    open_members: Tuple[Tuple[int, Tuple[ObjectId, ...]], ...]


class ReductionCursor:
    """The paper's one-pass reduction, reformulated as resumable per-tick ops.

    ``advance(t, adjacency)`` consumes the snapshot graph ``G_t`` and emits
    the reduction's incremental operations into the sink: a component equal to
    a currently open vertex extends it; anything else creates a vertex and
    connects it to the previous vertices of its members.  The cursor owns all
    cross-tick state (assignments, open member sets), so it never reads the
    sink back — which is what lets the same code path drive both the batch
    build (sink = the DAG) and the pure streaming patch (sink = a recorder).
    """

    def __init__(
        self,
        object_ids: Sequence[ObjectId],
        sink: DagSink,
        next_node_id: int = 0,
        next_tick: Optional[TimeInstant] = None,
        assignments: Optional[Mapping[ObjectId, int]] = None,
        open_members: Optional[Mapping[int, FrozenSet[ObjectId]]] = None,
    ) -> None:
        self._object_ids: Tuple[ObjectId, ...] = tuple(object_ids)
        self._sink = sink
        self._next_node_id = next_node_id
        self._next_tick = next_tick
        self._assignments: Dict[ObjectId, int] = dict(assignments or {})
        self._open_members: Dict[int, FrozenSet[ObjectId]] = dict(open_members or {})

    @classmethod
    def resume(cls, frontier: ReductionFrontier, sink: DagSink) -> "ReductionCursor":
        """A cursor continuing a frozen reduction at ``frontier.end + 1``."""
        return cls(
            frontier.object_ids,
            sink,
            next_node_id=frontier.num_nodes,
            next_tick=frontier.end + 1,
            assignments=dict(frontier.assignments),
            open_members={
                node_id: frozenset(members)
                for node_id, members in frontier.open_members
            },
        )

    @property
    def next_node_id(self) -> int:
        """Id the next created vertex will receive."""
        return self._next_node_id

    def advance(self, t: TimeInstant, adjacency: Mapping[ObjectId, Set[ObjectId]]) -> None:
        """Consume snapshot ``G_t`` (its contact adjacency), emit the ops."""
        if self._next_tick is not None and t != self._next_tick:
            raise IndexConstructionError(
                f"reduction cursor expected tick {self._next_tick}, got {t}"
            )
        current: Dict[ObjectId, int] = {}
        current_open: Dict[int, FrozenSet[ObjectId]] = {}
        for members in snapshot_components(self._object_ids, adjacency):
            node_id = self._match_open_vertex(members)
            if node_id is not None:
                # The same component persisted from t-1: extend its interval.
                self._sink.extend_node(node_id, t)
            else:
                node_id = self._next_node_id
                self._next_node_id += 1
                self._sink.add_node(TimeInterval(t, t), members)
                # Edges from the previous vertices of every member (the TEN
                # holding edges collapse to component-to-component edges).
                sources: Set[int] = set()
                for member in members:
                    prev = self._assignments.get(member)
                    if prev is not None and prev != node_id:
                        sources.add(prev)
                for source in sources:
                    self._sink.add_edge(source, node_id)
            current_open[node_id] = members
            for member in members:
                current[member] = node_id
        self._assignments = current
        self._open_members = current_open
        self._next_tick = t + 1

    def _match_open_vertex(self, members: FrozenSet[ObjectId]) -> Optional[int]:
        """The id of an open vertex identical to ``members``, or ``None``.

        A vertex can be extended only when it is still open (it survived the
        previous tick) and has exactly the same member set; any member serves
        as the probe because an identical match implies every member carried
        the same assignment.
        """
        candidate = self._assignments.get(next(iter(members)))
        if candidate is None:
            return None
        if self._open_members.get(candidate) != members:
            return None
        return candidate


def reduce_contact_network(
    network: ContactNetwork,
    window: Optional[TimeInterval] = None,
) -> Tuple[ContactDag, ReductionReport]:
    """Build the reduced DAG ``DN`` of a contact network.

    Replays every snapshot of the (windowed) horizon through a
    :class:`ReductionCursor` writing directly into a fresh
    :class:`~repro.reachgraph.dag.ContactDag` — the same per-tick operations
    the streaming merge path applies incrementally.

    Parameters
    ----------
    network:
        The contact network to reduce.
    window:
        Restrict the reduction to a sub-interval of the horizon (used by the
        Figure 10/11 experiments that grow ``|T|``); defaults to the full
        horizon.

    Returns
    -------
    (dag, report):
        The reduced DAG and the size statistics comparing it against the TEN
        representation of the same window.
    """
    started = time.perf_counter()
    horizon = window.intersection(network.horizon) if window else network.horizon
    if horizon is None:
        raise ValueError("reduction window does not overlap the network horizon")

    dag = ContactDag(horizon, network.dataset.num_objects)
    cursor = ReductionCursor(network.object_ids, dag)
    for t in horizon.instants():
        cursor.advance(t, network.snapshot_adjacency(t))

    ten_vertices = network.dataset.num_objects * horizon.length
    ten_edges = network.dataset.num_objects * (horizon.length - 1) + sum(
        1
        for contact in network.contacts
        for _ in range(
            max(
                0,
                min(contact.validity.end, horizon.end)
                - max(contact.validity.start, horizon.start)
                + 1,
            )
        )
        if contact.validity.overlaps(horizon)
    )
    report = ReductionReport(
        ten_vertices=ten_vertices,
        ten_edges=ten_edges,
        dag_vertices=dag.num_nodes,
        dag_edges=dag.num_edges,
        build_seconds=time.perf_counter() - started,
    )
    return dag, report


def snapshot_components(
    object_ids: Sequence[ObjectId],
    adjacency: Mapping[ObjectId, Set[ObjectId]],
) -> List[FrozenSet[ObjectId]]:
    """Connected components of one snapshot graph (singletons included).

    Components are enumerated in first-member order over ``object_ids``, which
    is what makes vertex numbering deterministic across the batch build and
    the incremental replay of the same snapshots.
    """
    components: List[FrozenSet[ObjectId]] = []
    seen: Set[ObjectId] = set()
    for object_id in object_ids:
        if object_id in seen:
            continue
        if object_id not in adjacency:
            seen.add(object_id)
            components.append(frozenset((object_id,)))
            continue
        members: Set[ObjectId] = {object_id}
        frontier = [object_id]
        seen.add(object_id)
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency.get(current, set()):
                if neighbour not in members:
                    members.add(neighbour)
                    seen.add(neighbour)
                    frontier.append(neighbour)
        components.append(frozenset(members))
    return components
