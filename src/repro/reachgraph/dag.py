"""The reduced contact-network DAG (``DN``) and the ReachGraph hyper graph (``HN``).

After the reduction phase (Section 5.1.2.1) the contact network is a DAG whose
vertices are connected components of TEN snapshots.  Two consecutive identical
components are merged into one vertex that *persists* over a time interval
(the paper's second reduction step); the edge that skips the merged copies is
the aggregated edge and its weight is the length of the persisted interval.

After the augmentation phase (Section 5.1.2.2) the DAG additionally carries
*long edges* at a set of resolutions; the union of the base DAG (``DN_1``) and
the long-edge layers is the ReachGraph hyper graph ``HN``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import IndexConstructionError
from ..core.types import ObjectId, TimeInstant, TimeInterval

__all__ = ["ComponentNode", "ContactDag", "LongEdgeLayer", "HyperGraph"]


@dataclass(slots=True)
class ComponentNode:
    """A DN vertex: a connected component persisting over a time interval.

    Every object in ``members`` is reachable from every other member at each
    instant of ``interval`` (snapshot symmetry + the component persisting
    unchanged).
    """

    node_id: int
    interval: TimeInterval
    members: FrozenSet[ObjectId]

    def active_at(self, t: TimeInstant) -> bool:
        """True when the component exists at time instance ``t``."""
        return self.interval.contains(t)

    def __hash__(self) -> int:
        return self.node_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        members = ",".join(f"o{m}" for m in sorted(self.members))
        return f"c{self.node_id}({{{members}}}, {self.interval})"


class ContactDag:
    """``DN_1``: component vertices plus the first-resolution edges.

    Vertices are stored in creation order, which is a topological order (an
    edge always points from a vertex that ends at ``t - 1`` to a vertex that
    starts at ``t``).
    """

    def __init__(self, horizon: TimeInterval, num_objects: int) -> None:
        self.horizon = horizon
        self.num_objects = num_objects
        self.nodes: List[ComponentNode] = []
        self.forward: Dict[int, List[int]] = {}
        self.backward: Dict[int, List[int]] = {}
        # (object, start_time) -> node_id assignment segments, per object.
        self._assignments: Dict[ObjectId, List[Tuple[TimeInstant, int]]] = {}

    # ------------------------------------------------------------------
    # construction helpers (used by the reduction phase)
    # ------------------------------------------------------------------
    def add_node(self, interval: TimeInterval, members: FrozenSet[ObjectId]) -> ComponentNode:
        """Append a new component vertex (keeps topological creation order)."""
        node = ComponentNode(len(self.nodes), interval, members)
        self.nodes.append(node)
        self.forward[node.node_id] = []
        self.backward[node.node_id] = []
        for member in members:
            self._assignments.setdefault(member, []).append(
                (interval.start, node.node_id)
            )
        return node

    def extend_node(self, node_id: int, new_end: TimeInstant) -> None:
        """Extend the persistence interval of a vertex (temporal merge step)."""
        node = self.nodes[node_id]
        if new_end < node.interval.end:
            raise IndexConstructionError("cannot shrink a component interval")
        node.interval = TimeInterval(node.interval.start, new_end)

    def add_edge(self, source_id: int, target_id: int) -> None:
        """Add a DN_1 edge (deduplicated)."""
        if target_id not in self.forward[source_id]:
            self.forward[source_id].append(target_id)
            self.backward[target_id].append(source_id)

    # ------------------------------------------------------------------
    # queries over the structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of component vertices."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of DN_1 edges (aggregated edges count once)."""
        return sum(len(targets) for targets in self.forward.values())

    def node(self, node_id: int) -> ComponentNode:
        """The vertex with identifier ``node_id``."""
        return self.nodes[node_id]

    def successors(self, node_id: int) -> List[int]:
        """DN_1 successors of a vertex."""
        return self.forward[node_id]

    def predecessors(self, node_id: int) -> List[int]:
        """DN_1 predecessors of a vertex."""
        return self.backward[node_id]

    def node_of(self, object_id: ObjectId, t: TimeInstant) -> int:
        """Identifier of the component containing ``object_id`` at time ``t``.

        This is an in-memory lookup used during construction and by the
        memory-resident baselines; disk-resident query processing goes through
        the external hash tables instead.
        """
        segments = self._assignments.get(object_id)
        if not segments:
            raise IndexConstructionError(f"object {object_id} has no assignments")
        # Binary search over the per-object (start_time, node) segments.
        lo, hi = 0, len(segments) - 1
        answer: Optional[int] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if segments[mid][0] <= t:
                answer = segments[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        if answer is None or not self.nodes[answer].active_at(t):
            raise IndexConstructionError(
                f"object {object_id} has no component at time {t}"
            )
        return answer

    def assignment_segments(self, object_id: ObjectId) -> List[Tuple[TimeInstant, int]]:
        """The (start_time, node_id) assignment history of an object."""
        return list(self._assignments.get(object_id, ()))

    def nodes_active_at(self, t: TimeInstant) -> List[ComponentNode]:
        """All vertices whose persistence interval contains ``t``."""
        return [node for node in self.nodes if node.active_at(t)]

    def topological_order(self) -> List[int]:
        """Vertex ids in topological order (creation order by construction)."""
        return list(range(len(self.nodes)))

    def __iter__(self) -> Iterator[ComponentNode]:
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContactDag(nodes={self.num_nodes}, edges={self.num_edges})"


@dataclass(slots=True)
class LongEdgeLayer:
    """All long edges of one resolution ``L`` (the graph ``DN_L``)."""

    resolution: int
    forward: Dict[int, List[int]] = field(default_factory=dict)

    def add_edge(self, source_id: int, target_id: int) -> None:
        """Add a long edge (deduplicated)."""
        targets = self.forward.setdefault(source_id, [])
        if target_id not in targets:
            targets.append(target_id)

    def successors(self, node_id: int) -> List[int]:
        """Long-edge successors of ``node_id`` at this resolution."""
        return self.forward.get(node_id, [])

    @property
    def num_edges(self) -> int:
        """Number of long edges in the layer."""
        return sum(len(targets) for targets in self.forward.values())

    def average_degree(self) -> float:
        """Average out-degree over vertices that have at least one long edge.

        This is the quantity reported in Table 4 of the paper.
        """
        if not self.forward:
            return 0.0
        return self.num_edges / len(self.forward)


class HyperGraph:
    """``HN``: the base DAG plus long-edge layers at several resolutions."""

    def __init__(self, dag: ContactDag, layers: Iterable[LongEdgeLayer] = ()) -> None:
        self.dag = dag
        self.layers: Dict[int, LongEdgeLayer] = {}
        for layer in layers:
            self.add_layer(layer)

    def add_layer(self, layer: LongEdgeLayer) -> None:
        """Register a long-edge layer (one per resolution)."""
        if layer.resolution in self.layers:
            raise IndexConstructionError(
                f"duplicate long-edge layer for resolution {layer.resolution}"
            )
        self.layers[layer.resolution] = layer

    @property
    def resolutions(self) -> List[int]:
        """Available long-edge resolutions, ascending."""
        return sorted(self.layers)

    def layer(self, resolution: int) -> LongEdgeLayer:
        """The long-edge layer for ``resolution``."""
        return self.layers[resolution]

    @property
    def num_long_edges(self) -> int:
        """Total number of long edges across every layer."""
        return sum(layer.num_edges for layer in self.layers.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HyperGraph(nodes={self.dag.num_nodes}, base_edges={self.dag.num_edges}, "
            f"long_edges={self.num_long_edges}, resolutions={self.resolutions})"
        )
