"""The reduced contact-network DAG (``DN``) and the ReachGraph hyper graph (``HN``).

After the reduction phase (Section 5.1.2.1) the contact network is a DAG whose
vertices are connected components of TEN snapshots.  Two consecutive identical
components are merged into one vertex that *persists* over a time interval
(the paper's second reduction step); the edge that skips the merged copies is
the aggregated edge and its weight is the length of the persisted interval.

After the augmentation phase (Section 5.1.2.2) the DAG additionally carries
*long edges* at a set of resolutions; the union of the base DAG (``DN_1``) and
the long-edge layers is the ReachGraph hyper graph ``HN``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import IndexConstructionError
from ..core.types import ObjectId, TimeInstant, TimeInterval

__all__ = [
    "ComponentNode",
    "ContactDag",
    "DagPatch",
    "DagPatchBuilder",
    "LongEdgeLayer",
    "HyperGraph",
]


@dataclass(slots=True)
class ComponentNode:
    """A DN vertex: a connected component persisting over a time interval.

    Every object in ``members`` is reachable from every other member at each
    instant of ``interval`` (snapshot symmetry + the component persisting
    unchanged).
    """

    node_id: int
    interval: TimeInterval
    members: FrozenSet[ObjectId]

    def active_at(self, t: TimeInstant) -> bool:
        """True when the component exists at time instance ``t``."""
        return self.interval.contains(t)

    def __hash__(self) -> int:
        return self.node_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        members = ",".join(f"o{m}" for m in sorted(self.members))
        return f"c{self.node_id}({{{members}}}, {self.interval})"


class ContactDag:
    """``DN_1``: component vertices plus the first-resolution edges.

    Vertices are stored in creation order, which is a topological order (an
    edge always points from a vertex that ends at ``t - 1`` to a vertex that
    starts at ``t``).
    """

    def __init__(self, horizon: TimeInterval, num_objects: int) -> None:
        self.horizon = horizon
        self.num_objects = num_objects
        self.nodes: List[ComponentNode] = []
        self.forward: Dict[int, List[int]] = {}
        self.backward: Dict[int, List[int]] = {}
        # (object, start_time) -> node_id assignment segments, per object.
        self._assignments: Dict[ObjectId, List[Tuple[TimeInstant, int]]] = {}

    # ------------------------------------------------------------------
    # construction helpers (used by the reduction phase)
    # ------------------------------------------------------------------
    def add_node(self, interval: TimeInterval, members: FrozenSet[ObjectId]) -> ComponentNode:
        """Append a new component vertex (keeps topological creation order)."""
        node = ComponentNode(len(self.nodes), interval, members)
        self.nodes.append(node)
        self.forward[node.node_id] = []
        self.backward[node.node_id] = []
        for member in members:
            self._assignments.setdefault(member, []).append(
                (interval.start, node.node_id)
            )
        return node

    def extend_node(self, node_id: int, new_end: TimeInstant) -> None:
        """Extend the persistence interval of a vertex (temporal merge step)."""
        node = self.nodes[node_id]
        if new_end < node.interval.end:
            raise IndexConstructionError("cannot shrink a component interval")
        node.interval = TimeInterval(node.interval.start, new_end)

    def extend_horizon(self, new_end: TimeInstant) -> None:
        """Advance the horizon end (streamed ticks were appended at the frontier)."""
        if new_end < self.horizon.end:
            raise IndexConstructionError("cannot shrink the DAG horizon")
        self.horizon = TimeInterval(self.horizon.start, new_end)

    def add_edge(self, source_id: int, target_id: int) -> None:
        """Add a DN_1 edge (deduplicated)."""
        if target_id not in self.forward[source_id]:
            self.forward[source_id].append(target_id)
            self.backward[target_id].append(source_id)

    # ------------------------------------------------------------------
    # queries over the structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of component vertices."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of DN_1 edges (aggregated edges count once)."""
        return sum(len(targets) for targets in self.forward.values())

    def node(self, node_id: int) -> ComponentNode:
        """The vertex with identifier ``node_id``."""
        return self.nodes[node_id]

    def successors(self, node_id: int) -> List[int]:
        """DN_1 successors of a vertex."""
        return self.forward[node_id]

    def predecessors(self, node_id: int) -> List[int]:
        """DN_1 predecessors of a vertex."""
        return self.backward[node_id]

    def node_of(self, object_id: ObjectId, t: TimeInstant) -> int:
        """Identifier of the component containing ``object_id`` at time ``t``.

        This is an in-memory lookup used during construction and by the
        memory-resident baselines; disk-resident query processing goes through
        the external hash tables instead.
        """
        segments = self._assignments.get(object_id)
        if not segments:
            raise IndexConstructionError(f"object {object_id} has no assignments")
        # Binary search over the per-object (start_time, node) segments.
        lo, hi = 0, len(segments) - 1
        answer: Optional[int] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if segments[mid][0] <= t:
                answer = segments[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        if answer is None or not self.nodes[answer].active_at(t):
            raise IndexConstructionError(
                f"object {object_id} has no component at time {t}"
            )
        return answer

    def assignment_segments(self, object_id: ObjectId) -> List[Tuple[TimeInstant, int]]:
        """The (start_time, node_id) assignment history of an object."""
        return list(self._assignments.get(object_id, ()))

    def nodes_active_at(self, t: TimeInstant) -> List[ComponentNode]:
        """All vertices whose persistence interval contains ``t``."""
        return [node for node in self.nodes if node.active_at(t)]

    def topological_order(self) -> List[int]:
        """Vertex ids in topological order (creation order by construction)."""
        return list(range(len(self.nodes)))

    def __iter__(self) -> Iterator[ComponentNode]:
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContactDag(nodes={self.num_nodes}, edges={self.num_edges})"


@dataclass(frozen=True, slots=True)
class DagPatch:
    """A pure description of how appended ticks change the reduced DAG.

    Computed off the live structures (a background thread may run it) by
    :func:`~repro.reachgraph.index.compute_graph_patch` from a captured
    :class:`~repro.reachgraph.index.GraphFrontier`, and applied atomically by
    :meth:`~repro.reachgraph.index.ReachGraphIndex.apply_increment`.  All
    fields are plain picklable data.

    Attributes
    ----------
    base_end / base_nodes:
        The frontier the patch extends: the last reduced tick and the vertex
        count it was computed against (application validates both).
    new_end:
        The last tick covered after application (the merge bound).
    extensions:
        ``(node_id, new_end)`` for every pre-existing open vertex whose
        component persisted into the appended ticks.
    new_nodes:
        ``(node_id, start, end, members)`` for vertices created at the
        frontier, in creation (= topological) order; ids continue the base
        numbering.
    new_edges:
        New DN_1 edges ``(source_id, target_id)``; targets are always new
        vertices, sources may be old (those become dirty).
    new_long_edges:
        ``(resolution, ((source_id, target_id), ...))`` for augmentation
        windows completed by the appended ticks.
    window_cursors:
        ``(resolution, next_window_start)`` after the patch — the resumption
        point the index stores for the next increment.
    """

    base_end: TimeInstant
    base_nodes: int
    new_end: TimeInstant
    extensions: Tuple[Tuple[int, TimeInstant], ...]
    new_nodes: Tuple[Tuple[int, TimeInstant, TimeInstant, Tuple[ObjectId, ...]], ...]
    new_edges: Tuple[Tuple[int, int], ...]
    new_long_edges: Tuple[Tuple[int, Tuple[Tuple[int, int], ...]], ...]
    window_cursors: Tuple[Tuple[int, TimeInstant], ...]

    @property
    def is_empty(self) -> bool:
        """True when the patch changes nothing (a zero-tick increment)."""
        return not (
            self.extensions
            or self.new_nodes
            or self.new_edges
            or self.new_long_edges
        )


class DagPatchBuilder:
    """A :class:`~repro.reachgraph.reduction.DagSink` recording ops as a patch.

    Stands in for the :class:`ContactDag` during the pure half of an
    incremental merge: the :class:`~repro.reachgraph.reduction.ReductionCursor`
    replays the appended ticks into this recorder, and the collected
    operations later replay onto the live DAG at adoption time.  Extensions
    collapse to their final end (extending the same open vertex across many
    ticks is one operation applied once).
    """

    def __init__(self, base_nodes: int) -> None:
        self._base_nodes = base_nodes
        self._extensions: Dict[int, TimeInstant] = {}
        self._new_nodes: List[Tuple[int, TimeInstant, TimeInstant, Tuple[ObjectId, ...]]] = []
        self._new_edges: List[Tuple[int, int]] = []
        self._next_node_id = base_nodes

    def add_node(self, interval: TimeInterval, members: FrozenSet[ObjectId]) -> int:
        """Record a vertex creation; returns the id it will receive."""
        node_id = self._next_node_id
        self._next_node_id += 1
        self._new_nodes.append(
            (node_id, interval.start, interval.end, tuple(sorted(members)))
        )
        return node_id

    def extend_node(self, node_id: int, new_end: TimeInstant) -> None:
        """Record an interval extension (folded to the final end per vertex)."""
        if node_id >= self._base_nodes:
            # A vertex created inside this very patch: fold the extension
            # into its recorded interval instead of emitting an operation.
            index = node_id - self._base_nodes
            recorded_id, start, _, members = self._new_nodes[index]
            self._new_nodes[index] = (recorded_id, start, new_end, members)
        else:
            self._extensions[node_id] = new_end

    def add_edge(self, source_id: int, target_id: int) -> None:
        """Record a DN_1 edge (the cursor never emits duplicates)."""
        self._new_edges.append((source_id, target_id))

    @property
    def new_node_views(self) -> List[Tuple[int, TimeInstant, TimeInstant]]:
        """``(node_id, start, end)`` views of the recorded vertices."""
        return [(node_id, start, end) for node_id, start, end, _ in self._new_nodes]

    @property
    def extensions(self) -> Dict[int, TimeInstant]:
        """Final extension end per pre-existing vertex."""
        return dict(self._extensions)

    @property
    def new_edges(self) -> List[Tuple[int, int]]:
        """The recorded DN_1 edges, in creation order."""
        return list(self._new_edges)

    def build(
        self,
        base_end: TimeInstant,
        new_end: TimeInstant,
        new_long_edges: Tuple[Tuple[int, Tuple[Tuple[int, int], ...]], ...],
        window_cursors: Tuple[Tuple[int, TimeInstant], ...],
    ) -> DagPatch:
        """Freeze everything recorded (plus the augmentation half) as a patch."""
        return DagPatch(
            base_end=base_end,
            base_nodes=self._base_nodes,
            new_end=new_end,
            extensions=tuple(sorted(self._extensions.items())),
            new_nodes=tuple(self._new_nodes),
            new_edges=tuple(self._new_edges),
            new_long_edges=new_long_edges,
            window_cursors=window_cursors,
        )


@dataclass(slots=True)
class LongEdgeLayer:
    """All long edges of one resolution ``L`` (the graph ``DN_L``)."""

    resolution: int
    forward: Dict[int, List[int]] = field(default_factory=dict)

    def add_edge(self, source_id: int, target_id: int) -> None:
        """Add a long edge (deduplicated)."""
        targets = self.forward.setdefault(source_id, [])
        if target_id not in targets:
            targets.append(target_id)

    def successors(self, node_id: int) -> List[int]:
        """Long-edge successors of ``node_id`` at this resolution."""
        return self.forward.get(node_id, [])

    @property
    def num_edges(self) -> int:
        """Number of long edges in the layer."""
        return sum(len(targets) for targets in self.forward.values())

    def average_degree(self) -> float:
        """Average out-degree over vertices that have at least one long edge.

        This is the quantity reported in Table 4 of the paper.
        """
        if not self.forward:
            return 0.0
        return self.num_edges / len(self.forward)


class HyperGraph:
    """``HN``: the base DAG plus long-edge layers at several resolutions."""

    def __init__(self, dag: ContactDag, layers: Iterable[LongEdgeLayer] = ()) -> None:
        self.dag = dag
        self.layers: Dict[int, LongEdgeLayer] = {}
        for layer in layers:
            self.add_layer(layer)

    def add_layer(self, layer: LongEdgeLayer) -> None:
        """Register a long-edge layer (one per resolution)."""
        if layer.resolution in self.layers:
            raise IndexConstructionError(
                f"duplicate long-edge layer for resolution {layer.resolution}"
            )
        self.layers[layer.resolution] = layer

    @property
    def resolutions(self) -> List[int]:
        """Available long-edge resolutions, ascending."""
        return sorted(self.layers)

    def layer(self, resolution: int) -> LongEdgeLayer:
        """The long-edge layer for ``resolution``."""
        return self.layers[resolution]

    @property
    def num_long_edges(self) -> int:
        """Total number of long edges across every layer."""
        return sum(layer.num_edges for layer in self.layers.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HyperGraph(nodes={self.dag.num_nodes}, base_edges={self.dag.num_edges}, "
            f"long_edges={self.num_long_edges}, resolutions={self.resolutions})"
        )
