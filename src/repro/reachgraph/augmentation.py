"""The augmentation phase: precomputing long edges at multiple resolutions.

Section 5.1.2.2 breaks the horizon into windows of length ``L`` for every
resolution ``L`` and adds a *long edge* from every component active at a
window start ``ta`` to every component active at ``ta + L`` that is reachable
from it through DN_1 paths confined to ``[ta, ta + L]``.  The union of DN_1
with the long-edge layers is the ReachGraph hyper graph ``HN``.

Reachability inside a window is computed with a single forward sweep per
window that propagates bitmasks of the window-start components along DN_1
edges (vertices are already in topological/creation order), which is far
cheaper than one BFS per start component.

The per-window sweep (:func:`window_edges`) operates on plain vertex views —
``(node_id, start, end)`` triples plus a successor lookup — rather than on a
:class:`~repro.reachgraph.dag.ContactDag` directly, so the same sweep serves
the batch build *and* the incremental merge path, which runs it over a
captured frontier while the live DAG keeps serving queries.  Windows are
strictly append-processed: a window is swept exactly once, when the horizon
first reaches its end, and appended ticks can never change an already swept
window (new vertices always start past the old horizon end, so no DN_1 path
confined to an old window can reach them).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.types import TimeInstant
from .dag import ContactDag, HyperGraph, LongEdgeLayer

__all__ = [
    "AugmentationReport",
    "augment_dag",
    "build_layer",
    "next_window_start",
    "window_edges",
]

#: A vertex as the window sweep sees it: ``(node_id, start, end)``.  Views
#: must be supplied in ascending node-id order, which by construction is
#: nondecreasing-start (creation) order.
NodeView = Tuple[int, TimeInstant, TimeInstant]


@dataclass(frozen=True, slots=True)
class AugmentationReport:
    """Statistics of the augmentation phase (Table 4 reports the degrees)."""

    resolutions: Tuple[int, ...]
    long_edges_per_resolution: Dict[int, int]
    average_degree_per_resolution: Dict[int, float]
    build_seconds: float

    @property
    def total_long_edges(self) -> int:
        """Total number of long edges added across all resolutions."""
        return sum(self.long_edges_per_resolution.values())


def next_window_start(
    start: TimeInstant, end: TimeInstant, resolution: int
) -> TimeInstant:
    """First window start whose window ``[ta, ta + L]`` exceeds ``end``.

    Window starts are aligned to multiples of ``L`` from the horizon start;
    a window is processed once its end fits inside the horizon.  This is the
    resumption cursor the incremental path stores per resolution: every
    window before it has been swept, every window at or after it has not.
    """
    if end < start:
        return start
    processed = (end - start) // resolution
    return start + processed * resolution


def build_layer(dag: ContactDag, resolution: int) -> LongEdgeLayer:
    """Build the ``DN_L`` long-edge layer for one resolution ``L``."""
    layer = LongEdgeLayer(resolution)
    horizon = dag.horizon
    views: List[NodeView] = [
        (node.node_id, node.interval.start, node.interval.end) for node in dag.nodes
    ]
    ta = horizon.start
    while ta + resolution <= horizon.end:
        for source_id, target_id in window_edges(
            views, dag.successors, ta, ta + resolution
        ):
            layer.add_edge(source_id, target_id)
        ta += resolution
    return layer


def augment_dag(
    dag: ContactDag, resolutions: Sequence[int]
) -> Tuple[HyperGraph, AugmentationReport]:
    """Build the hyper graph ``HN`` by augmenting ``dag`` with long edges."""
    started = time.perf_counter()
    layers = [build_layer(dag, resolution) for resolution in sorted(set(resolutions))]
    hypergraph = HyperGraph(dag, layers)
    report = AugmentationReport(
        resolutions=tuple(sorted(set(resolutions))),
        long_edges_per_resolution={
            layer.resolution: layer.num_edges for layer in layers
        },
        average_degree_per_resolution={
            layer.resolution: layer.average_degree() for layer in layers
        },
        build_seconds=time.perf_counter() - started,
    )
    return hypergraph, report


def window_edges(
    views: Sequence[NodeView],
    successors_of: Callable[[int], List[int]],
    ta: TimeInstant,
    tb: TimeInstant,
) -> List[Tuple[int, int]]:
    """Long edges of one window: components at ``ta`` reaching ones at ``tb``.

    A forward sweep over the vertices that intersect ``[ta, tb]`` (``views``
    must be in creation = topological order) propagates, for every vertex, the
    bitmask of window-start vertices that can reach it without leaving the
    window.  Returned pairs preserve the sweep's deterministic order; callers
    deduplicate via :meth:`LongEdgeLayer.add_edge`.
    """
    start_nodes = [node_id for node_id, start, end in views if start <= ta <= end]
    if not start_nodes:
        return []
    bit_of = {node_id: 1 << position for position, node_id in enumerate(start_nodes)}

    # Reachability masks; a start vertex reaches itself.
    masks: Dict[int, int] = dict(bit_of)
    starts: Dict[int, TimeInstant] = {node_id: start for node_id, start, _ in views}

    for node_id, start, end in views:
        if start > tb:
            break
        if end < ta:
            continue
        mask = masks.get(node_id, 0)
        if not mask:
            continue
        for successor_id in successors_of(node_id):
            # The connecting edge happens at the successor's start; it must
            # stay inside the window.  A successor beyond the captured views
            # cannot start inside the window (views cover every vertex whose
            # interval reaches past ta, and successors start after their
            # source ends).
            successor_start = starts.get(successor_id)
            if successor_start is None or successor_start > tb:
                continue
            masks[successor_id] = masks.get(successor_id, 0) | mask

    index_of = {bit_of[node_id]: node_id for node_id in start_nodes}
    edges: List[Tuple[int, int]] = []
    for node_id, start, end in views:
        if start > tb:
            break
        if not (start <= tb <= end):
            continue
        mask = masks.get(node_id, 0)
        if not mask:
            continue
        remaining = mask
        while remaining:
            lowest_bit = remaining & (-remaining)
            source_id = index_of[lowest_bit]
            if source_id != node_id:
                edges.append((source_id, node_id))
            remaining ^= lowest_bit
    return edges
