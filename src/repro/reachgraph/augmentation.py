"""The augmentation phase: precomputing long edges at multiple resolutions.

Section 5.1.2.2 breaks the horizon into windows of length ``L`` for every
resolution ``L`` and adds a *long edge* from every component active at a
window start ``ta`` to every component active at ``ta + L`` that is reachable
from it through DN_1 paths confined to ``[ta, ta + L]``.  The union of DN_1
with the long-edge layers is the ReachGraph hyper graph ``HN``.

Reachability inside a window is computed with a single forward sweep per
window that propagates bitmasks of the window-start components along DN_1
edges (vertices are already in topological/creation order), which is far
cheaper than one BFS per start component.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .dag import ContactDag, HyperGraph, LongEdgeLayer

__all__ = ["AugmentationReport", "augment_dag", "build_layer"]


@dataclass(frozen=True, slots=True)
class AugmentationReport:
    """Statistics of the augmentation phase (Table 4 reports the degrees)."""

    resolutions: Tuple[int, ...]
    long_edges_per_resolution: Dict[int, int]
    average_degree_per_resolution: Dict[int, float]
    build_seconds: float

    @property
    def total_long_edges(self) -> int:
        """Total number of long edges added across all resolutions."""
        return sum(self.long_edges_per_resolution.values())


def build_layer(dag: ContactDag, resolution: int) -> LongEdgeLayer:
    """Build the ``DN_L`` long-edge layer for one resolution ``L``."""
    layer = LongEdgeLayer(resolution)
    horizon = dag.horizon
    start = horizon.start
    # Window starts are aligned to multiples of L from the horizon start.
    ta = start
    while ta + resolution <= horizon.end:
        tb = ta + resolution
        _add_window_edges(dag, layer, ta, tb)
        ta += resolution
    return layer


def augment_dag(
    dag: ContactDag, resolutions: Sequence[int]
) -> Tuple[HyperGraph, AugmentationReport]:
    """Build the hyper graph ``HN`` by augmenting ``dag`` with long edges."""
    started = time.perf_counter()
    layers = [build_layer(dag, resolution) for resolution in sorted(set(resolutions))]
    hypergraph = HyperGraph(dag, layers)
    report = AugmentationReport(
        resolutions=tuple(sorted(set(resolutions))),
        long_edges_per_resolution={
            layer.resolution: layer.num_edges for layer in layers
        },
        average_degree_per_resolution={
            layer.resolution: layer.average_degree() for layer in layers
        },
        build_seconds=time.perf_counter() - started,
    )
    return hypergraph, report


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _add_window_edges(dag: ContactDag, layer: LongEdgeLayer, ta: int, tb: int) -> None:
    """Add long edges from components active at ``ta`` to those at ``tb``.

    A forward sweep over the vertices that intersect ``[ta, tb]`` (in creation
    = topological order) propagates, for every vertex, the bitmask of window
    start vertices that can reach it without leaving the window.
    """
    start_nodes = [node.node_id for node in dag.nodes if node.active_at(ta)]
    if not start_nodes:
        return
    bit_of = {node_id: 1 << position for position, node_id in enumerate(start_nodes)}

    # Reachability masks; a start vertex reaches itself.
    masks: Dict[int, int] = dict(bit_of)

    for node in dag.nodes:
        if node.interval.start > tb:
            break
        if node.interval.end < ta:
            continue
        mask = masks.get(node.node_id, 0)
        if not mask:
            continue
        for successor_id in dag.successors(node.node_id):
            successor = dag.node(successor_id)
            # The connecting edge happens at successor.interval.start; it must
            # stay inside the window.
            if successor.interval.start > tb:
                continue
            masks[successor_id] = masks.get(successor_id, 0) | mask

    index_of = {bit_of[node_id]: node_id for node_id in start_nodes}
    for node in dag.nodes:
        if node.interval.start > tb:
            break
        if not node.active_at(tb):
            continue
        mask = masks.get(node.node_id, 0)
        if not mask:
            continue
        remaining = mask
        while remaining:
            lowest_bit = remaining & (-remaining)
            source_id = index_of[lowest_bit]
            if source_id != node.node_id:
                layer.add_edge(source_id, node.node_id)
            remaining ^= lowest_bit
