"""ReachGraph: the precomputed multi-resolution reachability index of Section 5."""

from __future__ import annotations

from .augmentation import (
    AugmentationReport,
    augment_dag,
    build_layer,
    next_window_start,
    window_edges,
)
from .dag import (
    ComponentNode,
    ContactDag,
    DagPatch,
    DagPatchBuilder,
    HyperGraph,
    LongEdgeLayer,
)
from .index import (
    GraphFrontier,
    GraphIncrementReport,
    ReachGraphBuildReport,
    ReachGraphIndex,
    VertexRecord,
    compute_graph_patch,
)
from .labels import ReachLabelIndex
from .partition import Partitioning, extend_partitioning, partition_hypergraph
from .query import STRATEGIES, PartitionCache, ReachGraphQueryProcessor
from .reduction import (
    ReductionCursor,
    ReductionFrontier,
    ReductionReport,
    reduce_contact_network,
    snapshot_components,
)

__all__ = [
    "ComponentNode",
    "ContactDag",
    "DagPatch",
    "DagPatchBuilder",
    "HyperGraph",
    "LongEdgeLayer",
    "reduce_contact_network",
    "snapshot_components",
    "ReductionCursor",
    "ReductionFrontier",
    "ReductionReport",
    "augment_dag",
    "build_layer",
    "next_window_start",
    "window_edges",
    "AugmentationReport",
    "partition_hypergraph",
    "extend_partitioning",
    "Partitioning",
    "ReachGraphIndex",
    "ReachGraphBuildReport",
    "GraphFrontier",
    "GraphIncrementReport",
    "compute_graph_patch",
    "VertexRecord",
    "ReachGraphQueryProcessor",
    "ReachLabelIndex",
    "PartitionCache",
    "STRATEGIES",
]
