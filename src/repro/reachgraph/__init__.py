"""ReachGraph: the precomputed multi-resolution reachability index of Section 5."""

from __future__ import annotations

from .augmentation import AugmentationReport, augment_dag, build_layer
from .dag import ComponentNode, ContactDag, HyperGraph, LongEdgeLayer
from .index import ReachGraphBuildReport, ReachGraphIndex, VertexRecord
from .partition import Partitioning, partition_hypergraph
from .query import STRATEGIES, ReachGraphQueryProcessor
from .reduction import ReductionReport, reduce_contact_network

__all__ = [
    "ComponentNode",
    "ContactDag",
    "HyperGraph",
    "LongEdgeLayer",
    "reduce_contact_network",
    "ReductionReport",
    "augment_dag",
    "build_layer",
    "AugmentationReport",
    "partition_hypergraph",
    "Partitioning",
    "ReachGraphIndex",
    "ReachGraphBuildReport",
    "VertexRecord",
    "ReachGraphQueryProcessor",
    "STRATEGIES",
]
