"""GRAIL-style interval labels over the reduced DAG, patched across merges.

The :class:`ReachLabelIndex` assigns every DN vertex a label
``[low(v), rank(v)]`` where ``rank`` is a postorder DFS rank over ``DN_1``
and ``low(v)`` is the minimum rank reachable from ``v`` (including ``v``
itself).  The classic GRAIL containment property follows: if ``u`` reaches
``v`` then ``low(u) <= rank(v) <= rank(u)``.  The contrapositive is the fast
path — whenever ``rank(v)`` falls outside ``[low(u), rank(u)]`` the target is
*provably* unreachable from ``u``, with no traversal and no IO.  The test is
one-sided: a rank inside the interval proves nothing, and the exact
traversal remains the tie-breaker.

Two facts about the reduced DAG make the labels cheap to maintain
incrementally across streaming merges:

* vertex creation order is a topological order (an edge always points from a
  vertex that ends at ``t - 1`` to one that starts at ``t``), so vertex ids
  themselves are a topological sort — ``reversed(range(num_nodes))`` is a
  reverse-topological sweep;
* a :class:`~repro.reachgraph.dag.DagPatch` only ever adds edges whose
  *target* is a new vertex, so pre-existing vertices never gain new
  descendants except through edges whose sources the patch names.

Incremental maintenance therefore assigns each new vertex a fresh rank
*below* every existing rank (a descending negative counter — new vertices
are created later, hence downstream, hence must rank below their ancestors)
and propagates the resulting ``low`` decreases up the predecessor closure.
The propagation pass is bounded: when the dirtied ancestor set exceeds
``dirty_ratio`` of the graph the index abandons the patch and relabels from
scratch, which also restores tight postorder intervals.  Both outcomes are
ledger-counted so experiments can report how often each path fired.

Long edges are shortcuts over ``DN_1`` paths, so reachability over ``DN_1``
equals reachability over the hyper graph — the labels are computed on the
base DAG only and remain valid for pruning long-edge traversal too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from .dag import ContactDag, DagPatch

__all__ = ["ReachLabelIndex"]

# Default bound on the incremental pass: relabel from scratch when the dirty
# ancestor closure exceeds this fraction of the vertex count.
DEFAULT_DIRTY_RATIO = 0.25


class ReachLabelIndex:
    """Min-postorder interval labels with bounded incremental patching.

    Built once from a :class:`~repro.reachgraph.dag.ContactDag` and then
    patched by :meth:`apply_patch` whenever the owning index applies a
    :class:`~repro.reachgraph.dag.DagPatch`.  All state is in memory; the
    whole index serializes into the graph catalog via :meth:`catalog` and
    comes back through :meth:`restore`, riding the same manifest commit
    point as the rest of the graph.
    """

    def __init__(self, dirty_ratio: float = DEFAULT_DIRTY_RATIO) -> None:
        if not 0.0 <= dirty_ratio <= 1.0:
            raise ValueError("dirty_ratio must be within [0, 1]")
        self.dirty_ratio = dirty_ratio
        self._ranks: List[int] = []
        self._lows: List[int] = []
        # Next rank handed to an incrementally added vertex; always below
        # every rank already assigned (full relabels use ranks 1..N).
        self._next_new_rank = 0
        # Ledgers.
        self.full_relabels = 0
        self.incremental_passes = 0
        self.patched_labels = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, dag: ContactDag, dirty_ratio: float = DEFAULT_DIRTY_RATIO
    ) -> "ReachLabelIndex":
        """Label every vertex of ``dag`` with a deterministic postorder DFS."""
        index = cls(dirty_ratio=dirty_ratio)
        index._relabel(dag)
        index.full_relabels = 0  # the initial build is not a *re*-label
        return index

    def _relabel(self, dag: ContactDag) -> None:
        """Recompute every label from scratch (deterministic postorder)."""
        num_nodes = dag.num_nodes
        ranks = [0] * num_nodes
        visited = [False] * num_nodes
        counter = 0
        # Roots in id order; children in successor-list order.  The traversal
        # is deterministic, so labels are reproducible across processes.
        for root in range(num_nodes):
            if visited[root] or dag.predecessors(root):
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            visited[root] = True
            while stack:
                node_id, child_index = stack[-1]
                successors = dag.successors(node_id)
                if child_index < len(successors):
                    stack[-1] = (node_id, child_index + 1)
                    child = successors[child_index]
                    if not visited[child]:
                        visited[child] = True
                        stack.append((child, 0))
                else:
                    stack.pop()
                    counter += 1
                    ranks[node_id] = counter
        # Isolated vertices that are their own root are covered above (no
        # predecessors); anything still unvisited is unreachable from every
        # root, which cannot happen in a DAG — but rank it defensively.
        for node_id in range(num_nodes):
            if not visited[node_id]:  # pragma: no cover - DAG invariant
                counter += 1
                ranks[node_id] = counter
        # Fold lows bottom-up: vertex ids are a topological order, so a
        # reversed id sweep sees every successor before its predecessors.
        lows = list(ranks)
        for node_id in range(num_nodes - 1, -1, -1):
            low = lows[node_id]
            for child in dag.successors(node_id):
                if lows[child] < low:
                    low = lows[child]
            lows[node_id] = low
        self._ranks = ranks
        self._lows = lows
        self._next_new_rank = 0
        self.full_relabels += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_labels(self) -> int:
        """Number of labelled vertices."""
        return len(self._ranks)

    def label(self, node_id: int) -> Tuple[int, int]:
        """The ``(low, rank)`` interval of a vertex."""
        return (self._lows[node_id], self._ranks[node_id])

    def rejects(self, source_id: int, target_id: int) -> bool:
        """True when labels *prove* ``target_id`` is unreachable from ``source_id``.

        One-sided: ``False`` means "maybe reachable" and the caller must fall
        back to exact traversal.  A ``True`` answer is always exact.
        """
        if source_id == target_id:
            return False
        rank = self._ranks[target_id]
        if rank > self._ranks[source_id] or rank < self._lows[source_id]:
            self.rejections += 1
            return True
        return False

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def apply_patch(self, patch: DagPatch, dag: ContactDag) -> None:
        """Patch labels after ``patch`` has been applied to ``dag``.

        New vertices receive fresh ranks below every existing rank (they are
        downstream of everything that can reach them), then the ``low``
        decreases propagate up the predecessor closure.  When the dirtied
        ancestor set exceeds ``dirty_ratio`` of the graph the pass aborts and
        the whole DAG is relabelled instead (ledger-counted either way).
        """
        if len(self._ranks) != patch.base_nodes:
            raise ValueError(
                f"label index covers {len(self._ranks)} vertices but the patch "
                f"extends a base of {patch.base_nodes}"
            )
        if not patch.new_nodes and not patch.new_edges:
            return
        # Step 1: rank the new vertices.  Ids continue the base numbering in
        # creation (= topological) order, so assigning a strictly decreasing
        # rank per id keeps rank(target) < rank(source) for every edge.
        for node_id, _, _, _ in patch.new_nodes:
            if node_id != len(self._ranks):
                raise ValueError("patch vertex ids must continue the numbering")
            self._next_new_rank -= 1
            self._ranks.append(self._next_new_rank)
            self._lows.append(self._next_new_rank)
        # Step 2: fold lows of the new suffix in reverse id (= reverse
        # topological) order so every new vertex sees its successors first.
        for node_id in range(dag.num_nodes - 1, patch.base_nodes - 1, -1):
            low = self._lows[node_id]
            for child in dag.successors(node_id):
                if self._lows[child] < low:
                    low = self._lows[child]
            self._lows[node_id] = low
        # Step 3: propagate low decreases into the pre-existing prefix.  Only
        # patch edges whose source is an old vertex can change old labels.
        max_dirty = max(16, int(self.dirty_ratio * dag.num_nodes))
        worklist: List[int] = []
        for source_id, target_id in patch.new_edges:
            if source_id < patch.base_nodes:
                if self._lows[target_id] < self._lows[source_id]:
                    self._lows[source_id] = self._lows[target_id]
                    worklist.append(source_id)
        dirty = set(worklist)
        patched = len(dirty)
        while worklist:
            node_id = worklist.pop()
            low = self._lows[node_id]
            for pred in dag.predecessors(node_id):
                if low < self._lows[pred]:
                    self._lows[pred] = low
                    if pred not in dirty:
                        dirty.add(pred)
                        patched += 1
                        if patched > max_dirty:
                            # The closure is too large for a bounded pass:
                            # relabel from scratch (also tightens intervals).
                            self._relabel(dag)
                            return
                    worklist.append(pred)
        self.incremental_passes += 1
        self.patched_labels += len(patch.new_nodes) + patched

    # ------------------------------------------------------------------
    # verification and persistence
    # ------------------------------------------------------------------
    def check_consistency(self, dag: ContactDag) -> None:
        """Raise when any label violates the containment invariant.

        Verifies ``rank(child) < rank(parent)`` and
        ``low(parent) <= low(child)`` for every DN_1 edge — the two local
        conditions that make :meth:`rejects` exact.  Used by tests.
        """
        if dag.num_nodes != len(self._ranks):
            raise AssertionError("label index does not cover the DAG")
        for node_id in range(dag.num_nodes):
            if self._lows[node_id] > self._ranks[node_id]:
                raise AssertionError(f"low > rank at vertex {node_id}")
            for child in dag.successors(node_id):
                if self._ranks[child] >= self._ranks[node_id]:
                    raise AssertionError(
                        f"edge {node_id}->{child} violates rank ordering"
                    )
                if self._lows[child] < self._lows[node_id]:
                    raise AssertionError(
                        f"edge {node_id}->{child} violates low containment"
                    )

    def catalog(self) -> Dict[str, object]:
        """Serializable state for the graph catalog (manifest commit path)."""
        return {
            "ranks": list(self._ranks),
            "lows": list(self._lows),
            "next_new_rank": self._next_new_rank,
            "dirty_ratio": self.dirty_ratio,
            "full_relabels": self.full_relabels,
            "incremental_passes": self.incremental_passes,
            "patched_labels": self.patched_labels,
        }

    @classmethod
    def restore(cls, catalog: Mapping[str, Any]) -> "ReachLabelIndex":
        """Rebuild a label index from :meth:`catalog` output."""
        index = cls(dirty_ratio=float(catalog.get("dirty_ratio", DEFAULT_DIRTY_RATIO)))
        index._ranks = [int(rank) for rank in catalog.get("ranks", ())]
        index._lows = [int(low) for low in catalog.get("lows", ())]
        index._next_new_rank = int(catalog.get("next_new_rank", 0))
        index.full_relabels = int(catalog.get("full_relabels", 0))
        index.incremental_passes = int(catalog.get("incremental_passes", 0))
        index.patched_labels = int(catalog.get("patched_labels", 0))
        return index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReachLabelIndex(labels={self.num_labels}, "
            f"passes={self.incremental_passes}, relabels={self.full_relabels})"
        )
