"""Disk placement of the ReachGraph hyper graph.

Section 5.1.3 partitions ``HN`` for disk placement: vertices are visited in
topological order (which is creation order here); each unassigned vertex
roots a new partition containing every unassigned vertex within DN_1 distance
``dp`` of it.  Long edges are ignored while partitioning so that each
partition preserves temporal locality.  Partitions are written to disk in the
order they are generated, each as one contiguous extent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.errors import IndexConstructionError
from .dag import ContactDag, HyperGraph

__all__ = ["Partitioning", "extend_partitioning", "partition_hypergraph"]


@dataclass(frozen=True, slots=True)
class Partitioning:
    """The result of partitioning: per-vertex partition ids and member lists.

    Attributes
    ----------
    partition_of:
        ``partition_of[node_id]`` is the partition holding that vertex.
    members:
        ``members[p]`` lists the vertex ids of partition ``p`` in the order
        they should be written inside the extent.  An empty list is a
        *tombstone*: a partition retired by a frontier repack whose vertices
        moved into a packed partition — the id stays reserved so later ids
        never shift.
    depth:
        The partition depth ``dp`` used.
    """

    partition_of: Dict[int, int]
    members: List[List[int]]
    depth: int

    @property
    def num_partitions(self) -> int:
        """Number of live (non-tombstone) partitions."""
        return sum(1 for member_list in self.members if member_list)

    def partition_sizes(self) -> List[int]:
        """Vertex count of every live partition."""
        return [len(member_list) for member_list in self.members if member_list]

    def average_partition_size(self) -> float:
        """Mean number of vertices per live partition."""
        sizes = self.partition_sizes()
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)


def partition_hypergraph(graph: HyperGraph, depth: int) -> Partitioning:
    """Partition the hyper graph with the paper's depth-``dp`` scheme."""
    dag = graph.dag
    partition_of: Dict[int, int] = {}
    members: List[List[int]] = []

    for root_id in dag.topological_order():
        if root_id in partition_of:
            continue
        partition_id = len(members)
        collected = _collect_unassigned_within_depth(dag, root_id, depth, partition_of)
        for node_id in collected:
            partition_of[node_id] = partition_id
        members.append(collected)

    return Partitioning(partition_of=partition_of, members=members, depth=depth)


def extend_partitioning(
    partitioning: Partitioning,
    dag: ContactDag,
    new_node_ids: Sequence[int],
    depth: int,
) -> List[int]:
    """Assign freshly appended vertices to partitions, in place.

    The paper's partitioning loop, resumed: every *unassigned* vertex visited
    in topological (= id) order roots a new partition collecting the
    unassigned vertices within DN_1 distance ``depth`` of it.  Vertices
    already assigned stay exactly where they are — their extents on disk are
    immutable except for record rewrites — so only new vertices join (new)
    partitions.  Returns the ids of the partitions created, in creation
    order; ``partitioning.partition_of`` and ``partitioning.members`` are
    updated in place.
    """
    if depth != partitioning.depth:
        raise IndexConstructionError(
            f"cannot extend a depth-{partitioning.depth} partitioning "
            f"with depth {depth}"
        )
    created: List[int] = []
    for root_id in sorted(new_node_ids):
        if root_id in partitioning.partition_of:
            continue
        partition_id = len(partitioning.members)
        collected = _collect_unassigned_within_depth(
            dag, root_id, depth, partitioning.partition_of
        )
        for node_id in collected:
            partitioning.partition_of[node_id] = partition_id
        partitioning.members.append(collected)
        created.append(partition_id)
    return created


def _collect_unassigned_within_depth(
    dag: ContactDag,
    root_id: int,
    depth: int,
    partition_of: Dict[int, int],
) -> List[int]:
    """Unassigned vertices within DN_1 distance ``depth`` of ``root_id``.

    The root itself is always included.  Already-assigned vertices are passed
    through (they do not join the partition) but do not block deeper
    unassigned vertices, mirroring the paper's "create a partition rooted at u
    if u is not already assigned" iteration.
    """
    collected: List[int] = []
    seen = {root_id}
    queue = deque([(root_id, 0)])
    while queue:
        node_id, distance = queue.popleft()
        if node_id not in partition_of:
            collected.append(node_id)
        if distance >= depth:
            continue
        for successor_id in dag.successors(node_id):
            if successor_id not in seen:
                seen.add(successor_id)
                queue.append((successor_id, distance + 1))
    return collected
