"""ReachGraph index construction and disk placement.

Putting the pieces together (Sections 5.1.1–5.1.3):

1. extract the contact network of the dataset (window trajectory join),
2. *reduce* it to the component DAG ``DN`` (snapshot components + temporal
   merging with aggregated edges),
3. *augment* ``DN`` with long edges at the configured resolutions, producing
   the hyper graph ``HN``,
4. *partition* ``HN`` by DN_1 depth ``dp`` in topological order and write each
   partition as one contiguous extent on the simulated disk, and
5. build the external hash tables that map an object and a time instance to
   the vertex/partition containing ``o(t)``.

The per-vertex disk record also stores the reverse DN_1 adjacency so that the
backward half of the bidirectional traversal never needs a second structure
(the paper stores the reverse graph alongside ``HN``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import ContactConfig, ReachGraphConfig, StorageConfig
from ..core.errors import IndexConstructionError, IndexNotBuiltError, UnknownObjectError
from ..core.types import ObjectId, TimeInstant, TimeInterval
from ..contacts.join import build_contact_network
from ..contacts.network import ContactNetwork
from ..storage import StorageSystem
from ..trajectory.model import TrajectoryDataset
from .augmentation import AugmentationReport, augment_dag
from .dag import ContactDag, HyperGraph
from .partition import Partitioning, partition_hypergraph
from .reduction import ReductionReport, reduce_contact_network

__all__ = ["VertexRecord", "ReachGraphBuildReport", "ReachGraphIndex"]


@dataclass(frozen=True, slots=True)
class VertexRecord:
    """The on-disk representation of one ``HN`` vertex."""

    node_id: int
    start: TimeInstant
    end: TimeInstant
    members: Tuple[ObjectId, ...]
    successors: Tuple[int, ...]
    predecessors: Tuple[int, ...]
    long_successors: Tuple[Tuple[int, Tuple[int, ...]], ...]

    @property
    def interval(self) -> TimeInterval:
        """The persistence interval of the component."""
        return TimeInterval(self.start, self.end)

    def long_successors_at(self, resolution: int) -> Tuple[int, ...]:
        """Long-edge successors at one resolution (empty when none)."""
        for stored_resolution, successors in self.long_successors:
            if stored_resolution == resolution:
                return successors
        return ()


@dataclass(frozen=True, slots=True)
class ReachGraphBuildReport:
    """Statistics collected while building a ReachGraph index."""

    reduction: ReductionReport
    augmentation: AugmentationReport
    num_partitions: int
    num_blocks: int
    build_seconds: float
    write_ios: int


class ReachGraphIndex:
    """The ReachGraph multi-resolution index over a trajectory dataset."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        config: ReachGraphConfig | None = None,
        contact_config: ContactConfig | None = None,
        storage_config: StorageConfig | None = None,
        contact_network: Optional[ContactNetwork] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or ReachGraphConfig()
        self.contact_config = contact_config or ContactConfig()
        self.storage = StorageSystem(storage_config, name="reachgraph", attach=False)
        self._provided_network = contact_network
        self._partitions_file = self.storage.new_blockfile("reachgraph-partitions")
        self._object_index = self.storage.new_hashtable("reachgraph-object-index")
        self._built = False

        # Populated by build().
        self.network: Optional[ContactNetwork] = None
        self.dag: Optional[ContactDag] = None
        self.hypergraph: Optional[HyperGraph] = None
        self.partitioning: Optional[Partitioning] = None
        self.build_report: Optional[ReachGraphBuildReport] = None
        self._partition_of_vertex: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "ReachGraphIndex":
        """Construct the index end to end and place it on the simulated disk."""
        if self._built:
            raise IndexConstructionError("ReachGraph index already built")
        started = time.perf_counter()

        self.network = self._provided_network or build_contact_network(
            self.dataset, self.contact_config.distance_threshold
        )
        self.dag, reduction_report = reduce_contact_network(self.network)
        self.hypergraph, augmentation_report = augment_dag(
            self.dag, self.config.sorted_resolutions
        )
        self.partitioning = partition_hypergraph(
            self.hypergraph, self.config.partition_depth
        )
        self._partition_of_vertex = dict(self.partitioning.partition_of)

        self._write_partitions()
        self._build_object_index()

        self.build_report = ReachGraphBuildReport(
            reduction=reduction_report,
            augmentation=augmentation_report,
            num_partitions=self.partitioning.num_partitions,
            num_blocks=self._partitions_file.num_blocks,
            build_seconds=time.perf_counter() - started,
            write_ios=self.storage.stats.writes,
        )
        self._built = True
        return self

    def _write_partitions(self) -> None:
        """Write every partition as one contiguous extent, in generation order."""
        assert self.partitioning is not None and self.hypergraph is not None
        dag = self.hypergraph.dag
        for partition_id, member_ids in enumerate(self.partitioning.members):
            records = [self._make_record(dag, node_id) for node_id in member_ids]
            self._partitions_file.append_extent(partition_id, records)

    def _make_record(self, dag: ContactDag, node_id: int) -> VertexRecord:
        assert self.hypergraph is not None
        node = dag.node(node_id)
        long_successors = tuple(
            (resolution, tuple(self.hypergraph.layer(resolution).successors(node_id)))
            for resolution in self.hypergraph.resolutions
            if self.hypergraph.layer(resolution).successors(node_id)
        )
        return VertexRecord(
            node_id=node_id,
            start=node.interval.start,
            end=node.interval.end,
            members=tuple(sorted(node.members)),
            successors=tuple(dag.successors(node_id)),
            predecessors=tuple(dag.predecessors(node_id)),
            long_successors=long_successors,
        )

    def _build_object_index(self) -> None:
        """Build the external hash table: object → (start, vertex) assignment history."""
        assert self.dag is not None
        entries = []
        for object_id in self.dataset.object_ids:
            segments = tuple(self.dag.assignment_segments(object_id))
            if not segments:
                raise IndexConstructionError(
                    f"object {object_id} received no component assignments"
                )
            entries.append((object_id, segments))
        self._object_index.build(entries)

    # ------------------------------------------------------------------
    # state checks
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("ReachGraphIndex.build() has not been called")

    # ------------------------------------------------------------------
    # query-time access (all charged IO)
    # ------------------------------------------------------------------
    def find_vertex_id(self, object_id: ObjectId, t: TimeInstant) -> int:
        """Vertex containing ``object_id`` at time ``t`` (one hash-bucket read)."""
        self._require_built()
        segments = self._object_index.get(object_id)
        if segments is None:
            raise UnknownObjectError(object_id)
        # Binary search the (start_time, node_id) assignment history.
        lo, hi = 0, len(segments) - 1
        answer = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if segments[mid][0] <= t:
                answer = segments[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        if answer is None:
            raise IndexConstructionError(
                f"object {object_id} has no component at time {t}"
            )
        return answer

    def partition_of(self, node_id: int) -> int:
        """Partition holding vertex ``node_id`` (in-memory directory lookup)."""
        self._require_built()
        return self._partition_of_vertex[node_id]

    def read_partition(self, partition_id: int) -> List[VertexRecord]:
        """Read every vertex record of one partition from disk (charged IO)."""
        self._require_built()
        return self._partitions_file.read_extent(partition_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of ``HN`` vertices."""
        self._require_built()
        assert self.dag is not None
        return self.dag.num_nodes

    @property
    def num_partitions(self) -> int:
        """Number of disk partitions."""
        self._require_built()
        assert self.partitioning is not None
        return self.partitioning.num_partitions

    @property
    def num_blocks(self) -> int:
        """Number of disk blocks occupied by the partitions."""
        self._require_built()
        return self._partitions_file.num_blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "built" if self._built else "not built"
        return (
            f"ReachGraphIndex(dataset={self.dataset.name!r}, "
            f"resolutions={self.config.sorted_resolutions}, "
            f"dp={self.config.partition_depth}, {status})"
        )
