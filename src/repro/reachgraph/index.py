"""ReachGraph index construction, disk placement, and incremental maintenance.

Putting the pieces together (Sections 5.1.1–5.1.3):

1. extract the contact network of the dataset (window trajectory join),
2. *reduce* it to the component DAG ``DN`` (snapshot components + temporal
   merging with aggregated edges),
3. *augment* ``DN`` with long edges at the configured resolutions, producing
   the hyper graph ``HN``,
4. *partition* ``HN`` by DN_1 depth ``dp`` in topological order and write each
   partition as one contiguous extent on the simulated disk, and
5. build the external hash tables that map an object and a time instance to
   the vertex/partition containing ``o(t)``.

The per-vertex disk record also stores the reverse DN_1 adjacency so that the
backward half of the bidirectional traversal never needs a second structure
(the paper stores the reverse graph alongside ``HN``).

Beyond the one-shot build, the index is *maintainable*: the streaming merge
path appends contacts at the frontier instead of rebuilding.
:meth:`ReachGraphIndex.frontier` captures the resumable state on the live
thread, :func:`compute_graph_patch` replays the appended ticks through the
same reduction/augmentation code the batch build uses — purely, so a
background thread may run it — and :meth:`ReachGraphIndex.apply_increment`
applies the patch: open component vertices are extended or split, successor
edges and newly complete augmentation windows are added, fresh vertices are
partitioned, and only *dirty* partitions (those holding a changed record) are
rewritten on disk, with :attr:`~ReachGraphIndex.records_written` /
:attr:`~ReachGraphIndex.superseded_blocks` as the write-amplification ledger.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.config import ContactConfig, ReachGraphConfig, StorageConfig
from ..core.errors import IndexConstructionError, IndexNotBuiltError, UnknownObjectError
from ..core.types import ObjectId, TimeInstant, TimeInterval
from ..contacts.join import build_contact_network
from ..contacts.network import Contact, ContactNetwork
from ..storage import BlockFile, ExternalHashTable, StorageSystem
from ..testing.faults import crash_point
from ..trajectory.model import TrajectoryDataset
from .augmentation import (
    AugmentationReport,
    NodeView,
    augment_dag,
    next_window_start,
    window_edges,
)
from .dag import ContactDag, DagPatch, DagPatchBuilder, HyperGraph, LongEdgeLayer
from .labels import ReachLabelIndex
from .partition import Partitioning, extend_partitioning, partition_hypergraph
from .reduction import (
    ReductionCursor,
    ReductionFrontier,
    ReductionReport,
    reduce_contact_network,
)

__all__ = [
    "GraphFrontier",
    "GraphIncrementReport",
    "ReachGraphBuildReport",
    "ReachGraphIndex",
    "VertexRecord",
    "compute_graph_patch",
]

#: Per-object assignment history stored in the object index: ``(start, node)``.
AssignmentSegments = Tuple[Tuple[TimeInstant, int], ...]


@dataclass(frozen=True, slots=True)
class VertexRecord:
    """The on-disk representation of one ``HN`` vertex."""

    node_id: int
    start: TimeInstant
    end: TimeInstant
    members: Tuple[ObjectId, ...]
    successors: Tuple[int, ...]
    predecessors: Tuple[int, ...]
    long_successors: Tuple[Tuple[int, Tuple[int, ...]], ...]

    @property
    def interval(self) -> TimeInterval:
        """The persistence interval of the component."""
        return TimeInterval(self.start, self.end)

    def long_successors_at(self, resolution: int) -> Tuple[int, ...]:
        """Long-edge successors at one resolution (empty when none)."""
        for stored_resolution, successors in self.long_successors:
            if stored_resolution == resolution:
                return successors
        return ()


@dataclass(frozen=True, slots=True)
class ReachGraphBuildReport:
    """Statistics collected while building a ReachGraph index."""

    reduction: ReductionReport
    augmentation: AugmentationReport
    num_partitions: int
    num_blocks: int
    build_seconds: float
    write_ios: int


@dataclass(frozen=True, slots=True)
class GraphFrontier:
    """Everything a pure patch computation needs from the live index.

    Captured synchronously by :meth:`ReachGraphIndex.frontier` (cheap: the
    reduction state plus the vertices recent enough to matter to unprocessed
    augmentation windows), after which :func:`compute_graph_patch` may run in
    a background thread without touching the index.  ``recent_nodes`` carries
    every vertex whose interval reaches the earliest unprocessed window start
    — successors of such vertices always start later, so the set is closed
    under the window sweep.
    """

    reduction: ReductionFrontier
    window_cursors: Tuple[Tuple[int, TimeInstant], ...]
    recent_nodes: Tuple[NodeView, ...]
    recent_edges: Tuple[Tuple[int, Tuple[int, ...]], ...]


@dataclass(frozen=True, slots=True)
class GraphIncrementReport:
    """What one :meth:`ReachGraphIndex.apply_increment` actually did."""

    new_nodes: int
    extended_nodes: int
    new_edges: int
    new_long_edges: int
    new_partitions: int
    rewritten_partitions: int
    records_written: int
    apply_seconds: float


def compute_graph_patch(
    frontier: GraphFrontier,
    contacts: Sequence[Contact],
    through: TimeInstant,
) -> DagPatch:
    """Replay appended ticks over a captured frontier into a :class:`DagPatch`.

    Pure function of its arguments: ``contacts`` must cover exactly the
    contact instants of the appended ticks ``(frontier.end, through]`` (the
    streaming merge's freshly frozen slice), and the result describes every
    reduction and augmentation change those ticks cause.  Runs the *same*
    per-tick :class:`~repro.reachgraph.reduction.ReductionCursor` and
    per-window sweep the batch build runs — recorded instead of applied.
    """
    reduction = frontier.reduction
    if through < reduction.end:
        raise IndexConstructionError(
            f"cannot patch backwards: frontier at {reduction.end}, "
            f"increment through {through}"
        )

    # Per-tick snapshot adjacency of the appended ticks, from the frozen slice.
    adjacency_at: Dict[TimeInstant, Dict[ObjectId, Set[ObjectId]]] = {}
    for contact in contacts:
        lo = max(contact.validity.start, reduction.end + 1)
        hi = min(contact.validity.end, through)
        for t in range(lo, hi + 1):
            adjacency = adjacency_at.setdefault(t, {})
            adjacency.setdefault(contact.first, set()).add(contact.second)
            adjacency.setdefault(contact.second, set()).add(contact.first)

    builder = DagPatchBuilder(reduction.num_nodes)
    cursor = ReductionCursor.resume(reduction, builder)
    for t in range(reduction.end + 1, through + 1):
        cursor.advance(t, adjacency_at.get(t, {}))

    # Merge the captured recent vertices (with their patched ends) and the
    # fresh ones into the id-ordered views the window sweep expects.
    extensions = builder.extensions
    views: List[NodeView] = [
        (node_id, start, extensions.get(node_id, end))
        for node_id, start, end in frontier.recent_nodes
    ]
    views.extend(builder.new_node_views)
    views.sort()
    successors: Dict[int, List[int]] = {
        node_id: list(targets) for node_id, targets in frontier.recent_edges
    }
    for source_id, target_id in builder.new_edges:
        successors.setdefault(source_id, []).append(target_id)

    new_long_edges: List[Tuple[int, Tuple[Tuple[int, int], ...]]] = []
    cursors: List[Tuple[int, TimeInstant]] = []
    for resolution, ta in frontier.window_cursors:
        edges: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        while ta + resolution <= through:
            for edge in window_edges(
                views, lambda node_id: successors.get(node_id, []), ta, ta + resolution
            ):
                # Within one patch the layer's deduplication is not in the
                # loop yet; drop repeats here so the patch stays minimal
                # (application deduplicates against the live layer anyway).
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
            ta += resolution
        if edges:
            new_long_edges.append((resolution, tuple(edges)))
        cursors.append((resolution, ta))

    return builder.build(
        base_end=reduction.end,
        new_end=max(through, reduction.end),
        new_long_edges=tuple(new_long_edges),
        window_cursors=tuple(cursors),
    )


class ReachGraphIndex:
    """The ReachGraph multi-resolution index over a trajectory dataset."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        config: ReachGraphConfig | None = None,
        contact_config: ContactConfig | None = None,
        storage_config: StorageConfig | None = None,
        contact_network: Optional[ContactNetwork] = None,
        storage: Optional[StorageSystem] = None,
        name: str = "reachgraph",
        defer_placement: bool = False,
    ) -> None:
        self.dataset = dataset
        self.config = config or ReachGraphConfig()
        self.contact_config = contact_config or ContactConfig()
        self.name = name
        self._provided_network = contact_network
        if defer_placement and storage is not None:
            raise IndexConstructionError(
                "defer_placement builds in memory; do not also inject a storage"
            )
        # ``storage`` injects the owner's device (a streaming overlay persists
        # its graph alongside the snapshot store); without it the index keeps
        # the historical behaviour of allocating its own system.
        # ``defer_placement`` builds the in-memory structures only — a
        # background thread can run the expensive half, after which
        # :meth:`place` writes the partitions on the adopting thread.
        self._storage: Optional[StorageSystem] = None
        self._partitions_file: Optional[BlockFile] = None
        self._object_index: Optional[ExternalHashTable] = None
        if not defer_placement:
            self._attach_files(
                storage
                if storage is not None
                else StorageSystem(storage_config, name=name, attach=False),
                create=True,
            )
        self._built = False

        # Populated by build().
        self.network: Optional[ContactNetwork] = None
        self.dag: Optional[ContactDag] = None
        self.hypergraph: Optional[HyperGraph] = None
        self.partitioning: Optional[Partitioning] = None
        self.build_report: Optional[ReachGraphBuildReport] = None
        self._partition_of_vertex: Dict[int, int] = {}
        # GRAIL-style interval labels (the query fast path); built alongside
        # the graph when the config enables them and patched per increment.
        self._labels: Optional[ReachLabelIndex] = None

        # Incremental-maintenance state and the write-amplification ledger.
        self._window_cursors: Dict[int, TimeInstant] = {}
        self._records_written = 0
        self._increments = 0
        # Frontier-repack state: partitions produced by a repack never fold
        # again, which bounds repack write amplification to one extra rewrite
        # per vertex record over the index's lifetime.
        self._packed_partitions: Set[int] = set()
        self._repacks = 0

    def _attach_files(self, storage: StorageSystem, create: bool) -> None:
        self._storage = storage
        if create:
            self._partitions_file = storage.new_blockfile(f"{self.name}-partitions")
            self._object_index = storage.new_hashtable(f"{self.name}-object-index")
        else:
            self._partitions_file = storage.blockfile(f"{self.name}-partitions")
            self._object_index = storage.hashtable(f"{self.name}-object-index")

    @property
    def storage(self) -> StorageSystem:
        """The storage system holding the placed index."""
        if self._storage is None:
            raise IndexNotBuiltError(
                "index was built with defer_placement=True; call place() first"
            )
        return self._storage

    @property
    def is_placed(self) -> bool:
        """True once the index lives on a storage system."""
        return self._storage is not None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "ReachGraphIndex":
        """Construct the index end to end and place it on the simulated disk."""
        if self._built:
            raise IndexConstructionError("ReachGraph index already built")
        started = time.perf_counter()

        network = self._provided_network or build_contact_network(
            self.dataset, self.contact_config.distance_threshold
        )
        self.network = network
        dag, reduction_report = reduce_contact_network(network)
        self.dag = dag
        hypergraph, augmentation_report = augment_dag(
            dag, self.config.sorted_resolutions
        )
        self.hypergraph = hypergraph
        partitioning = partition_hypergraph(hypergraph, self.config.partition_depth)
        self.partitioning = partitioning
        # Shared deliberately, not copied: extend_partitioning assigns fresh
        # vertices into this same dict, so partition_of() lookups can never
        # drift from the partition extents an increment writes.
        self._partition_of_vertex = partitioning.partition_of
        self._window_cursors = {
            resolution: next_window_start(
                dag.horizon.start, dag.horizon.end, resolution
            )
            for resolution in self.config.sorted_resolutions
        }
        if self.config.interval_labels:
            self._labels = ReachLabelIndex.build(
                dag, dirty_ratio=self.config.label_dirty_ratio
            )

        if self._storage is not None:
            self._write_partitions()
            self._build_object_index()

        self.build_report = ReachGraphBuildReport(
            reduction=reduction_report,
            augmentation=augmentation_report,
            num_partitions=partitioning.num_partitions,
            num_blocks=(
                self._partitions_file.num_blocks
                if self._partitions_file is not None
                else 0
            ),
            build_seconds=time.perf_counter() - started,
            write_ios=self._storage.stats.writes if self._storage is not None else 0,
        )
        self._built = True
        return self

    def place(self, storage: StorageSystem, name: str | None = None) -> None:
        """Write a deferred-placement build onto ``storage``.

        The counterpart of ``defer_placement=True``: the in-memory build may
        run in a background thread, and the adopting (storage-owning) thread
        calls this to create the partition file and object index and write
        them out.  ``name`` optionally renames the on-device files — the
        streaming overlay versions them (``graph-v1``, ``graph-v2``, …) so
        successive rebuild-mode graphs on one device never collide.
        """
        self._require_built()
        if self._storage is not None:
            raise IndexConstructionError("index is already placed on a storage system")
        if name is not None:
            self.name = name
        self._attach_files(storage, create=True)
        self._write_partitions()
        self._build_object_index()

    def _write_partitions(self) -> None:
        """Write every partition as one contiguous extent, in generation order."""
        assert self.partitioning is not None and self.hypergraph is not None
        assert self._partitions_file is not None
        dag = self.hypergraph.dag
        for partition_id, member_ids in enumerate(self.partitioning.members):
            records = [self._make_record(dag, node_id) for node_id in member_ids]
            self._partitions_file.append_extent(partition_id, records)
            self._records_written += len(records)

    def _make_record(self, dag: ContactDag, node_id: int) -> VertexRecord:
        assert self.hypergraph is not None
        node = dag.node(node_id)
        long_successors = tuple(
            (resolution, tuple(self.hypergraph.layer(resolution).successors(node_id)))
            for resolution in self.hypergraph.resolutions
            if self.hypergraph.layer(resolution).successors(node_id)
        )
        return VertexRecord(
            node_id=node_id,
            start=node.interval.start,
            end=node.interval.end,
            members=tuple(sorted(node.members)),
            successors=tuple(dag.successors(node_id)),
            predecessors=tuple(dag.predecessors(node_id)),
            long_successors=long_successors,
        )

    def _build_object_index(self) -> None:
        """Build the external hash table: object → (start, vertex) assignment history."""
        assert self.dag is not None
        assert self._object_index is not None
        entries: List[Tuple[ObjectId, AssignmentSegments]] = []
        for object_id in self.dataset.object_ids:
            segments = tuple(self.dag.assignment_segments(object_id))
            if not segments:
                raise IndexConstructionError(
                    f"object {object_id} received no component assignments"
                )
            entries.append((object_id, segments))
        self._object_index.build(entries)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def frontier(self) -> GraphFrontier:
        """Capture the resumable maintenance state (cheap, live thread only).

        The result is immutable and self-contained:
        :func:`compute_graph_patch` over it may run off-thread while this
        index keeps answering queries, as long as no other increment is
        applied in between (application validates the base and refuses a
        stale patch).
        """
        self._require_built()
        assert self.dag is not None
        dag = self.dag
        horizon = dag.horizon

        assignments: List[Tuple[ObjectId, int]] = []
        open_ids: List[int] = []
        open_seen: Set[int] = set()
        for object_id in self.dataset.object_ids:
            node_id = dag.node_of(object_id, horizon.end)
            assignments.append((object_id, node_id))
            if node_id not in open_seen:
                open_seen.add(node_id)
                open_ids.append(node_id)
        open_members = tuple(
            (node_id, tuple(sorted(dag.node(node_id).members)))
            for node_id in sorted(open_ids)
        )
        reduction = ReductionFrontier(
            start=horizon.start,
            end=horizon.end,
            num_nodes=dag.num_nodes,
            object_ids=tuple(self.dataset.object_ids),
            assignments=tuple(assignments),
            open_members=open_members,
        )

        # Vertices recent enough to matter to any unprocessed window: their
        # interval reaches the earliest per-resolution cursor.  Successors of
        # such vertices start strictly later, so the captured adjacency is
        # closed under the window sweep.
        floor: TimeInstant = (
            min(self._window_cursors.values())
            if self._window_cursors
            else horizon.end + 1
        )
        recent_nodes = tuple(
            (node.node_id, node.interval.start, node.interval.end)
            for node in dag.nodes
            if node.interval.end >= floor
        )
        recent_edges = tuple(
            (node_id, tuple(dag.successors(node_id)))
            for node_id, _, _ in recent_nodes
            if dag.successors(node_id)
        )
        return GraphFrontier(
            reduction=reduction,
            window_cursors=tuple(sorted(self._window_cursors.items())),
            recent_nodes=recent_nodes,
            recent_edges=recent_edges,
        )

    def apply_increment(
        self,
        patch: DagPatch,
        dataset: TrajectoryDataset,
        contact_network: Optional[ContactNetwork] = None,
    ) -> GraphIncrementReport:
        """Apply a :class:`DagPatch`, rewriting only what the patch dirtied.

        The in-place counterpart of a full rebuild: the DAG and hyper graph
        are patched, fresh vertices are partitioned and written as new
        extents, partitions holding a changed record (an extended interval, a
        new successor or long edge) are rewritten — superseding their old
        extents on the append-only device — and the object index buckets of
        reassigned objects are updated.  Everything runs on the caller's
        thread against live structures; streaming services call it from their
        atomic adoption step, where no concurrent reader can observe a
        half-applied state.

        ``dataset`` is the extended prefix the index now covers (its horizon
        must end at ``patch.new_end``); ``contact_network`` optionally
        replaces the stored network alongside.
        """
        self._require_built()
        assert self.dag is not None and self.hypergraph is not None
        assert self.partitioning is not None
        assert self._partitions_file is not None and self._object_index is not None
        dag = self.dag
        started = time.perf_counter()

        if dag.num_nodes != patch.base_nodes or dag.horizon.end != patch.base_end:
            raise IndexConstructionError(
                f"stale patch: built against {patch.base_nodes} vertices "
                f"through t={patch.base_end}, index has {dag.num_nodes} "
                f"through t={dag.horizon.end}"
            )
        if dataset.horizon.end != patch.new_end:
            raise IndexConstructionError(
                f"dataset horizon ends at {dataset.horizon.end}, "
                f"patch extends through {patch.new_end}"
            )

        dirty: Set[int] = set()

        # 1. Reduction operations: extensions, fresh vertices, DN_1 edges.
        for node_id, new_end in patch.extensions:
            dag.extend_node(node_id, new_end)
            dirty.add(node_id)
        for node_id, start, end, members in patch.new_nodes:
            node = dag.add_node(TimeInterval(start, end), frozenset(members))
            if node.node_id != node_id:
                raise IndexConstructionError(
                    f"patch vertex {node_id} materialized as {node.node_id}"
                )
        for source_id, target_id in patch.new_edges:
            dag.add_edge(source_id, target_id)
            if source_id < patch.base_nodes:
                dirty.add(source_id)
        dag.extend_horizon(patch.new_end)

        # 2. Augmentation: long edges of the newly completed windows.
        new_long_edges = 0
        for resolution, edges in patch.new_long_edges:
            layer = self.hypergraph.layer(resolution)
            for source_id, target_id in edges:
                layer.add_edge(source_id, target_id)
                new_long_edges += 1
                if source_id < patch.base_nodes:
                    dirty.add(source_id)
        self._window_cursors.update(dict(patch.window_cursors))

        # 2b. Patch the interval labels over the grown DAG (long edges are
        #     shortcuts over DN_1 paths, so labels only track DN_1).
        if self._labels is not None:
            self._labels.apply_patch(patch, dag)

        # 3. Fresh vertices join fresh partitions (old extents are immutable
        #    in shape); write each new partition as one contiguous extent.
        new_node_ids = [node_id for node_id, _, _, _ in patch.new_nodes]
        new_partition_ids = extend_partitioning(
            self.partitioning, dag, new_node_ids, self.config.partition_depth
        )
        records_written = 0
        for partition_id in new_partition_ids:
            member_ids = self.partitioning.members[partition_id]
            records = [self._make_record(dag, node_id) for node_id in member_ids]
            self._partitions_file.append_extent(partition_id, records)
            records_written += len(records)

        # 4. Rewrite the partitions holding a record the patch changed.
        dirty_partitions = sorted(
            {self._partition_of_vertex[node_id] for node_id in dirty}
        )
        for partition_id in dirty_partitions:
            records = [
                self._make_record(dag, node_id)
                for node_id in self.partitioning.members[partition_id]
            ]
            self._partitions_file.replace_extent(partition_id, records)
            records_written += len(records)

        # 5. Patch the object index: objects assigned to fresh vertices gain
        #    assignment segments (extensions never change a segment start).
        appended: Dict[ObjectId, List[Tuple[TimeInstant, int]]] = {}
        for node_id, start, _, members in patch.new_nodes:
            for member in members:
                appended.setdefault(member, []).append((start, node_id))
        for object_id, segments in appended.items():
            existing = self._object_index.get(object_id)
            if existing is None:
                raise IndexConstructionError(
                    f"object {object_id} joined the stream mid-prefix; the "
                    "object index has no assignment history for it"
                )
            self._object_index.update(
                object_id, tuple(existing) + tuple(segments)
            )

        self.dataset = dataset
        if contact_network is not None:
            self.network = contact_network
        self._records_written += records_written
        self._increments += 1
        return GraphIncrementReport(
            new_nodes=len(patch.new_nodes),
            extended_nodes=len(patch.extensions),
            new_edges=len(patch.new_edges),
            new_long_edges=new_long_edges,
            new_partitions=len(new_partition_ids),
            rewritten_partitions=len(dirty_partitions),
            records_written=records_written,
            apply_seconds=time.perf_counter() - started,
        )

    def repack_frontier(self, min_partitions: int = 2) -> int:
        """Fold runs of cold fragmented partitions into single depth-``dp`` extents.

        Incremental merges fragment the partition file: each increment's
        fresh vertices land in small new partitions, so a query traversing
        an old stretch of the stream pays one random IO per fragment.  This
        pass finds maximal runs of ``min_partitions``-or-more consecutive
        (in write order) *cold* partitions — partitions no future increment
        can dirty: every member closed before the horizon end and before the
        earliest unprocessed augmentation window — and rewrites each run as
        one contiguous extent, exactly as a batch build would have placed
        those vertices.

        Vertex ids are untouched (the object index never changes); the old
        partition ids become tombstones and their extents on-device garbage
        for :meth:`~repro.storage.StorageSystem.reclaim`.  Partitions a
        previous repack produced never fold again.  The ``repack-pre-adopt``
        fault point sits between the packed extent's write and the
        retirement of the fragments; crash-wise the durable catalog flips
        from fragments to packed extent atomically at the owner's next
        flush.  Returns the vertex records rewritten.
        """
        self._require_built()
        if min_partitions < 2:
            raise IndexConstructionError(
                "repack needs min_partitions >= 2: folding a single "
                "partition is pure write amplification"
            )
        if self._storage is None:
            return 0
        assert self.dag is not None and self.partitioning is not None
        assert self._partitions_file is not None
        dag = self.dag
        # A partition is cold when no member can be extended (closed before
        # the horizon end) and none can still gain a long edge (closed
        # before the earliest unprocessed window start).
        ceiling = min(
            min(self._window_cursors.values(), default=dag.horizon.end + 1),
            dag.horizon.end,
        )

        runs: List[List[int]] = []
        current: List[int] = []
        for key in self._partitions_file.extent_keys():
            partition_id = int(key)
            member_ids = self.partitioning.members[partition_id]
            if (
                member_ids
                and partition_id not in self._packed_partitions
                and all(
                    dag.node(node_id).interval.end < ceiling
                    for node_id in member_ids
                )
            ):
                current.append(partition_id)
            else:
                if len(current) >= min_partitions:
                    runs.append(current)
                current = []
        if len(current) >= min_partitions:
            runs.append(current)

        records_written = 0
        for group in runs:
            merged = [
                node_id
                for partition_id in group
                for node_id in self.partitioning.members[partition_id]
            ]
            packed_id = len(self.partitioning.members)
            records = [self._make_record(dag, node_id) for node_id in merged]
            self._partitions_file.append_extent(packed_id, records)
            # The packed extent is written but the fragments are still the
            # cataloged truth: a crash here reopens through the previous
            # manifest, which only names the fragments (the packed extent
            # is unreferenced garbage).
            crash_point("repack-pre-adopt")
            for partition_id in group:
                self._partitions_file.drop_extent(partition_id)
                self.partitioning.members[partition_id] = []
            for node_id in merged:
                self.partitioning.partition_of[node_id] = packed_id
            self.partitioning.members.append(merged)
            self._packed_partitions.add(packed_id)
            self._records_written += len(records)
            records_written += len(records)
            self._repacks += 1
        return records_written

    # ------------------------------------------------------------------
    # persistence (crash-consistent reopen)
    # ------------------------------------------------------------------
    def catalog(self) -> Dict[str, object]:
        """A picklable description sufficient to :meth:`restore` this index.

        Only what the partition extents cannot express is cataloged: the
        configuration, the per-resolution window cursors (the augmentation
        resumption points), the interval labels (ranks depend on the DFS
        history, so they ride the catalog rather than being recomputed), and
        the write-amplification ledger.  The graph itself is rebuilt from
        the vertex records on the device.
        """
        self._require_built()
        return {
            "name": self.name,
            "resolutions": list(self.config.sorted_resolutions),
            "partition_depth": self.config.partition_depth,
            "window_cursors": sorted(self._window_cursors.items()),
            "records_written": self._records_written,
            "increments": self._increments,
            "packed_partitions": sorted(self._packed_partitions),
            "repacks": self._repacks,
            "labels": self._labels.catalog() if self._labels is not None else None,
        }

    @classmethod
    def restore(
        cls,
        storage: StorageSystem,
        catalog: Dict[str, object],
        dataset: TrajectoryDataset,
        contact_network: ContactNetwork,
    ) -> "ReachGraphIndex":
        """Reattach an index to its partition extents on a reopened device.

        ``storage`` must already hold the cataloged block file and hash table
        (the storage system's durable catalog restored them); ``dataset`` and
        ``contact_network`` are the prefix the index covered when the catalog
        was written.  The DAG, hyper graph, and partitioning are rebuilt from
        the vertex records — every structural fact lives in them — and the
        object-index buckets are *reconciled* against the rebuilt DAG: bucket
        rewrites go through the buffer pool in place, so a crash can leave a
        bucket durably ahead of the cataloged graph (phantom trailing
        assignment segments); reconciliation restores the exact pairing.
        """
        resolutions = tuple(
            int(resolution) for resolution in catalog["resolutions"]  # type: ignore[union-attr]
        )
        config = ReachGraphConfig(
            resolutions=resolutions,
            partition_depth=int(catalog["partition_depth"]),  # type: ignore[arg-type]
            # A service that ran without labels catalogs None; keep it off.
            interval_labels=catalog.get("labels") is not None,
        )
        index = cls(
            dataset,
            config=config,
            contact_network=contact_network,
            name=str(catalog["name"]),
            defer_placement=True,
        )
        index._attach_files(storage, create=False)
        index._restore_structures(catalog)
        return index

    def _restore_structures(self, catalog: Dict[str, object]) -> None:
        assert self._partitions_file is not None and self._object_index is not None

        # 1. Read every partition extent back.  The extent key is the
        #    partition id; record order inside an extent is the member write
        #    order, so the extents are the authoritative partitioning too.
        partition_members: Dict[int, List[int]] = {}
        records: List[VertexRecord] = []
        for key in self._partitions_file.extent_keys():
            partition_id = int(key)
            extent_records: List[VertexRecord] = list(
                self._partitions_file.read_extent(partition_id)
            )
            partition_members[partition_id] = [
                record.node_id for record in extent_records
            ]
            records.extend(extent_records)
        records.sort(key=lambda record: record.node_id)

        # 2. Rebuild the DAG in id order — reproducing vertex ids and each
        #    object's assignment-segment order — then edges and long-edge
        #    layers (predecessors are re-derived by add_edge).
        dag = ContactDag(self.dataset.horizon, len(self.dataset.object_ids))
        for record in records:
            node = dag.add_node(
                TimeInterval(record.start, record.end), frozenset(record.members)
            )
            if node.node_id != record.node_id:
                raise IndexConstructionError(
                    f"partition extents are missing vertex {node.node_id}"
                )
        for record in records:
            for successor_id in record.successors:
                dag.add_edge(record.node_id, successor_id)
        layers: List[LongEdgeLayer] = []
        for resolution in self.config.sorted_resolutions:
            layer = LongEdgeLayer(resolution)
            for record in records:
                for target_id in record.long_successors_at(resolution):
                    layer.add_edge(record.node_id, target_id)
            layers.append(layer)
        self.dag = dag
        self.hypergraph = HyperGraph(dag, layers)
        self.network = self._provided_network

        # 3. Partitioning from the extent directory.  Ids are append-ordered
        #    but may be sparse — a frontier repack retires fragment ids,
        #    leaving tombstones — so missing ids restore as empty lists.
        max_id = max(partition_members, default=-1)
        members: List[List[int]] = [
            partition_members.get(partition_id, [])
            for partition_id in range(max_id + 1)
        ]
        partitioning = Partitioning(
            partition_of={
                node_id: partition_id
                for partition_id, member_ids in enumerate(members)
                for node_id in member_ids
            },
            members=members,
            depth=self.config.partition_depth,
        )
        self.partitioning = partitioning
        # Shared, not copied — the same invariant build() establishes.
        self._partition_of_vertex = partitioning.partition_of

        # 4. Maintenance state and the write-amplification ledger.
        self._window_cursors = {
            int(resolution): int(cursor)
            for resolution, cursor in catalog["window_cursors"]  # type: ignore[union-attr]
        }
        self._records_written = int(catalog["records_written"])  # type: ignore[arg-type]
        self._increments = int(catalog["increments"])  # type: ignore[arg-type]
        self._packed_partitions = {
            int(partition_id)
            for partition_id in catalog.get("packed_partitions", ())  # type: ignore[union-attr]
        }
        self._repacks = int(catalog.get("repacks", 0))  # type: ignore[arg-type]
        labels_catalog = catalog.get("labels")
        if labels_catalog is not None:
            labels = ReachLabelIndex.restore(labels_catalog)  # type: ignore[arg-type]
            if labels.num_labels != dag.num_nodes:
                raise IndexConstructionError(
                    f"label catalog covers {labels.num_labels} vertices, "
                    f"restored DAG has {dag.num_nodes}"
                )
            self._labels = labels
        self._built = True

        # 5. Reconcile the object-index buckets against the rebuilt DAG.
        #    Doubles as the structural verification of the restored index: a
        #    bucket that disagrees with the partition extents is rewritten
        #    from graph truth.
        for object_id in self.dataset.object_ids:
            truth = tuple(dag.assignment_segments(object_id))
            if not truth:
                raise IndexConstructionError(
                    f"object {object_id} has no assignments in the restored graph"
                )
            stored = self._object_index.get(object_id)
            if stored is None:
                raise IndexConstructionError(
                    f"object {object_id} is missing from the restored object index"
                )
            if tuple(stored) != truth:
                self._object_index.update(object_id, truth)

    # ------------------------------------------------------------------
    # state checks
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("ReachGraphIndex.build() has not been called")

    # ------------------------------------------------------------------
    # query-time access (all charged IO)
    # ------------------------------------------------------------------
    def find_vertex_id(self, object_id: ObjectId, t: TimeInstant) -> int:
        """Vertex containing ``object_id`` at time ``t`` (one hash-bucket read)."""
        self._require_built()
        assert self._object_index is not None
        segments: Optional[AssignmentSegments] = self._object_index.get(object_id)
        if segments is None:
            raise UnknownObjectError(object_id)
        # Binary search the (start_time, node_id) assignment history.
        lo, hi = 0, len(segments) - 1
        answer: Optional[int] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if segments[mid][0] <= t:
                answer = segments[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        if answer is None:
            raise IndexConstructionError(
                f"object {object_id} has no component at time {t}"
            )
        return answer

    def partition_of(self, node_id: int) -> int:
        """Partition holding vertex ``node_id`` (in-memory directory lookup)."""
        self._require_built()
        return self._partition_of_vertex[node_id]

    def read_partition(self, partition_id: int) -> List[VertexRecord]:
        """Read every vertex record of one partition from disk (charged IO)."""
        self._require_built()
        assert self._partitions_file is not None
        return list(self._partitions_file.read_extent(partition_id))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of ``HN`` vertices."""
        self._require_built()
        assert self.dag is not None
        return self.dag.num_nodes

    @property
    def num_partitions(self) -> int:
        """Number of disk partitions."""
        self._require_built()
        assert self.partitioning is not None
        return self.partitioning.num_partitions

    @property
    def num_blocks(self) -> int:
        """Number of disk blocks occupied by the live partition extents."""
        self._require_built()
        assert self._partitions_file is not None
        return self._partitions_file.num_blocks

    @property
    def records_written(self) -> int:
        """Vertex records ever written (build + increment rewrites): the ledger."""
        return self._records_written

    @property
    def superseded_blocks(self) -> int:
        """Blocks of partition extents superseded by increment rewrites."""
        if self._partitions_file is None:
            return 0
        return self._partitions_file.superseded_blocks

    @property
    def num_increments(self) -> int:
        """Increments applied since the build."""
        return self._increments

    @property
    def num_repacks(self) -> int:
        """Frontier repack folds performed since the build."""
        return self._repacks

    @property
    def labels(self) -> Optional[ReachLabelIndex]:
        """The interval-label fast path, or ``None`` when disabled."""
        return self._labels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "built" if self._built else "not built"
        return (
            f"ReachGraphIndex(dataset={self.dataset.name!r}, "
            f"resolutions={self.config.sorted_resolutions}, "
            f"dp={self.config.partition_depth}, {status})"
        )
