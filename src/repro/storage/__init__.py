"""Disk-resident storage substrate with pluggable block-device backends.

This subpackage stands in for the physical storage of the paper's testbed
(Table 3): a block device with a buffer pool, record-packed block files, and
external hash tables, all instrumented with random/sequential IO accounting.
The block device itself is pluggable (:mod:`repro.storage.backends`): the
default ``sim`` backend keeps blocks in memory exactly as the original
reproduction did, while the ``file`` and ``mmap`` backends place them in real
files with durable close/reopen semantics.

Typical usage::

    from repro.storage import StorageSystem

    storage = StorageSystem()
    blockfile = storage.new_blockfile("cells")
    blockfile.append_extent("cell-0", records)
    ...
    before = storage.snapshot()
    blockfile.read_extent("cell-0")
    charged = storage.charge_since(before)

Persistent usage adds a durability cycle::

    config = StorageConfig(backend="file", storage_dir="/data/run1")
    storage = StorageSystem(config, name="grid")
    ...
    storage.close()                              # fsync + durable catalog
    reopened = StorageSystem(config, name="grid")  # same files, same extents
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import StorageConfig
from ..core.errors import StorageError
from .backends import (
    BACKEND_FILE_SUFFIX,
    STORAGE_BACKENDS,
    FileBackend,
    MmapBackend,
    SimulatedBackend,
    StorageBackend,
    make_backend,
)
from .blockfile import BlockFile, Extent
from .buffer import BufferPool
from .disk import SimulatedDisk
from .hashtable import ExternalHashTable
from .stats import IOSnapshot, IOStats

__all__ = [
    "STORAGE_BACKENDS",
    "StorageBackend",
    "SimulatedBackend",
    "SimulatedDisk",
    "FileBackend",
    "MmapBackend",
    "make_backend",
    "BufferPool",
    "BlockFile",
    "Extent",
    "ExternalHashTable",
    "IOStats",
    "IOSnapshot",
    "StorageSystem",
]

#: Metadata key under which the file/table catalog is persisted.
_CATALOG_KEY = "storage-system-catalog"


class StorageSystem:
    """Convenience bundle of one block device + one buffer pool + named files.

    Every index owns a :class:`StorageSystem`; the benchmark harness reads the
    IO counters from here after running a query.  ``name`` becomes the stem of
    the backing file when the configured backend is persistent — two systems
    sharing a ``storage_dir`` must use distinct names.  Creating a system
    whose backing file already exists *attaches* to it: blocks, block-file
    extents, and hash-table directories are restored from the durable catalog
    written by :meth:`flush`/:meth:`close`.  Write-path owners (index builds,
    stream ingestors) pass ``attach=False`` instead, which removes any
    leftover files first — a new index starts from an empty device even when
    a previous run wrote to the same directory and name.
    """

    def __init__(
        self,
        config: StorageConfig | None = None,
        name: str = "storage",
        attach: bool = True,
    ) -> None:
        self.config = config or StorageConfig()
        self.name = name
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self.disk = make_backend(self.config, path=self._device_path(attach))
        self.buffer_pool = BufferPool(self.disk, capacity=self.config.buffer_blocks)
        self._files: Dict[str, BlockFile] = {}
        self._tables: Dict[str, ExternalHashTable] = {}
        self._reclaims = 0
        self._reclaimed_blocks = 0
        catalog = self.disk.get_metadata(_CATALOG_KEY)
        if catalog is not None:
            self._restore_catalog(catalog)

    def _device_path(self, attach: bool) -> Optional[str]:
        if self.config.backend == SimulatedBackend.name:
            return None
        directory = self.config.storage_dir
        if directory is None:
            # Anonymous persistent storage: a private scratch directory that
            # is removed when this system is garbage collected (there is no
            # stable path to reopen, so keeping the files would only leak).
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-storage-")
            directory = self._tempdir.name
        else:
            os.makedirs(directory, exist_ok=True)
        suffix = BACKEND_FILE_SUFFIX[self.config.backend]
        path = os.path.join(directory, f"{self.name}{suffix}")
        if not attach:
            # Manifest first: a crash between the two removals must never
            # leave a manifest pointing into a device file that is gone (the
            # reverse order would make the next attach half-trust stale
            # directory offsets against an empty log).
            for stale in (path + ".manifest", path):
                if os.path.exists(stale):
                    os.remove(stale)
        return path

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def new_blockfile(self, name: str, records_per_block: int | None = None) -> BlockFile:
        """Create (and register) a new block file on this storage system."""
        if name in self._files:
            raise StorageError(f"block file {name!r} already exists in {self.name!r}")
        blockfile = BlockFile(
            self.disk,
            self.buffer_pool,
            records_per_block=records_per_block or self.config.block_size,
            name=name,
        )
        self._files[name] = blockfile
        return blockfile

    def new_hashtable(self, name: str) -> ExternalHashTable:
        """Create (and register) a new external hash table."""
        if name in self._tables:
            raise StorageError(f"hash table {name!r} already exists in {self.name!r}")
        table = ExternalHashTable(self.disk, self.buffer_pool, name=name)
        self._tables[name] = table
        return table

    def blockfile(self, name: str) -> BlockFile:
        """Return a previously created block file by name."""
        return self._files[name]

    def hashtable(self, name: str) -> ExternalHashTable:
        """Return a previously created hash table by name."""
        return self._tables[name]

    def has_blockfile(self, name: str) -> bool:
        """True when a block file named ``name`` is registered."""
        return name in self._files

    def has_hashtable(self, name: str) -> bool:
        """True when a hash table named ``name`` is registered."""
        return name in self._tables

    def blockfile_names(self) -> List[str]:
        """Names of every registered block file, in registration order."""
        return list(self._files)

    def drop_blockfile(self, name: str) -> int:
        """Unregister block file ``name``: its blocks become garbage.

        The file leaves the catalog (and therefore the durable manifest at
        the next flush); every block it occupied — live extents and its
        superseded ledger alike — turns into reclaimable garbage.  Returns
        the number of blocks that were still live in the file.
        """
        blockfile = self._files.pop(name, None)
        if blockfile is None:
            raise StorageError(f"no block file {name!r} in {self.name!r}")
        return blockfile.num_blocks

    def drop_hashtable(self, name: str) -> int:
        """Unregister hash table ``name``: its bucket blocks become garbage."""
        table = self._tables.pop(name, None)
        if table is None:
            raise StorageError(f"no hash table {name!r} in {self.name!r}")
        return table.num_buckets

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def persistent(self) -> bool:
        """True when blocks survive :meth:`close` and can be reopened."""
        return self.disk.persistent

    @property
    def path(self) -> Optional[str]:
        """Path of the backing device file (``None`` for the sim backend)."""
        return self.disk.path

    def put_metadata(self, key: str, value: Any) -> None:
        """Stash a picklable value on the device (durable after :meth:`flush`)."""
        self.disk.put_metadata(key, value)

    def get_metadata(self, key: str, default: Any = None) -> Any:
        """Return a value stashed with :meth:`put_metadata`, or ``default``."""
        return self.disk.get_metadata(key, default)

    def flush(self) -> None:
        """Write back dirty buffers, persist the catalog, fsync the device.

        A no-op beyond the buffer write-back for the sim backend.  After a
        flush, a crash loses nothing written so far; after :meth:`close`, the
        system can be reopened by constructing a new :class:`StorageSystem`
        with the same config and name.
        """
        self.buffer_pool.flush()
        self.disk.put_metadata(_CATALOG_KEY, self._build_catalog())
        self.disk.flush()

    # ------------------------------------------------------------------
    # space reclamation
    # ------------------------------------------------------------------
    @property
    def live_blocks(self) -> int:
        """Blocks referenced by a registered file extent or table bucket."""
        return sum(f.num_blocks for f in self._files.values()) + sum(
            t.num_buckets for t in self._tables.values()
        )

    @property
    def garbage_blocks(self) -> int:
        """Allocated blocks no live structure references (reclaimable)."""
        return self.disk.num_blocks - self.live_blocks

    @property
    def garbage_ratio(self) -> float:
        """Fraction of the device that is garbage (0.0 on an empty device)."""
        total = self.disk.num_blocks
        if total == 0:
            return 0.0
        return self.garbage_blocks / total

    @property
    def reclaims(self) -> int:
        """Completed :meth:`reclaim` passes that actually freed blocks."""
        return self._reclaims

    @property
    def reclaimed_blocks(self) -> int:
        """Total blocks freed by :meth:`reclaim` over this system's life."""
        return self._reclaimed_blocks

    def reclaim(self) -> int:
        """Copy live blocks forward, dropping every garbage block.  Durable.

        The device-level GC pass: collects the live block set from every
        registered file and table, builds an order-preserving dense remap,
        stages the remapped catalog, and hands the copy-forward to the
        backend — whose manifest write is the commit point (``gc-post-copy``
        / ``gc-pre-commit`` fault points sit around it), so a ``kill -9``
        anywhere reattaches to either the old image or the reclaimed one.
        Afterwards the device holds exactly the live blocks, every
        superseded ledger is zero, and the buffer pool has been invalidated
        (frames were keyed by pre-reclaim ids).  Returns the number of
        blocks freed (0 when the device had no garbage).
        """
        self.buffer_pool.flush()
        live: List[int] = []
        for blockfile in self._files.values():
            for key in blockfile.extent_keys():
                live.extend(blockfile.extent(key).block_ids)
        for table in self._tables.values():
            live.extend(table.bucket_blocks)
        live.sort()
        freed = self.disk.num_blocks - len(live)
        if freed <= 0:
            return 0
        remap = {old_id: new_id for new_id, old_id in enumerate(live)}
        for blockfile in self._files.values():
            blockfile.remap_blocks(remap)
        for table in self._tables.values():
            table.remap_blocks(remap)
        self.disk.put_metadata(_CATALOG_KEY, self._build_catalog())
        self.disk.reclaim(remap, len(live))
        self.buffer_pool.invalidate()
        self._reclaims += 1
        self._reclaimed_blocks += freed
        return freed

    def close(self) -> None:
        """Flush everything and release the device.  Idempotent."""
        if not self.disk.closed:
            self.flush()
            self.disk.close()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def release(self) -> None:
        """Release the device *without* flushing; backing files are kept.

        For read-only consumers (reopened snapshot services, parallel query
        workers): they changed nothing worth persisting, and skipping the
        final manifest rewrite means concurrent readers of the same storage
        directory — worker processes reopening the same snapshot — never
        race each other on the manifest sidecar.  Idempotent.
        """
        if not self.disk.closed:
            self.disk.discard()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def destroy(self) -> None:
        """Release the device and delete its backing files.  Idempotent.

        For storage systems nothing will ever reopen — a superseded
        rebuild-mode overlay, a scratch build that failed: no final manifest
        is written (the data is being abandoned) and the device files are
        removed so a long-lived owner does not grow its storage directory
        with unreachable state.
        """
        path = self.disk.path
        self.disk.discard()
        if path is not None:
            for stale in (path + ".manifest", path):
                if os.path.exists(stale):
                    os.remove(stale)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def _build_catalog(self) -> Dict[str, Any]:
        files: List[Tuple[str, int, List[Tuple[Any, int, int, int]]]] = []
        for name, blockfile in self._files.items():
            extents = [
                (extent.key, extent.first_block, extent.num_blocks, extent.num_records)
                for extent in (blockfile.extent(key) for key in blockfile.extent_keys())
            ]
            files.append((name, blockfile.records_per_block, extents))
        tables = [
            (name, list(table.bucket_blocks)) for name, table in self._tables.items()
        ]
        return {"files": files, "tables": tables}

    def _restore_catalog(self, catalog: Dict[str, Any]) -> None:
        for name, records_per_block, extents in catalog["files"]:
            blockfile = BlockFile(
                self.disk,
                self.buffer_pool,
                records_per_block=records_per_block,
                name=name,
            )
            blockfile.adopt_extents(
                [
                    Extent(key=key, first_block=first, num_blocks=blocks, num_records=records)
                    for key, first, blocks, records in extents
                ]
            )
            self._files[name] = blockfile
        for name, bucket_blocks in catalog["tables"]:
            table = ExternalHashTable(self.disk, self.buffer_pool, name=name)
            table.adopt_buckets(bucket_blocks)
            self._tables[name] = table

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IOStats:
        """The shared IO counters."""
        return self.disk.stats

    def snapshot(self) -> IOSnapshot:
        """Capture the current IO counters."""
        return self.disk.stats.snapshot()

    def charge_since(self, snapshot: IOSnapshot) -> IOSnapshot:
        """IO performed since ``snapshot``."""
        return self.disk.stats.delta_since(snapshot)

    def normalized_io_since(self, snapshot: IOSnapshot) -> float:
        """Normalized IO count since ``snapshot``."""
        return self.charge_since(snapshot).normalized(self.config.sequential_cost)

    def reset_for_query(self) -> None:
        """Reset per-query state: IO locality and the buffer pool contents.

        The paper's per-query numbers assume a cold buffer (cells retrieved
        during a temporal interval are discarded at its end; partitions are
        buffered only within one query), so the harness calls this before each
        measured query.
        """
        self.buffer_pool.clear()
        self.disk.stats.reset_locality()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageSystem(name={self.name!r}, backend={self.config.backend!r}, "
            f"blocks={self.disk.num_blocks}, files={list(self._files)}, "
            f"tables={list(self._tables)})"
        )
