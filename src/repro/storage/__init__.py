"""Simulated disk-resident storage substrate.

This subpackage stands in for the physical storage of the paper's testbed
(Table 3): a block device with a buffer pool, record-packed block files, and
external hash tables, all instrumented with random/sequential IO accounting.

Typical usage::

    from repro.storage import StorageSystem

    storage = StorageSystem()
    blockfile = storage.new_blockfile("cells")
    blockfile.append_extent("cell-0", records)
    ...
    before = storage.snapshot()
    blockfile.read_extent("cell-0")
    charged = storage.charge_since(before)
"""

from __future__ import annotations

from typing import Dict

from ..core.config import StorageConfig
from .blockfile import BlockFile, Extent
from .buffer import BufferPool
from .disk import SimulatedDisk
from .hashtable import ExternalHashTable
from .stats import IOSnapshot, IOStats

__all__ = [
    "SimulatedDisk",
    "BufferPool",
    "BlockFile",
    "Extent",
    "ExternalHashTable",
    "IOStats",
    "IOSnapshot",
    "StorageSystem",
]


class StorageSystem:
    """Convenience bundle of one disk + one buffer pool + named files.

    Every index owns a :class:`StorageSystem`; the benchmark harness reads the
    IO counters from here after running a query.
    """

    def __init__(self, config: StorageConfig | None = None) -> None:
        self.config = config or StorageConfig()
        self.disk = SimulatedDisk(sequential_cost=self.config.sequential_cost)
        self.buffer_pool = BufferPool(self.disk, capacity=self.config.buffer_blocks)
        self._files: Dict[str, BlockFile] = {}
        self._tables: Dict[str, ExternalHashTable] = {}

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def new_blockfile(self, name: str, records_per_block: int | None = None) -> BlockFile:
        """Create (and register) a new block file on this storage system."""
        blockfile = BlockFile(
            self.disk,
            self.buffer_pool,
            records_per_block=records_per_block or self.config.block_size,
            name=name,
        )
        self._files[name] = blockfile
        return blockfile

    def new_hashtable(self, name: str) -> ExternalHashTable:
        """Create (and register) a new external hash table."""
        table = ExternalHashTable(self.disk, self.buffer_pool, name=name)
        self._tables[name] = table
        return table

    def blockfile(self, name: str) -> BlockFile:
        """Return a previously created block file by name."""
        return self._files[name]

    def hashtable(self, name: str) -> ExternalHashTable:
        """Return a previously created hash table by name."""
        return self._tables[name]

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IOStats:
        """The shared IO counters."""
        return self.disk.stats

    def snapshot(self) -> IOSnapshot:
        """Capture the current IO counters."""
        return self.disk.stats.snapshot()

    def charge_since(self, snapshot: IOSnapshot) -> IOSnapshot:
        """IO performed since ``snapshot``."""
        return self.disk.stats.delta_since(snapshot)

    def normalized_io_since(self, snapshot: IOSnapshot) -> float:
        """Normalized IO count since ``snapshot``."""
        return self.charge_since(snapshot).normalized(self.config.sequential_cost)

    def reset_for_query(self) -> None:
        """Reset per-query state: IO locality and the buffer pool contents.

        The paper's per-query numbers assume a cold buffer (cells retrieved
        during a temporal interval are discarded at its end; partitions are
        buffered only within one query), so the harness calls this before each
        measured query.
        """
        self.buffer_pool.clear()
        self.disk.stats.reset_locality()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageSystem(blocks={self.disk.num_blocks}, "
            f"files={list(self._files)}, tables={list(self._tables)})"
        )
