"""Record-oriented files on top of the simulated disk.

Indexes in this library store variable numbers of fixed-size *records* (for
example the position/time pairs of a grid cell, or the vertices of a
ReachGraph partition).  A :class:`BlockFile` packs records into blocks of a
configured capacity and remembers which block range each named *extent*
occupies, so that an index can later read back exactly the records of one
cell/partition while the IO accountant observes the real block access pattern
(consecutive block ids → sequential IOs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence

from ..core.errors import StorageError
from .backends.base import StorageBackend
from .buffer import BufferPool

__all__ = ["BlockFile", "Extent"]


@dataclass(frozen=True, slots=True)
class Extent:
    """A contiguous run of blocks holding the records of one named unit.

    Attributes
    ----------
    key:
        The index-defined identifier of the unit (cell id, partition id, ...).
    first_block / num_blocks:
        Location of the extent on the device.
    num_records:
        Total number of records stored in the extent.
    """

    key: Any
    first_block: int
    num_blocks: int
    num_records: int

    @property
    def block_ids(self) -> range:
        """The block ids covered by this extent, in order."""
        return range(self.first_block, self.first_block + self.num_blocks)


class BlockFile:
    """A sequence of extents packed onto a :class:`SimulatedDisk`.

    Writing is append-only and happens at index-construction time through
    :meth:`append_extent`.  Reading happens at query time through
    :meth:`read_extent` (whole unit) or :meth:`iter_extent_records`
    (record-at-a-time, stopping early without paying for unread blocks).
    """

    def __init__(
        self,
        disk: StorageBackend,
        buffer_pool: BufferPool,
        records_per_block: int = 64,
        name: str = "blockfile",
    ) -> None:
        if records_per_block <= 0:
            raise StorageError("records_per_block must be positive")
        self._disk = disk
        self._buffer = buffer_pool
        self._records_per_block = records_per_block
        self._extents: Dict[Any, Extent] = {}
        self._order: List[Any] = []
        self._superseded_blocks = 0
        self.name = name

    # ------------------------------------------------------------------
    # writing (construction time)
    # ------------------------------------------------------------------
    def append_extent(self, key: Any, records: Sequence[Any]) -> Extent:
        """Pack ``records`` into new blocks at the end of the file.

        The records of one extent are stored in the given order, which is how
        ReachGrid guarantees that the position/time pairs of a cell are read
        back ordered by timestamp.
        """
        if key in self._extents:
            raise StorageError(f"extent {key!r} already exists in {self.name}")
        records = list(records)
        num_blocks = max(1, -(-len(records) // self._records_per_block))
        first_block = self._disk.num_blocks
        for i in range(num_blocks):
            chunk = records[i * self._records_per_block : (i + 1) * self._records_per_block]
            self._disk.allocate(list(chunk))
        extent = Extent(
            key=key,
            first_block=first_block,
            num_blocks=num_blocks,
            num_records=len(records),
        )
        self._extents[key] = extent
        self._order.append(key)
        return extent

    def replace_extent(self, key: Any, records: Sequence[Any]) -> Extent:
        """Supersede extent ``key`` with a fresh copy holding ``records``.

        The device is append-only, so the new blocks land at the tail and the
        directory is repointed; the old blocks stay on the device as garbage
        (counted by :attr:`superseded_blocks` — the visible baseline for
        space-reclamation work).  The extent keeps its position in the
        write-order directory, so readers iterating :meth:`extent_keys`
        observe an unchanged key sequence.
        """
        old = self._extents.pop(key, None)
        if old is None:
            raise StorageError(f"cannot replace unknown extent {key!r} in {self.name}")
        position = self._order.index(key)
        del self._order[position]
        try:
            extent = self.append_extent(key, records)
        except BaseException:
            # Restore the directory so a failed rewrite never loses the
            # still-intact old extent.
            self._extents[key] = old
            self._order.insert(position, key)
            raise
        self._order.insert(position, self._order.pop())
        self._superseded_blocks += old.num_blocks
        return extent

    def drop_extent(self, key: Any) -> int:
        """Retire extent ``key``: its blocks become on-device garbage.

        The truncation/retirement hook (checkpointed WAL prefixes, folded
        snapshot runs): the extent leaves the directory — and therefore the
        durable catalog at the next flush — and its blocks join
        :attr:`superseded_blocks`, where a later
        :meth:`~repro.storage.StorageSystem.reclaim` can recycle them.
        Returns the number of blocks retired.
        """
        extent = self._extents.pop(key, None)
        if extent is None:
            raise StorageError(f"cannot drop unknown extent {key!r} in {self.name}")
        self._order.remove(key)
        self._superseded_blocks += extent.num_blocks
        return extent.num_blocks

    def remap_blocks(self, remap: Dict[int, int]) -> None:
        """Repoint every extent after a copy-forward device reclaim.

        ``remap`` is the old-id → new-id mapping the reclaim applied.  It is
        order-preserving and dense over the live blocks, so a live extent's
        contiguous block range stays contiguous — only ``first_block`` moves.
        The superseded ledger resets to zero: the garbage it counted no
        longer exists on the device.
        """
        for key, extent in list(self._extents.items()):
            if extent.num_blocks == 0:
                continue
            self._extents[key] = Extent(
                key=extent.key,
                first_block=remap[extent.first_block],
                num_blocks=extent.num_blocks,
                num_records=extent.num_records,
            )
        self._superseded_blocks = 0

    def adopt_extents(self, extents: Sequence[Extent]) -> None:
        """Re-register extents whose blocks already live on the device.

        The reopen path of a persistent :class:`~repro.storage.StorageSystem`
        uses this to reconstruct the extent directory from the durable
        catalog; the blocks themselves were written in a previous process.
        Only valid on a freshly created (empty) file.
        """
        if self._extents:
            raise StorageError(
                f"cannot adopt extents into non-empty block file {self.name!r}"
            )
        for extent in extents:
            if extent.first_block + extent.num_blocks > self._disk.num_blocks:
                raise StorageError(
                    f"extent {extent.key!r} of {self.name!r} lies beyond the "
                    f"device ({self._disk.num_blocks} blocks)"
                )
            self._extents[extent.key] = extent
            self._order.append(extent.key)

    # ------------------------------------------------------------------
    # reading (query time)
    # ------------------------------------------------------------------
    def extent(self, key: Any) -> Extent:
        """Return the extent descriptor for ``key``."""
        try:
            return self._extents[key]
        except KeyError as exc:
            raise StorageError(f"unknown extent {key!r} in {self.name}") from exc

    def has_extent(self, key: Any) -> bool:
        """True when an extent named ``key`` exists."""
        return key in self._extents

    def read_extent(self, key: Any) -> List[Any]:
        """Read every record of extent ``key`` (charges IO for all its blocks)."""
        extent = self.extent(key)
        records: List[Any] = []
        for block_id in extent.block_ids:
            records.extend(self._buffer.read(block_id))
        return records

    def iter_extent_records(self, key: Any) -> Iterator[Any]:
        """Yield the records of extent ``key`` block by block.

        Stopping the iteration early (for example as soon as a contact path is
        found) avoids reading the remaining blocks of the extent, which is the
        early-termination behaviour the paper relies on.
        """
        extent = self.extent(key)
        for block_id in extent.block_ids:
            for record in self._buffer.read(block_id):
                yield record

    def prefetch_extent(self, key: Any) -> None:
        """Bring every block of extent ``key`` into the buffer pool."""
        extent = self.extent(key)
        self._buffer.prefetch(extent.block_ids)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def records_per_block(self) -> int:
        """Configured record capacity of one block."""
        return self._records_per_block

    @property
    def num_extents(self) -> int:
        """Number of extents written so far."""
        return len(self._extents)

    @property
    def num_blocks(self) -> int:
        """Total number of blocks occupied by this file."""
        return sum(extent.num_blocks for extent in self._extents.values())

    @property
    def superseded_blocks(self) -> int:
        """Blocks orphaned by :meth:`replace_extent` (on-device garbage)."""
        return self._superseded_blocks

    def extent_keys(self) -> List[Any]:
        """The extent keys in the order they were written (disk order)."""
        return list(self._order)

    def __contains__(self, key: Any) -> bool:
        return key in self._extents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockFile(name={self.name!r}, extents={len(self._extents)}, "
            f"blocks={self.num_blocks})"
        )
