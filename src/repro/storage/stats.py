"""IO accounting for the simulated storage substrate.

The paper measures query-processing cost in *normalized* IOs: sequential block
accesses are converted to random-access equivalents assuming one random access
costs as much as 20 sequential accesses (Section 6, citing Corral et al.).
:class:`IOStats` implements exactly that accounting and is shared by the
simulated disk, the buffer pool, and every index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["IOStats", "IOSnapshot"]


@dataclass(frozen=True, slots=True)
class IOSnapshot:
    """An immutable snapshot of IO counters, used to charge deltas to queries."""

    random_reads: int
    sequential_reads: int
    writes: int
    buffer_hits: int

    def normalized(self, sequential_cost: int = 20) -> float:
        """Normalized IO count: ``random + sequential / sequential_cost``."""
        return self.random_reads + self.sequential_reads / sequential_cost

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            random_reads=self.random_reads - other.random_reads,
            sequential_reads=self.sequential_reads - other.sequential_reads,
            writes=self.writes - other.writes,
            buffer_hits=self.buffer_hits - other.buffer_hits,
        )


@dataclass(slots=True)
class IOStats:
    """Mutable IO counters with random/sequential classification.

    A read is classified *sequential* when the accessed block immediately
    follows the previously accessed block on the same device, and *random*
    otherwise.  Buffer-pool hits are counted separately and cost nothing.
    """

    sequential_cost: int = 20
    random_reads: int = 0
    sequential_reads: int = 0
    writes: int = 0
    buffer_hits: int = 0
    _last_block: Optional[int] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_read(self, block_id: int) -> None:
        """Record a physical read of ``block_id`` (miss in the buffer pool)."""
        if self._last_block is not None and block_id == self._last_block + 1:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self._last_block = block_id

    def record_write(self, block_id: int) -> None:
        """Record a physical write of ``block_id``."""
        self.writes += 1
        self._last_block = block_id

    def record_buffer_hit(self, block_id: int) -> None:
        """Record a buffer-pool hit (no physical IO)."""
        self.buffer_hits += 1

    def reset_locality(self) -> None:
        """Forget the last accessed block (e.g. when the disk arm is reset)."""
        self._last_block = None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        """Number of physical block reads (random + sequential)."""
        return self.random_reads + self.sequential_reads

    def normalized(self) -> float:
        """Normalized IO count for all reads so far."""
        return self.random_reads + self.sequential_reads / self.sequential_cost

    def snapshot(self) -> IOSnapshot:
        """Capture the current counters as an immutable snapshot."""
        return IOSnapshot(
            random_reads=self.random_reads,
            sequential_reads=self.sequential_reads,
            writes=self.writes,
            buffer_hits=self.buffer_hits,
        )

    def delta_since(self, snapshot: IOSnapshot) -> IOSnapshot:
        """IO performed since ``snapshot`` was taken."""
        return self.snapshot() - snapshot

    def reset(self) -> None:
        """Zero every counter and forget locality state."""
        self.random_reads = 0
        self.sequential_reads = 0
        self.writes = 0
        self.buffer_hits = 0
        self._last_block = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(random={self.random_reads}, sequential={self.sequential_reads}, "
            f"writes={self.writes}, hits={self.buffer_hits}, "
            f"normalized={self.normalized():.2f})"
        )
