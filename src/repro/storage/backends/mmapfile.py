"""A memory-mapped block array: fixed-size slots, OS-paged persistence.

Where :class:`~repro.storage.backends.file.FileBackend` models the
log-structured end of the design space (append-only, explicit page cache),
this backend models the update-in-place end: the device is one contiguous
array of fixed-size slots behind ``mmap``, so a block write lands directly in
the mapped page and rereads are served by the OS page cache.  Layout::

    [magic "RPMM"][version: u32][slot_bytes: u64]         file header
    [flag: u8][payload_bytes: u32][pickled payload ...]   one slot per block

Payloads that pickle beyond the slot capacity spill into an overflow table
(flag 2) carried by the manifest sidecar, so arbitrary payloads stay correct
while the common case — record-packed index blocks sized to a few KiB — stays
on the fast mapped path.  :meth:`~StorageBackend.flush` flushes the mapping
and atomically replaces the manifest (``<path>.manifest``) holding the block
count, the metadata channel, and the overflow table.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
from typing import Any, ClassVar, Dict, Mapping, Optional

from ...core.errors import StorageError
from ...testing.faults import crash_point
from .base import (
    StorageBackend,
    load_manifest_sidecar,
    redo_reclaim_swap,
    write_manifest_sidecar,
)

__all__ = ["MmapBackend"]

_MAGIC = b"RPMM"
_FILE_HEADER = struct.Struct("<4sIQ")  # magic, version, slot_bytes
_SLOT_HEADER = struct.Struct("<BI")  # flag, payload length
_MANIFEST_VERSION = 1

_FLAG_EMPTY = 0
_FLAG_INLINE = 1
_FLAG_OVERFLOW = 2


class MmapBackend(StorageBackend):
    """Blocks in fixed-size slots of a memory-mapped file."""

    name: ClassVar[str] = "mmap"
    persistent: ClassVar[bool] = True

    def __init__(
        self,
        path: str,
        sequential_cost: int = 20,
        slot_bytes: int = 4096,
        initial_slots: int = 64,
    ) -> None:
        super().__init__(sequential_cost=sequential_cost)
        if slot_bytes <= _SLOT_HEADER.size:
            raise StorageError(
                f"slot_bytes must exceed the {_SLOT_HEADER.size}-byte slot header"
            )
        if initial_slots <= 0:
            raise StorageError("initial_slots must be positive")
        self._path = os.fspath(path)
        self._overflow: Dict[int, bytes] = {}
        # Settle any half-swapped reclaim image before the file is opened,
        # sized, or mapped (see redo_reclaim_swap).
        redo_reclaim_swap(self._path, self._manifest_path, _MANIFEST_VERSION)
        existing = os.path.exists(self._path) and os.path.getsize(self._path) > 0
        self._file = open(self._path, "r+b" if existing else "w+b")
        if existing:
            self._slot_bytes = self._read_header()
        else:
            self._slot_bytes = slot_bytes
            self._file.write(_FILE_HEADER.pack(_MAGIC, _MANIFEST_VERSION, slot_bytes))
            self._file.flush()
            os.ftruncate(
                self._file.fileno(),
                _FILE_HEADER.size + initial_slots * self._slot_bytes,
            )
        self._capacity = (
            os.path.getsize(self._path) - _FILE_HEADER.size
        ) // self._slot_bytes
        self._map = mmap.mmap(self._file.fileno(), 0)
        if existing:
            self._attach()

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def _slot_offset(self, block_id: int) -> int:
        return _FILE_HEADER.size + block_id * self._slot_bytes

    def _grow(self, count: int) -> None:
        needed = self._num_blocks + count
        if needed <= self._capacity:
            return
        capacity = max(self._capacity, 1)
        while capacity < needed:
            capacity *= 2
        self._map.flush()
        self._map.close()
        os.ftruncate(
            self._file.fileno(), _FILE_HEADER.size + capacity * self._slot_bytes
        )
        self._capacity = capacity
        self._map = mmap.mmap(self._file.fileno(), 0)

    def _store(self, block_id: int, payload: Any) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        offset = self._slot_offset(block_id)
        if len(blob) <= self._slot_bytes - _SLOT_HEADER.size:
            self._overflow.pop(block_id, None)
            self._map[offset : offset + _SLOT_HEADER.size] = _SLOT_HEADER.pack(
                _FLAG_INLINE, len(blob)
            )
            start = offset + _SLOT_HEADER.size
            self._map[start : start + len(blob)] = blob
        else:
            self._map[offset : offset + _SLOT_HEADER.size] = _SLOT_HEADER.pack(
                _FLAG_OVERFLOW, 0
            )
            self._overflow[block_id] = blob

    def _load(self, block_id: int) -> Any:
        offset = self._slot_offset(block_id)
        flag, length = _SLOT_HEADER.unpack(
            self._map[offset : offset + _SLOT_HEADER.size]
        )
        if flag == _FLAG_EMPTY:
            return None  # allocated but never written
        if flag == _FLAG_OVERFLOW:
            blob = self._overflow.get(block_id)
            if blob is None:
                # The slot says "spilled" but the overflow table (persisted
                # only by flush()) does not have it: the device was reopened
                # without its manifest.  Fail loudly instead of KeyError.
                raise StorageError(
                    f"block {block_id} of {self._path!r} spilled past the "
                    "slot capacity and its overflow payload was lost — the "
                    "device was not flushed before reopening"
                )
            return pickle.loads(blob)
        start = offset + _SLOT_HEADER.size
        return pickle.loads(self._map[start : start + length])

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _flush_device(self) -> None:
        self._map.flush()
        write_manifest_sidecar(
            self._manifest_path,
            {
                "version": _MANIFEST_VERSION,
                "num_blocks": self._num_blocks,
                "metadata": dict(self._metadata),
                "overflow": dict(self._overflow),
            },
        )

    def _close_device(self) -> None:
        self._map.close()
        self._file.close()

    # ------------------------------------------------------------------
    # space reclamation
    # ------------------------------------------------------------------
    def _reclaim_device(self, remap: Mapping[int, int], new_num_blocks: int) -> None:
        # Build a compacted slot array sized to exactly the live blocks: this
        # is where the mmap file actually shrinks (``_grow`` only ever
        # doubles), recycling every slot a superseded block occupied.
        gc_path = self._path + ".gc"
        capacity = max(1, new_num_blocks)
        overflow: Dict[int, bytes] = {}
        with open(gc_path, "wb") as compacted:
            compacted.write(
                _FILE_HEADER.pack(_MAGIC, _MANIFEST_VERSION, self._slot_bytes)
            )
            compacted.truncate(_FILE_HEADER.size + capacity * self._slot_bytes)
            for old_id in sorted(remap):
                offset = self._slot_offset(old_id)
                header = self._map[offset : offset + _SLOT_HEADER.size]
                flag, length = _SLOT_HEADER.unpack(header)
                if flag == _FLAG_EMPTY:
                    continue  # allocated but never written: stays empty
                new_id = remap[old_id]
                compacted.seek(_FILE_HEADER.size + new_id * self._slot_bytes)
                if flag == _FLAG_OVERFLOW:
                    blob = self._overflow.get(old_id)
                    if blob is None:
                        raise StorageError(
                            f"block {old_id} of {self._path!r} spilled past "
                            "the slot capacity and its overflow payload was "
                            "lost — cannot reclaim an unflushed device"
                        )
                    compacted.write(header)
                    overflow[new_id] = blob
                else:
                    compacted.write(
                        self._map[offset : offset + _SLOT_HEADER.size + length]
                    )
            compacted.flush()
            os.fsync(compacted.fileno())
        crash_point("gc-post-copy")
        manifest = {
            "version": _MANIFEST_VERSION,
            "num_blocks": new_num_blocks,
            "metadata": dict(self._metadata),
            "overflow": overflow,
        }
        crash_point("gc-pre-commit")
        # THE commit (see FileBackend._reclaim_device): the gc-flagged
        # manifest makes attach finish the swap if the process dies here.
        write_manifest_sidecar(self._manifest_path, dict(manifest, log="gc"))
        self._map.close()
        self._file.close()
        os.replace(gc_path, self._path)
        self._file = open(self._path, "r+b")
        self._capacity = capacity
        self._map = mmap.mmap(self._file.fileno(), 0)
        self._overflow = overflow
        write_manifest_sidecar(self._manifest_path, manifest)

    # ------------------------------------------------------------------
    # reopen
    # ------------------------------------------------------------------
    def _read_header(self) -> int:
        self._file.seek(0)
        magic, version, slot_bytes = _FILE_HEADER.unpack(
            self._file.read(_FILE_HEADER.size)
        )
        if magic != _MAGIC:
            raise StorageError(f"{self._path!r} is not an mmap block array")
        if version != _MANIFEST_VERSION:
            raise StorageError(f"unsupported mmap layout version in {self._path!r}")
        return int(slot_bytes)

    def _attach(self) -> None:
        manifest = load_manifest_sidecar(self._manifest_path, _MANIFEST_VERSION)
        if manifest is not None:
            self._num_blocks = manifest["num_blocks"]
            self._metadata = dict(manifest["metadata"])
            self._overflow = dict(manifest["overflow"])
        else:
            # Best-effort recovery without a manifest: every written slot is
            # self-describing, so the block count is the highest flagged slot
            # (trailing allocated-but-unwritten blocks cannot be recovered).
            for slot in range(self._capacity - 1, -1, -1):
                offset = self._slot_offset(slot)
                if self._map[offset] != _FLAG_EMPTY:
                    self._num_blocks = slot + 1
                    break

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[str]:
        """Path of the backing mapped file."""
        return self._path

    @property
    def _manifest_path(self) -> str:
        return self._path + ".manifest"

    @property
    def slot_bytes(self) -> int:
        """Fixed byte capacity of one slot (including its 5-byte header)."""
        return self._slot_bytes

    @property
    def num_overflow_blocks(self) -> int:
        """Blocks whose payloads spilled past the slot capacity."""
        return len(self._overflow)
