"""An append-only block file: real persistence with an explicit page cache.

The on-disk layout is a log of self-describing records::

    [block_id: u64][payload_bytes: u64][pickled payload ...]

Writes only ever append — rewriting a block appends a new version and moves
the in-memory directory pointer, exactly the write pattern the interval-
ordered index placement produces (later intervals land after earlier ones).
An explicit LRU page cache holds recently *deserialized* payloads so repeated
reads of a hot block do not pay pickle decoding again; physical IO accounting
is unaffected (the charge is recorded before the cache is consulted — the
buffer pool one level up is the component that models IO-free re-reads).

Durability contract: :meth:`~StorageBackend.flush` fsyncs the log and then
atomically replaces the manifest sidecar (``<path>.manifest``) holding the
directory, the block count, and the metadata channel.  Reopening reads the
manifest and then *replays* any self-describing records appended after the
manifest's tail offset, so writes that hit the log but missed the final
manifest rewrite are recovered rather than lost.
"""

from __future__ import annotations

import os
import pickle
import struct
from collections import OrderedDict
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

from ...core.errors import StorageError
from ...testing.faults import crash_point
from .base import (
    StorageBackend,
    load_manifest_sidecar,
    redo_reclaim_swap,
    write_manifest_sidecar,
)

__all__ = ["FileBackend"]

#: Log-record header: (block_id, payload length), little-endian u64 pairs.
_HEADER = struct.Struct("<QQ")

#: Manifest schema version (bumped on incompatible layout changes).
_MANIFEST_VERSION = 1


class FileBackend(StorageBackend):
    """Append-only block file with a manifest sidecar and an LRU page cache."""

    name: ClassVar[str] = "file"
    persistent: ClassVar[bool] = True

    def __init__(
        self,
        path: str,
        sequential_cost: int = 20,
        page_cache_blocks: int = 64,
    ) -> None:
        super().__init__(sequential_cost=sequential_cost)
        if page_cache_blocks < 0:
            raise StorageError("page_cache_blocks must be non-negative")
        self._path = os.fspath(path)
        self._cache_capacity = page_cache_blocks
        self._page_cache: "OrderedDict[int, Any]" = OrderedDict()
        #: block_id -> (log offset, payload length) of the live version.
        self._directory: Dict[int, Tuple[int, int]] = {}
        # A crash mid-reclaim can leave a committed-but-unswapped compacted
        # image (or an uncommitted stray one); settle that before the device
        # file is opened or sized.
        redo_reclaim_swap(self._path, self._manifest_path, _MANIFEST_VERSION)
        # A device with zero written blocks has an empty log, so the manifest
        # sidecar alone can mark an attachable (metadata-only) device.
        log_present = os.path.exists(self._path)
        existing = (
            log_present and os.path.getsize(self._path) > 0
        ) or os.path.exists(self._path + ".manifest")
        self._handle = open(self._path, "r+b" if existing and log_present else "w+b")
        self._tail = 0
        if existing:
            self._attach()

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def _grow(self, count: int) -> None:
        pass  # allocation is pure bookkeeping; the log grows on first write

    def _store(self, block_id: int, payload: Any) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.seek(self._tail)
        self._handle.write(_HEADER.pack(block_id, len(blob)))
        self._handle.write(blob)
        self._directory[block_id] = (self._tail + _HEADER.size, len(blob))
        self._tail += _HEADER.size + len(blob)
        self._cache_put(block_id, payload)

    def _load(self, block_id: int) -> Any:
        if block_id in self._page_cache:
            self._page_cache.move_to_end(block_id)
            return self._page_cache[block_id]
        located = self._directory.get(block_id)
        if located is None:
            return None  # allocated but never written
        offset, length = located
        self._handle.seek(offset)
        payload = pickle.loads(self._handle.read(length))
        self._cache_put(block_id, payload)
        return payload

    def _cache_put(self, block_id: int, payload: Any) -> None:
        if self._cache_capacity <= 0:
            return
        self._page_cache[block_id] = payload
        self._page_cache.move_to_end(block_id)
        while len(self._page_cache) > self._cache_capacity:
            self._page_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _flush_device(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        write_manifest_sidecar(
            self._manifest_path,
            {
                "version": _MANIFEST_VERSION,
                "num_blocks": self._num_blocks,
                "directory": dict(self._directory),
                "tail": self._tail,
                "metadata": dict(self._metadata),
            },
        )

    def _close_device(self) -> None:
        self._handle.close()
        self._page_cache.clear()

    # ------------------------------------------------------------------
    # space reclamation
    # ------------------------------------------------------------------
    def _reclaim_device(self, remap: Mapping[int, int], new_num_blocks: int) -> None:
        # Copy the live record versions, in new-id order, into a compacted
        # sidecar log; superseded versions and dropped blocks are simply not
        # copied, so the log shrinks to exactly the live payload bytes.
        gc_path = self._path + ".gc"
        directory: Dict[int, Tuple[int, int]] = {}
        tail = 0
        with open(gc_path, "wb") as compacted:
            for old_id in sorted(remap):
                located = self._directory.get(old_id)
                if located is None:
                    continue  # allocated but never written: nothing to copy
                offset, length = located
                self._handle.seek(offset)
                blob = self._handle.read(length)
                new_id = remap[old_id]
                compacted.write(_HEADER.pack(new_id, length))
                compacted.write(blob)
                directory[new_id] = (tail + _HEADER.size, length)
                tail += _HEADER.size + length
            compacted.flush()
            os.fsync(compacted.fileno())
        crash_point("gc-post-copy")
        manifest = {
            "version": _MANIFEST_VERSION,
            "num_blocks": new_num_blocks,
            "directory": directory,
            "tail": tail,
            "metadata": dict(self._metadata),
        }
        crash_point("gc-pre-commit")
        # THE commit: after this manifest lands, attach redoes the swap even
        # if the process dies before the os.replace below (see
        # redo_reclaim_swap); before it, the old image stays authoritative.
        write_manifest_sidecar(self._manifest_path, dict(manifest, log="gc"))
        self._handle.close()
        os.replace(gc_path, self._path)
        self._handle = open(self._path, "r+b")
        self._directory = directory
        self._tail = tail
        self._page_cache.clear()
        write_manifest_sidecar(self._manifest_path, manifest)

    # ------------------------------------------------------------------
    # reopen
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        manifest = load_manifest_sidecar(self._manifest_path, _MANIFEST_VERSION)
        if manifest is not None:
            self._num_blocks = manifest["num_blocks"]
            self._directory = dict(manifest["directory"])
            self._tail = manifest["tail"]
            self._metadata = dict(manifest["metadata"])
        self._replay_from(self._tail)

    def _replay_from(self, offset: int) -> None:
        """Recover records appended after the last manifest rewrite."""
        end = os.path.getsize(self._path)
        while offset + _HEADER.size <= end:
            self._handle.seek(offset)
            block_id, length = _HEADER.unpack(self._handle.read(_HEADER.size))
            if offset + _HEADER.size + length > end:
                break  # torn final record: ignore past the last complete one
            self._directory[block_id] = (offset + _HEADER.size, length)
            self._num_blocks = max(self._num_blocks, block_id + 1)
            offset += _HEADER.size + length
        self._tail = offset

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[str]:
        """Path of the backing log file."""
        return self._path

    @property
    def _manifest_path(self) -> str:
        return self._path + ".manifest"

    @property
    def page_cache_blocks(self) -> int:
        """Configured page-cache capacity (0 disables the cache)."""
        return self._cache_capacity

    @property
    def log_bytes(self) -> int:
        """Bytes appended to the log so far (live and superseded versions)."""
        return self._tail
