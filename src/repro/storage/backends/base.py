"""The storage-backend contract shared by every block device implementation.

The paper's experiments measure index behaviour on a *block device*: what
matters to every layer above (buffer pool, block files, hash tables, snapshot
stores) is the block API — allocate / read / write — plus the random-vs-
sequential IO accounting the evaluation normalizes with.  This module factors
that contract out of the original in-memory ``SimulatedDisk`` so real
persistent devices (an append-only block file, a memory-mapped block array)
can slot in behind the same interface.

Concrete backends implement four primitives — :meth:`_grow`,
:meth:`_store`, :meth:`_load`, and (for persistent devices)
:meth:`_flush_device` / :meth:`_close_device` — and inherit the block
bookkeeping, bounds checks, IO accounting, and lifecycle guards from
:class:`StorageBackend`.  Blocks hold arbitrary picklable Python payloads
(one payload per block); record packing into fixed-capacity blocks happens
one level up, in :mod:`repro.storage.blockfile`.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, List, Mapping, Optional

from ...core.errors import BlockOutOfRangeError, StorageError
from ..stats import IOStats

__all__ = [
    "StorageBackend",
    "load_manifest_sidecar",
    "redo_reclaim_swap",
    "write_manifest_sidecar",
]


def write_manifest_sidecar(path: str, manifest: Dict[str, Any]) -> None:
    """Atomically replace the manifest sidecar at ``path``.

    The durability-critical half of every persistent backend's flush, kept in
    one place so its guarantees cannot drift between backends: the pickled
    manifest is written to a temporary file, fsync'd, and moved into place
    with :func:`os.replace` — a crash leaves either the old manifest or the
    new one, never a torn mixture.
    """
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as sidecar:
        pickle.dump(manifest, sidecar, protocol=pickle.HIGHEST_PROTOCOL)
        sidecar.flush()
        os.fsync(sidecar.fileno())
    os.replace(temp_path, path)


def redo_reclaim_swap(path: str, manifest_path: str, expected_version: int) -> None:
    """Finish (or abandon) a copy-forward reclaim interrupted by a crash.

    Persistent backends commit a :meth:`StorageBackend.reclaim` by writing a
    manifest that carries ``log: "gc"`` *before* the compacted sidecar
    (``<path>.gc``) replaces the device file.  Run at attach time, before the
    device is opened, this redoes or rolls back whatever half of the swap a
    crash left behind:

    * manifest says ``gc`` and the sidecar exists — the commit happened but
      the swap did not: perform the :func:`os.replace` now.
    * manifest says ``gc`` and the sidecar is gone — the swap happened but
      the manifest rewrite did not: the manifest's directory already
      describes the (swapped-in) device file, so only the flag is cleared.
    * manifest does not say ``gc`` but a sidecar exists — an uncommitted
      copy from a reclaim that crashed before its commit point: delete it;
      the old device file is still authoritative.
    """
    gc_path = path + ".gc"
    manifest = load_manifest_sidecar(manifest_path, expected_version)
    if manifest is not None and manifest.get("log") == "gc":
        if os.path.exists(gc_path):
            os.replace(gc_path, path)
        committed = {key: value for key, value in manifest.items() if key != "log"}
        write_manifest_sidecar(manifest_path, committed)
    elif os.path.exists(gc_path):
        os.remove(gc_path)


def load_manifest_sidecar(path: str, expected_version: int) -> Optional[Dict[str, Any]]:
    """Load the manifest sidecar at ``path`` (``None`` when absent).

    Raises :class:`~repro.core.errors.StorageError` when the manifest's
    schema version does not match ``expected_version``.
    """
    if not os.path.exists(path):
        return None
    with open(path, "rb") as sidecar:
        manifest: Dict[str, Any] = pickle.load(sidecar)
    if manifest.get("version") != expected_version:
        raise StorageError(f"unsupported manifest version in {path!r}")
    return manifest


class StorageBackend(ABC):
    """An append-allocated array of blocks with IO accounting.

    The backend exposes three data operations: :meth:`allocate` a new block at
    the end of the device, :meth:`write` a payload into an allocated block,
    and :meth:`read` a payload back.  Reads and writes are recorded in an
    :class:`~repro.storage.stats.IOStats` instance; reads of consecutive
    block ids are counted as sequential.  Persistent backends additionally
    honour :meth:`flush` (make everything written so far durable) and
    :meth:`close` (flush, then release the device — afterwards every data
    operation raises :class:`~repro.core.errors.StorageError`).

    A small *metadata* channel (:meth:`put_metadata` / :meth:`get_metadata`)
    rides along with the device: persistent backends include it in their
    durable manifest, which is how :class:`~repro.storage.StorageSystem`
    persists its file/table catalog across a close/reopen cycle.
    """

    #: Canonical backend name, as accepted by ``StorageConfig.backend``.
    name: ClassVar[str] = "abstract"
    #: Whether blocks survive :meth:`close` and can be reopened by path.
    persistent: ClassVar[bool] = False

    def __init__(self, sequential_cost: int = 20) -> None:
        self.stats = IOStats(sequential_cost=sequential_cost)
        self._num_blocks = 0
        self._closed = False
        self._metadata: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # primitives implemented by concrete backends
    # ------------------------------------------------------------------
    @abstractmethod
    def _grow(self, count: int) -> None:
        """Extend the device by ``count`` empty blocks (already accounted)."""

    @abstractmethod
    def _store(self, block_id: int, payload: Any) -> None:
        """Place ``payload`` into allocated block ``block_id``."""

    @abstractmethod
    def _load(self, block_id: int) -> Any:
        """Return the payload of allocated block ``block_id`` (``None`` when
        the block was allocated but never written)."""

    def _flush_device(self) -> None:
        """Make every stored payload (and the metadata) durable."""

    def _close_device(self) -> None:
        """Release device resources after the final flush."""

    # ------------------------------------------------------------------
    # lifecycle guards
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; data operations then raise."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError(f"storage backend {self.name!r} is closed")

    def _check(self, block_id: int) -> None:
        if block_id < 0 or block_id >= self._num_blocks:
            raise BlockOutOfRangeError(block_id, self._num_blocks)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of blocks allocated so far."""
        return self._num_blocks

    def allocate(self, payload: Any = None) -> int:
        """Allocate a new block at the end of the device and return its id.

        Allocation itself is not charged as IO; the construction-cost
        experiments charge the *writes* performed through :meth:`write` (and
        through a non-``None`` initial payload, which is a write).
        """
        self._ensure_open()
        block_id = self._num_blocks
        self._grow(1)
        self._num_blocks += 1
        if payload is not None:
            self._store(block_id, payload)
            self.stats.record_write(block_id)
        return block_id

    def allocate_many(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive empty blocks and return their ids."""
        self._ensure_open()
        if count < 0:
            raise StorageError("cannot allocate a negative number of blocks")
        first = self._num_blocks
        self._grow(count)
        self._num_blocks += count
        return list(range(first, first + count))

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def write(self, block_id: int, payload: Any) -> None:
        """Write ``payload`` into ``block_id`` (counted as one write IO)."""
        self._ensure_open()
        self._check(block_id)
        self._store(block_id, payload)
        self.stats.record_write(block_id)

    def read(self, block_id: int) -> Any:
        """Read the payload of ``block_id`` (counted as one read IO)."""
        self._ensure_open()
        self._check(block_id)
        self.stats.record_read(block_id)
        return self._load(block_id)

    def peek(self, block_id: int) -> Any:
        """Read a block without charging IO.

        Used by construction-time code that is charged separately, and by
        tests that need to inspect the layout.
        """
        self._ensure_open()
        self._check(block_id)
        return self._load(block_id)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Make everything written so far (payloads and metadata) durable.

        A no-op for non-persistent backends; persistent ones fsync their
        device and atomically rewrite their manifest.
        """
        self._ensure_open()
        self._flush_device()

    def close(self) -> None:
        """Flush, then release the device.  Idempotent.

        After closing, every data operation raises
        :class:`~repro.core.errors.StorageError`; persistent backends can be
        reopened from their path.
        """
        if self._closed:
            return
        self._flush_device()
        self._close_device()
        self._closed = True

    def discard(self) -> None:
        """Release the device *without* a final flush.  Idempotent.

        For abandoning a device nothing will ever reopen (a superseded
        rebuild-mode overlay, a failed construction): skipping the flush
        avoids paying an fsync'd manifest write for data that is about to be
        deleted.  The caller owns removing the backing files.
        """
        if self._closed:
            return
        self._close_device()
        self._closed = True

    # ------------------------------------------------------------------
    # space reclamation
    # ------------------------------------------------------------------
    def reclaim(self, remap: Mapping[int, int], new_num_blocks: int) -> None:
        """Copy live blocks forward and shrink the device to their footprint.

        ``remap`` maps every *live* old block id to its new id; any allocated
        block missing from ``remap`` is garbage and is dropped.  The caller
        (:meth:`repro.storage.StorageSystem.reclaim`) guarantees the mapping
        is order-preserving and dense over ``range(new_num_blocks)``, and has
        already staged remapped catalog metadata through the metadata
        channel, so the commit the backend performs carries a consistent
        directory *and* catalog.

        Persistent backends commit through their manifest (with the
        ``gc-post-copy`` / ``gc-pre-commit`` fault points around the commit
        point); a crash anywhere inside leaves a device that reattaches to
        either the old image or the fully reclaimed one, never a mixture.
        """
        self._ensure_open()
        if new_num_blocks < 0 or new_num_blocks > self._num_blocks:
            raise StorageError(
                f"reclaim target of {new_num_blocks} blocks is outside the "
                f"device ({self._num_blocks} blocks)"
            )
        for old_id, new_id in remap.items():
            if not (0 <= old_id < self._num_blocks and 0 <= new_id < new_num_blocks):
                raise StorageError(
                    f"reclaim remap {old_id} -> {new_id} is out of range"
                )
        self._reclaim_device(remap, new_num_blocks)
        self._num_blocks = new_num_blocks

    def _reclaim_device(self, remap: Mapping[int, int], new_num_blocks: int) -> None:
        """Backend-specific half of :meth:`reclaim` (see its contract)."""
        raise StorageError(
            f"storage backend {self.name!r} does not support reclaim"
        )

    # ------------------------------------------------------------------
    # metadata channel
    # ------------------------------------------------------------------
    def put_metadata(self, key: str, value: Any) -> None:
        """Stash a picklable value under ``key`` (durable after :meth:`flush`)."""
        self._ensure_open()
        self._metadata[key] = value

    def get_metadata(self, key: str, default: Any = None) -> Any:
        """Return the value stashed under ``key``, or ``default``."""
        return self._metadata.get(key, default)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[str]:
        """Filesystem path backing the device (``None`` for in-memory ones)."""
        return None

    def reset_stats(self) -> None:
        """Zero the IO counters (layout is preserved)."""
        self.stats.reset()

    def __len__(self) -> int:
        return self._num_blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(blocks={self._num_blocks}, "
            f"closed={self._closed}, {self.stats})"
        )
