"""The in-memory simulated block device (the default backend).

The reproduction's original device: an in-memory array of Python payloads
with the full IO accounting, standing in for the paper's 5-disk Windows
server (Table 3).  The number of (normalized) IOs a query incurs is a
property of the index layout and the access pattern, not of a particular
physical disk, so this backend remains the right default for regenerating
the paper's figures; the persistent backends exist to run the same
workloads against a real on-disk layout.
"""

from __future__ import annotations

from typing import Any, ClassVar, List, Mapping

from .base import StorageBackend

__all__ = ["SimulatedBackend"]


class SimulatedBackend(StorageBackend):
    """Blocks held in a plain Python list; nothing survives :meth:`close`."""

    name: ClassVar[str] = "sim"
    persistent: ClassVar[bool] = False

    def __init__(self, sequential_cost: int = 20) -> None:
        super().__init__(sequential_cost=sequential_cost)
        self._blocks: List[Any] = []

    def _grow(self, count: int) -> None:
        self._blocks.extend([None] * count)

    def _store(self, block_id: int, payload: Any) -> None:
        self._blocks[block_id] = payload

    def _load(self, block_id: int) -> Any:
        return self._blocks[block_id]

    def _reclaim_device(self, remap: Mapping[int, int], new_num_blocks: int) -> None:
        compacted: List[Any] = [None] * new_num_blocks
        for old_id, new_id in remap.items():
            compacted[new_id] = self._blocks[old_id]
        self._blocks = compacted
