"""Pluggable block-device backends behind one storage contract.

Three implementations of :class:`~repro.storage.backends.base.StorageBackend`
ship with the library, selected by ``StorageConfig.backend``:

``sim`` (default)
    The in-memory simulated device the paper's figures are regenerated on —
    IO accounting without any real disk.
``file``
    An append-only block file with an explicit LRU page cache, fsync'd
    :meth:`flush`, and a manifest sidecar enabling close/reopen persistence.
``mmap``
    A memory-mapped array of fixed-size slots (OS-paged reads/writes) with
    an overflow table for oversized payloads.

All three share the exact same IO accounting (sequential vs random
classification, normalized IO), so experiment numbers remain comparable
across backends; the conformance suite in ``tests/test_storage_backends.py``
runs one shared battery against every backend to keep it that way.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ...core.config import STORAGE_BACKENDS, StorageConfig
from ...core.errors import StorageError
from .base import StorageBackend
from .file import FileBackend
from .mmapfile import MmapBackend
from .sim import SimulatedBackend

__all__ = [
    "STORAGE_BACKENDS",
    "BACKEND_CLASSES",
    "BACKEND_FILE_SUFFIX",
    "StorageBackend",
    "SimulatedBackend",
    "FileBackend",
    "MmapBackend",
    "make_backend",
]

#: Backend classes by canonical name (the values ``StorageConfig.backend``
#: accepts; the names themselves are defined next to the config to avoid a
#: core → storage import cycle).
BACKEND_CLASSES: Dict[str, Type[StorageBackend]] = {
    SimulatedBackend.name: SimulatedBackend,
    FileBackend.name: FileBackend,
    MmapBackend.name: MmapBackend,
}

#: Suffix of the backing file created by each persistent backend.
BACKEND_FILE_SUFFIX: Dict[str, str] = {
    FileBackend.name: ".blocks",
    MmapBackend.name: ".mmap",
}

assert set(BACKEND_CLASSES) == set(STORAGE_BACKENDS)


def make_backend(config: StorageConfig, path: Optional[str] = None) -> StorageBackend:
    """Instantiate the backend ``config`` asks for.

    ``path`` locates the backing file of a persistent backend (creating it
    when absent, attaching when it already exists); the simulated backend
    ignores it.  :class:`~repro.storage.StorageSystem` derives the path from
    ``config.storage_dir`` and its own name — call this directly only when
    managing device files by hand.
    """
    if config.backend == SimulatedBackend.name:
        return SimulatedBackend(sequential_cost=config.sequential_cost)
    if path is None:
        raise StorageError(
            f"backend {config.backend!r} is persistent and needs a path"
        )
    if config.backend == FileBackend.name:
        return FileBackend(
            path,
            sequential_cost=config.sequential_cost,
            page_cache_blocks=config.page_cache_blocks,
        )
    if config.backend == MmapBackend.name:
        return MmapBackend(
            path,
            sequential_cost=config.sequential_cost,
            slot_bytes=config.mmap_slot_bytes,
        )
    raise StorageError(
        f"unknown storage backend {config.backend!r}; "
        f"choose one of {', '.join(STORAGE_BACKENDS)}"
    )
