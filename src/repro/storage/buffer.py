"""An LRU buffer pool fronting the simulated disk.

Both ReachGrid and ReachGraph rely on buffering during query processing:
ReachGrid buffers the grid cells retrieved within a temporal interval, and
ReachGraph buffers whole partitions so that future vertices in the same
partition are served from memory.  The buffer pool implements the standard
database pattern — fixed capacity, least-recently-used eviction — and routes
misses to the underlying :class:`~repro.storage.disk.SimulatedDisk`, which is
where the IO accounting happens.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, Optional

from ..core.errors import BufferPoolError
from .disk import SimulatedDisk
from .stats import IOStats

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU cache of disk blocks.

    Parameters
    ----------
    disk:
        The simulated device to read from on a miss.
    capacity:
        Maximum number of blocks held in memory at once.
    """

    def __init__(self, disk: SimulatedDisk, capacity: int = 256) -> None:
        if capacity <= 0:
            raise BufferPoolError("buffer pool capacity must be positive")
        self._disk = disk
        self._capacity = capacity
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of resident blocks."""
        return self._capacity

    @property
    def stats(self) -> IOStats:
        """The IO counters of the underlying disk."""
        return self._disk.stats

    @property
    def resident_blocks(self) -> int:
        """Number of blocks currently held in memory."""
        return len(self._frames)

    def contains(self, block_id: int) -> bool:
        """True when ``block_id`` is resident (does not touch recency)."""
        return block_id in self._frames

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> Any:
        """Return the payload of ``block_id``, fetching it on a miss."""
        if block_id in self._frames:
            self._frames.move_to_end(block_id)
            self.hits += 1
            self._disk.stats.record_buffer_hit(block_id)
            return self._frames[block_id]
        payload = self._disk.read(block_id)
        self.misses += 1
        self._insert(block_id, payload)
        return payload

    def read_many(self, block_ids: Iterable[int]) -> list:
        """Read several blocks in the given order and return their payloads."""
        return [self.read(block_id) for block_id in block_ids]

    def prefetch(self, block_ids: Iterable[int]) -> None:
        """Fetch blocks into the pool without returning their payloads."""
        for block_id in block_ids:
            self.read(block_id)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _insert(self, block_id: int, payload: Any) -> None:
        self._frames[block_id] = payload
        self._frames.move_to_end(block_id)
        while len(self._frames) > self._capacity:
            self._frames.popitem(last=False)

    def invalidate(self, block_id: Optional[int] = None) -> None:
        """Drop one block (or the whole pool when ``block_id`` is ``None``)."""
        if block_id is None:
            self._frames.clear()
        else:
            self._frames.pop(block_id, None)

    def clear(self) -> None:
        """Drop every resident block and zero the hit/miss counters."""
        self._frames.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served from memory (0.0 when nothing was read)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(capacity={self._capacity}, resident={len(self._frames)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
