"""An LRU buffer pool fronting the block device.

Both ReachGrid and ReachGraph rely on buffering during query processing:
ReachGrid buffers the grid cells retrieved within a temporal interval, and
ReachGraph buffers whole partitions so that future vertices in the same
partition are served from memory.  The buffer pool implements the standard
database pattern — fixed capacity, least-recently-used eviction — and routes
misses to the underlying :class:`~repro.storage.backends.StorageBackend`,
which is where the IO accounting happens.

Writes staged through :meth:`BufferPool.write` follow the classic write-back
discipline: the frame is marked dirty and the device write is deferred until
the frame is evicted (or the pool is flushed/cleared).  This matters for the
persistent backends — a dirty page silently dropped at eviction would read
back stale after a close/reopen cycle — and it is also the honest IO model:
a real buffer manager pays the write IO when the page leaves memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, Optional, Set

from ..core.errors import BufferPoolError
from .backends.base import StorageBackend
from .stats import IOStats

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU cache of device blocks with write-back.

    Parameters
    ----------
    disk:
        The block device to read from on a miss and write dirty frames back
        to on eviction.
    capacity:
        Maximum number of blocks held in memory at once.
    """

    def __init__(self, disk: StorageBackend, capacity: int = 256) -> None:
        if capacity <= 0:
            raise BufferPoolError("buffer pool capacity must be positive")
        self._disk = disk
        self._capacity = capacity
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self._dirty: Set[int] = set()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of resident blocks."""
        return self._capacity

    @property
    def stats(self) -> IOStats:
        """The IO counters of the underlying device."""
        return self._disk.stats

    @property
    def resident_blocks(self) -> int:
        """Number of blocks currently held in memory."""
        return len(self._frames)

    @property
    def dirty_blocks(self) -> int:
        """Number of resident blocks whose device write is still deferred."""
        return len(self._dirty)

    def contains(self, block_id: int) -> bool:
        """True when ``block_id`` is resident (does not touch recency)."""
        return block_id in self._frames

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> Any:
        """Return the payload of ``block_id``, fetching it on a miss."""
        if block_id in self._frames:
            self._frames.move_to_end(block_id)
            self.hits += 1
            self._disk.stats.record_buffer_hit(block_id)
            return self._frames[block_id]
        payload = self._disk.read(block_id)
        self.misses += 1
        self._insert(block_id, payload)
        return payload

    def read_many(self, block_ids: Iterable[int]) -> list:
        """Read several blocks in the given order and return their payloads."""
        return [self.read(block_id) for block_id in block_ids]

    def prefetch(self, block_ids: Iterable[int]) -> None:
        """Fetch blocks into the pool without returning their payloads."""
        for block_id in block_ids:
            self.read(block_id)

    def write(self, block_id: int, payload: Any) -> None:
        """Stage a write: the frame turns dirty, the device write is deferred.

        The payload reaches the device when the frame is evicted, or when
        :meth:`flush` / :meth:`clear` / :meth:`invalidate` runs — whichever
        comes first.  Writers that must not lose data across a close/reopen
        cycle call :meth:`flush` before closing the storage system (the
        system's own ``flush``/``close`` do exactly that).
        """
        self._dirty.add(block_id)
        self._insert(block_id, payload)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _insert(self, block_id: int, payload: Any) -> None:
        self._frames[block_id] = payload
        self._frames.move_to_end(block_id)
        while len(self._frames) > self._capacity:
            evicted_id, evicted_payload = self._frames.popitem(last=False)
            self._write_back(evicted_id, evicted_payload)

    def _write_back(self, block_id: int, payload: Any) -> None:
        if block_id in self._dirty:
            self._dirty.discard(block_id)
            self._disk.write(block_id, payload)

    def flush(self) -> None:
        """Write every dirty frame back to the device (frames stay resident)."""
        for block_id in sorted(self._dirty):
            self._disk.write(block_id, self._frames[block_id])
        self._dirty.clear()

    def invalidate(self, block_id: Optional[int] = None) -> None:
        """Drop one block (or the whole pool when ``block_id`` is ``None``).

        Dirty frames are written back before being dropped — invalidation
        discards residency, never data.
        """
        if block_id is None:
            self.flush()
            self._frames.clear()
        elif block_id in self._frames:
            self._write_back(block_id, self._frames.pop(block_id))

    def clear(self) -> None:
        """Drop every resident block and zero the hit/miss counters.

        Dirty frames are written back first, as in :meth:`invalidate`.
        """
        self.flush()
        self._frames.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served from memory (0.0 when nothing was read)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(capacity={self._capacity}, resident={len(self._frames)}, "
            f"dirty={len(self._dirty)}, hits={self.hits}, misses={self.misses})"
        )
