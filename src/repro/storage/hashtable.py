"""External (disk-resident) hash tables.

Both indexes rely on external hash tables for constant-IO lookups:

* ReachGrid uses a hash table that maps an object id to the grid cell holding
  its trajectory segment at a given time (Section 4.2: "this can be executed
  in constant number of IOs assuming that an external hash table maps each
  object to its trajectory over time").
* ReachGraph stores one hash table ``Ht`` per time instance that maps an
  object to the partition (and vertex) containing ``o(t)`` (Section 5.1.3).

The table is bucketed onto disk blocks; a lookup reads exactly one block (the
bucket), which is what makes it "constant number of IOs".
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Tuple

from ..core.errors import StorageError
from .backends.base import StorageBackend
from .buffer import BufferPool

__all__ = ["ExternalHashTable"]


class ExternalHashTable:
    """A static external hash table built once and probed at query time.

    The table must be built with :meth:`build` before lookups.  Keys hash with
    Python's built-in ``hash``; each bucket occupies exactly one disk block.
    """

    def __init__(
        self,
        disk: StorageBackend,
        buffer_pool: BufferPool,
        name: str = "hashtable",
    ) -> None:
        self._disk = disk
        self._buffer = buffer_pool
        self._num_buckets = 0
        self._bucket_blocks: List[int] = []
        self._built = False
        self.name = name

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(
        self,
        entries: Iterable[Tuple[Hashable, Any]],
        entries_per_bucket: int = 32,
    ) -> None:
        """Build the table from ``(key, value)`` pairs.

        ``entries_per_bucket`` controls the target load: the bucket count is
        chosen so the average bucket holds roughly that many entries.
        """
        if self._built:
            raise StorageError(f"hash table {self.name!r} already built")
        pairs = list(entries)
        if entries_per_bucket <= 0:
            raise StorageError("entries_per_bucket must be positive")
        self._num_buckets = max(1, -(-len(pairs) // entries_per_bucket))
        buckets: List[Dict[Hashable, Any]] = [dict() for _ in range(self._num_buckets)]
        for key, value in pairs:
            buckets[hash(key) % self._num_buckets][key] = value
        self._bucket_blocks = [self._disk.allocate(bucket) for bucket in buckets]
        self._built = True

    def adopt_buckets(self, bucket_blocks: List[int]) -> None:
        """Re-register bucket blocks that already live on the device.

        Reopen-path counterpart of :meth:`build` (see
        :meth:`~repro.storage.blockfile.BlockFile.adopt_extents`): the bucket
        payloads were written in a previous process; this restores the block
        directory so :meth:`get` hashes into them again.
        """
        if self._built:
            raise StorageError(f"hash table {self.name!r} already built")
        if not bucket_blocks:
            # A built table always has at least one bucket (see build), so an
            # empty list means the original was never built: stay unbuilt and
            # keep raising the not-built error instead of dividing by zero.
            return
        for block_id in bucket_blocks:
            if block_id < 0 or block_id >= self._disk.num_blocks:
                raise StorageError(
                    f"bucket block {block_id} of {self.name!r} lies beyond "
                    f"the device ({self._disk.num_blocks} blocks)"
                )
        self._bucket_blocks = list(bucket_blocks)
        self._num_buckets = len(self._bucket_blocks)
        self._built = True

    def remap_blocks(self, remap: Dict[int, int]) -> None:
        """Repoint every bucket after a copy-forward device reclaim.

        ``remap`` is the old-id → new-id mapping the reclaim applied; bucket
        payloads are untouched, only their block ids move.
        """
        self._bucket_blocks = [remap[block_id] for block_id in self._bucket_blocks]

    def update(self, key: Hashable, value: Any) -> None:
        """Overwrite (or insert) one entry in place (one bucket read + write).

        The incremental-maintenance hook: the ReachGraph object index patches
        an object's assignment history when a merge appends vertices, instead
        of rebuilding the whole table.  The write goes through the buffer
        pool's write-back path, so the device write is deferred until the
        frame is evicted or flushed — the same discipline every other staged
        write follows.
        """
        if not self._built:
            raise StorageError(f"hash table {self.name!r} has not been built")
        block_id = self._bucket_blocks[hash(key) % self._num_buckets]
        bucket: Dict[Hashable, Any] = dict(self._buffer.read(block_id))
        bucket[key] = value
        self._buffer.write(block_id, bucket)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the value stored for ``key`` (one block read), or ``default``."""
        if not self._built:
            raise StorageError(f"hash table {self.name!r} has not been built")
        block_id = self._bucket_blocks[hash(key) % self._num_buckets]
        bucket: Dict[Hashable, Any] = self._buffer.read(block_id)
        return bucket.get(key, default)

    def lookup(self, key: Hashable) -> Any:
        """Like :meth:`get` but raises :class:`StorageError` on a missing key."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise StorageError(f"key {key!r} not found in hash table {self.name!r}")
        return value

    def __contains__(self, key: Hashable) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of bucket blocks."""
        return self._num_buckets

    @property
    def bucket_blocks(self) -> List[int]:
        """Device block ids of the buckets, in hash order."""
        return list(self._bucket_blocks)

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExternalHashTable(name={self.name!r}, buckets={self._num_buckets})"
