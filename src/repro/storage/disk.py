"""A simulated block device.

The paper evaluates index structures on disk-resident datasets and reports the
number of (normalized) IOs a query incurs.  That metric is a property of the
index layout and the access pattern, not of a particular physical disk, so the
reproduction replaces the 5-disk Windows server of Table 3 with an in-memory
block device that faithfully tracks which blocks are touched and whether the
accesses are sequential or random.

Blocks hold arbitrary Python payloads (one payload per block).  Record packing
into fixed-capacity blocks is handled one level up, in
:mod:`repro.storage.blockfile`.
"""

from __future__ import annotations

from typing import Any, List

from ..core.errors import BlockOutOfRangeError, StorageError
from .stats import IOStats

__all__ = ["SimulatedDisk"]


class SimulatedDisk:
    """An append-allocated array of blocks with IO accounting.

    The disk exposes three operations: :meth:`allocate` a new block at the end
    of the device, :meth:`write` a payload into an allocated block, and
    :meth:`read` a payload back.  Reads and writes are recorded in an
    :class:`~repro.storage.stats.IOStats` instance; reads of consecutive block
    ids are counted as sequential.
    """

    def __init__(self, sequential_cost: int = 20) -> None:
        self._blocks: List[Any] = []
        self.stats = IOStats(sequential_cost=sequential_cost)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of blocks allocated so far."""
        return len(self._blocks)

    def allocate(self, payload: Any = None) -> int:
        """Allocate a new block at the end of the device and return its id.

        Allocation itself is not charged as IO; the construction-cost
        experiments charge the *writes* performed through :meth:`write`.
        """
        self._blocks.append(payload)
        block_id = len(self._blocks) - 1
        if payload is not None:
            self.stats.record_write(block_id)
        return block_id

    def allocate_many(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive empty blocks and return their ids."""
        if count < 0:
            raise StorageError("cannot allocate a negative number of blocks")
        first = len(self._blocks)
        self._blocks.extend([None] * count)
        return list(range(first, first + count))

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def _check(self, block_id: int) -> None:
        if block_id < 0 or block_id >= len(self._blocks):
            raise BlockOutOfRangeError(block_id, len(self._blocks))

    def write(self, block_id: int, payload: Any) -> None:
        """Write ``payload`` into ``block_id`` (counted as one write IO)."""
        self._check(block_id)
        self._blocks[block_id] = payload
        self.stats.record_write(block_id)

    def read(self, block_id: int) -> Any:
        """Read the payload of ``block_id`` (counted as one read IO)."""
        self._check(block_id)
        self.stats.record_read(block_id)
        return self._blocks[block_id]

    def peek(self, block_id: int) -> Any:
        """Read a block without charging IO.

        Used by construction-time code that is charged separately, and by
        tests that need to inspect the layout.
        """
        self._check(block_id)
        return self._blocks[block_id]

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the IO counters (layout is preserved)."""
        self.stats.reset()

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedDisk(blocks={len(self._blocks)}, {self.stats})"
