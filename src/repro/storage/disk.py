"""The simulated block device (compatibility shim).

The paper evaluates index structures on disk-resident datasets and reports
the number of (normalized) IOs a query incurs.  That metric is a property of
the index layout and the access pattern, not of a particular physical disk,
so the reproduction's default device is an in-memory block array that
faithfully tracks which blocks are touched and whether the accesses are
sequential or random.

The implementation now lives in :mod:`repro.storage.backends`, where it is
one of several interchangeable :class:`~repro.storage.backends.StorageBackend`
implementations (``sim``, ``file``, ``mmap``); ``SimulatedDisk`` remains the
historical name of the in-memory one.  Blocks hold arbitrary Python payloads
(one payload per block); record packing into fixed-capacity blocks is handled
one level up, in :mod:`repro.storage.blockfile`.
"""

from __future__ import annotations

from .backends.sim import SimulatedBackend

__all__ = ["SimulatedDisk"]

#: Historical name of the in-memory backend, kept for existing imports.
SimulatedDisk = SimulatedBackend
