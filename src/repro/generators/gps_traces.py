"""Sparse GPS trace generator (substitute for the Beijing vehicle dataset).

The paper's only real dataset is a set of Beijing taxi GPS tracks sampled once
per minute and interpolated to a 5-second grid; it is used for the ``VN_R``
column of Table 4.  We cannot ship that proprietary dataset, so this module
produces the closest synthetic equivalent that exercises the same code path:

1. drive vehicles on a road network (the movement model of urban taxis),
2. *downsample* the trajectories to a coarse recording rate (1 sample per
   ``recording_interval`` ticks, mirroring the 1-minute GPS logger), and
3. *interpolate* the sparse samples back onto the dense tick grid.

The resulting dataset is sparser in contacts than the fully synthetic VN data
(piecewise-linear interpolated tracks cut corners and vehicles are fewer),
which is exactly the qualitative property the paper reports for ``VN_R``
(much smaller average long-edge degree in Table 4).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.errors import DatasetError
from ..trajectory.interpolation import densify_sparse_samples, downsample
from ..trajectory.model import TrajectoryDataset
from .base import TrajectoryGenerator
from .road_network import RoadNetwork, RoadNetworkGenerator

__all__ = ["SparseGpsTraceGenerator"]


class SparseGpsTraceGenerator(TrajectoryGenerator):
    """Vehicles recorded at a coarse GPS rate, then re-interpolated.

    Parameters
    ----------
    recording_interval:
        Number of ticks between recorded GPS fixes (the paper's 1-minute rate
        at a 5-second tick corresponds to 12).
    """

    def __init__(
        self,
        num_objects: int,
        horizon: int,
        environment_size: Tuple[float, float] = (24_000.0, 24_000.0),
        recording_interval: int = 12,
        network: Optional[RoadNetwork] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_objects, horizon, environment_size, seed)
        if recording_interval <= 0:
            raise DatasetError("recording_interval must be positive")
        self.recording_interval = recording_interval
        self._mover = RoadNetworkGenerator(
            num_objects=num_objects,
            horizon=horizon,
            environment_size=environment_size,
            network=network,
            seed=seed,
        )

    def generate(self) -> TrajectoryDataset:
        """Generate the sparse-GPS dataset (drive, downsample, interpolate)."""
        dense = self._mover.generate()
        trajectories = []
        for trajectory in dense:
            sparse = downsample(trajectory, self.recording_interval)
            trajectories.append(
                densify_sparse_samples(
                    trajectory.object_id,
                    sparse,
                    horizon_length=self.horizon,
                    start_time=trajectory.start_time,
                )
            )
        return TrajectoryDataset(
            trajectories,
            environment_size=self.environment_size,
            name=self._dataset_name(),
        )
