"""Road-network-constrained vehicle generator (Brinkhoff substitute).

The paper's VN datasets come from the Brinkhoff generator running on the San
Francisco road network: vehicles move only along roads, so the objects occupy
a small, non-uniform portion of the environment — the property that makes
ReachGraph beat ReachGrid on VN data (Section 6.3).

This module builds a synthetic road network (a perturbed grid of intersections
with some diagonal shortcuts, covering only part of the environment) and moves
vehicles along shortest paths between random intersections at per-edge speeds,
in the spirit of Brinkhoff's network-based moving-objects generator.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import DatasetError
from ..core.types import Point
from ..trajectory.model import Trajectory, TrajectoryDataset
from .base import TrajectoryGenerator

__all__ = ["RoadNetwork", "RoadNetworkGenerator"]


@dataclass(frozen=True, slots=True)
class _Edge:
    """A directed road segment between two intersections."""

    target: int
    length: float
    speed: float


class RoadNetwork:
    """A small planar road network: intersections (nodes) joined by roads.

    The network is a ``rows x cols`` grid of intersections whose coordinates
    are jittered, with every grid edge present and a fraction of diagonal
    shortcuts added.  The network covers only the lower-left
    ``coverage`` fraction of the environment, reproducing the paper's
    observation that vehicles live "within the small portion of the entire
    environment E".
    """

    def __init__(
        self,
        environment_size: Tuple[float, float],
        rows: int = 8,
        cols: int = 8,
        coverage: float = 0.5,
        speed_range: Tuple[float, float] = (8.0, 16.0),
        diagonal_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if rows < 2 or cols < 2:
            raise DatasetError("road network needs at least a 2x2 grid")
        if not 0.0 < coverage <= 1.0:
            raise DatasetError("coverage must be in (0, 1]")
        import random

        rng = random.Random(seed)
        self.nodes: List[Point] = []
        self.adjacency: List[List[_Edge]] = []
        width = environment_size[0] * coverage
        height = environment_size[1] * coverage
        cell_w = width / (cols - 1)
        cell_h = height / (rows - 1)

        for r in range(rows):
            for c in range(cols):
                jitter_x = rng.uniform(-0.2, 0.2) * cell_w
                jitter_y = rng.uniform(-0.2, 0.2) * cell_h
                x = min(max(c * cell_w + jitter_x, 0.0), environment_size[0])
                y = min(max(r * cell_h + jitter_y, 0.0), environment_size[1])
                self.nodes.append(Point(x, y))
                self.adjacency.append([])

        def node_index(r: int, c: int) -> int:
            return r * cols + c

        def add_road(u: int, v: int) -> None:
            length = self.nodes[u].distance_to(self.nodes[v])
            speed = rng.uniform(*speed_range)
            self.adjacency[u].append(_Edge(v, length, speed))
            self.adjacency[v].append(_Edge(u, length, speed))

        for r in range(rows):
            for c in range(cols):
                u = node_index(r, c)
                if c + 1 < cols:
                    add_road(u, node_index(r, c + 1))
                if r + 1 < rows:
                    add_road(u, node_index(r + 1, c))
                if (
                    r + 1 < rows
                    and c + 1 < cols
                    and rng.random() < diagonal_fraction
                ):
                    add_road(u, node_index(r + 1, c + 1))

    @property
    def num_nodes(self) -> int:
        """Number of intersections."""
        return len(self.nodes)

    def shortest_path(self, source: int, target: int) -> List[int]:
        """Dijkstra shortest path (by travel time) between two intersections."""
        if source == target:
            return [source]
        distances = {source: 0.0}
        previous: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        visited = set()
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            for edge in self.adjacency[node]:
                travel_time = edge.length / edge.speed
                candidate = dist + travel_time
                if candidate < distances.get(edge.target, math.inf):
                    distances[edge.target] = candidate
                    previous[edge.target] = node
                    heapq.heappush(heap, (candidate, edge.target))
        if target not in previous and target != source:
            raise DatasetError("road network is not connected")
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    def edge_between(self, u: int, v: int) -> _Edge:
        """The road from ``u`` to ``v`` (must exist)."""
        for edge in self.adjacency[u]:
            if edge.target == v:
                return edge
        raise DatasetError(f"no road between intersections {u} and {v}")


class RoadNetworkGenerator(TrajectoryGenerator):
    """Vehicles routed along a synthetic road network (Brinkhoff-style).

    Each vehicle repeatedly selects a random destination intersection, follows
    the shortest path to it at the per-edge speeds, and then picks a new
    destination.  Positions are sampled every ``sampling_period`` seconds.
    """

    def __init__(
        self,
        num_objects: int,
        horizon: int,
        environment_size: Tuple[float, float] = (17_000.0, 17_000.0),
        sampling_period: float = 5.0,
        network: Optional[RoadNetwork] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_objects, horizon, environment_size, seed)
        if sampling_period <= 0:
            raise DatasetError("sampling_period must be positive")
        self.sampling_period = sampling_period
        self.network = network or RoadNetwork(
            environment_size, seed=seed + 1
        )

    # ------------------------------------------------------------------
    # vehicle simulation
    # ------------------------------------------------------------------
    def _drive_vehicle(self) -> List[Point]:
        """Simulate one vehicle for ``self.horizon`` ticks."""
        network = self.network
        positions: List[Point] = []
        current_node = self._rng.randrange(network.num_nodes)
        position = network.nodes[current_node]
        path: List[int] = []
        path_index = 0
        # Progress along the current edge, in metres.
        edge_progress = 0.0

        while len(positions) < self.horizon:
            positions.append(position)
            # Move the vehicle by one sampling period worth of travel.
            budget_seconds = self.sampling_period
            while budget_seconds > 1e-9:
                if path_index >= len(path) - 1 or not path:
                    # Need a new route.
                    destination = self._rng.randrange(network.num_nodes)
                    while destination == current_node:
                        destination = self._rng.randrange(network.num_nodes)
                    path = network.shortest_path(current_node, destination)
                    path_index = 0
                    edge_progress = 0.0
                    if len(path) < 2:
                        break
                u = path[path_index]
                v = path[path_index + 1]
                edge = network.edge_between(u, v)
                remaining_on_edge = edge.length - edge_progress
                travel = edge.speed * budget_seconds
                if travel >= remaining_on_edge:
                    # Reach the next intersection and continue.
                    budget_seconds -= remaining_on_edge / edge.speed
                    current_node = v
                    path_index += 1
                    edge_progress = 0.0
                    position = network.nodes[v]
                else:
                    edge_progress += travel
                    fraction = edge_progress / edge.length
                    start = network.nodes[u]
                    end = network.nodes[v]
                    position = Point(
                        start.x + (end.x - start.x) * fraction,
                        start.y + (end.y - start.y) * fraction,
                    )
                    budget_seconds = 0.0
        return positions

    def generate(self) -> TrajectoryDataset:
        """Generate the road-network vehicle dataset."""
        trajectories = [
            Trajectory(object_id, self._drive_vehicle())
            for object_id in range(self.num_objects)
        ]
        return TrajectoryDataset(
            trajectories,
            environment_size=self.environment_size,
            name=self._dataset_name(),
        )
