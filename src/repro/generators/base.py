"""Common interface for trajectory generators.

Every generator produces a :class:`~repro.trajectory.model.TrajectoryDataset`
with one densely sampled trajectory per object over a rectangular environment.
Generators are deterministic given their seed so that tests and benchmarks are
reproducible.
"""

from __future__ import annotations

import abc
import random
from typing import Tuple

from ..core.errors import DatasetError
from ..trajectory.model import TrajectoryDataset

__all__ = ["TrajectoryGenerator"]


class TrajectoryGenerator(abc.ABC):
    """Base class for synthetic movement generators.

    Parameters
    ----------
    num_objects:
        How many moving objects to simulate.
    horizon:
        Number of time instances to generate (``|T|``).
    environment_size:
        Width and height of the rectangular environment ``E`` in metres.
    seed:
        Seed of the generator's private random stream.
    """

    def __init__(
        self,
        num_objects: int,
        horizon: int,
        environment_size: Tuple[float, float],
        seed: int = 0,
    ) -> None:
        if num_objects <= 0:
            raise DatasetError("num_objects must be positive")
        if horizon <= 0:
            raise DatasetError("horizon must be positive")
        if environment_size[0] <= 0 or environment_size[1] <= 0:
            raise DatasetError("environment dimensions must be positive")
        self.num_objects = num_objects
        self.horizon = horizon
        self.environment_size = (float(environment_size[0]), float(environment_size[1]))
        self.seed = seed
        self._rng = random.Random(seed)

    @abc.abstractmethod
    def generate(self) -> TrajectoryDataset:
        """Produce the trajectory dataset."""

    @property
    def rng(self) -> random.Random:
        """The generator's private random stream."""
        return self._rng

    def _dataset_name(self) -> str:
        """Default dataset name: class name + object count + horizon."""
        return f"{type(self).__name__}-{self.num_objects}x{self.horizon}"
