"""Synthetic trajectory generators.

Three generators mirror the paper's three data sources:

* :class:`RandomWaypointGenerator` — the GMSF random-waypoint individuals
  (RWP datasets).
* :class:`RoadNetworkGenerator` — Brinkhoff-style vehicles on a road network
  (VN datasets).
* :class:`SparseGpsTraceGenerator` — coarse GPS fixes re-interpolated to the
  tick grid (substitute for the real Beijing dataset, ``VN_R``).
"""

from __future__ import annotations

from .base import TrajectoryGenerator
from .gps_traces import SparseGpsTraceGenerator
from .random_waypoint import RandomWaypointGenerator
from .road_network import RoadNetwork, RoadNetworkGenerator

__all__ = [
    "TrajectoryGenerator",
    "RandomWaypointGenerator",
    "RoadNetworkGenerator",
    "RoadNetwork",
    "SparseGpsTraceGenerator",
]
