"""The high-level facade tying datasets, indexes, and query processing together.

:class:`ReachabilityEngine` is the entry point most users want: give it a
trajectory dataset (or the name of a canned one), ask it to build ReachGrid
and/or ReachGraph, and evaluate reachability queries through whichever method
you choose — the engine wires up contact extraction, index construction, and
the query processors, and exposes the baselines on the same dataset for
comparison.

Example
-------
>>> from repro import ReachabilityEngine, ReachabilityQuery, TimeInterval
>>> engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
>>> engine.build_reachgraph()
>>> query = ReachabilityQuery(source=0, destination=5, interval=TimeInterval(0, 100))
>>> result = engine.evaluate(query, method="reachgraph")
>>> bool(result), result.io  # doctest: +SKIP
(True, 3.1)
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.config import (
    ContactConfig,
    GrailConfig,
    ReachGraphConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from ..core.errors import ConfigurationError, IndexNotBuiltError, QueryError
from ..core.types import QueryResult, ReachabilityQuery
from ..contacts.join import build_contact_network
from ..contacts.network import ContactNetwork
from ..trajectory.model import TrajectoryDataset

__all__ = ["ReachabilityEngine"]

#: Query evaluation methods understood by :meth:`ReachabilityEngine.evaluate`.
METHODS = (
    "reachgrid",
    "reachgraph",
    "reachgraph-b-bfs",
    "reachgraph-e-dfs",
    "spj",
    "grail-memory",
    "grail-disk",
    "reference",
)


class ReachabilityEngine:
    """One-stop facade over the indexes and baselines of this library."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        contact_config: ContactConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> None:
        self.dataset = dataset
        self.contact_config = contact_config or ContactConfig()
        self.storage_config = storage_config or StorageConfig()
        self._network: Optional[ContactNetwork] = None
        self._reachgrid = None
        self._reachgrid_processor = None
        self._reachgraph = None
        self._reachgraph_processor = None
        self._trajectory_store = None
        self._spj = None
        self._grail = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset_name(
        cls,
        name: str,
        storage_config: StorageConfig | None = None,
    ) -> "ReachabilityEngine":
        """Create an engine from one of the canned dataset specs."""
        from ..workloads.datasets import DATASETS

        spec = DATASETS[name]
        return cls(
            spec.generate(),
            contact_config=spec.contact_config,
            storage_config=storage_config,
        )

    # ------------------------------------------------------------------
    # shared substrate
    # ------------------------------------------------------------------
    @property
    def contact_network(self) -> ContactNetwork:
        """The contact network of the dataset (built lazily, then cached)."""
        if self._network is None:
            self._network = build_contact_network(
                self.dataset, self.contact_config.distance_threshold
            )
        return self._network

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def build_reachgrid(self, config: ReachGridConfig | None = None):
        """Build the ReachGrid index (returns it)."""
        from ..reachgrid import ReachGridIndex, ReachGridQueryProcessor

        self._reachgrid = ReachGridIndex(
            self.dataset,
            config=config,
            contact_config=self.contact_config,
            storage_config=self.storage_config,
        ).build()
        self._reachgrid_processor = ReachGridQueryProcessor(self._reachgrid)
        return self._reachgrid

    def build_reachgraph(self, config: ReachGraphConfig | None = None):
        """Build the ReachGraph index (returns it)."""
        from ..reachgraph import ReachGraphIndex, ReachGraphQueryProcessor

        self._reachgraph = ReachGraphIndex(
            self.dataset,
            config=config,
            contact_config=self.contact_config,
            storage_config=self.storage_config,
            contact_network=self.contact_network,
        ).build()
        self._reachgraph_processor = ReachGraphQueryProcessor(self._reachgraph)
        return self._reachgraph

    def build_trajectory_store(self):
        """Build the raw trajectory store used by the SPJ baseline (returns it)."""
        from ..baselines.spj import SpjBaseline
        from ..trajectory.store import TrajectoryStore

        self._trajectory_store = TrajectoryStore(self.dataset).build()
        self._spj = SpjBaseline(
            self._trajectory_store, self.contact_config.distance_threshold
        )
        return self._trajectory_store

    def streaming(
        self,
        streaming_config: StreamingConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        shards: int | None = None,
        router: str | None = None,
        async_mode: bool = False,
        storage_backend: str | None = None,
        storage_dir: str | None = None,
        graph_mode: str | None = None,
        merge_executor: str | None = None,
        merge_workers: int | None = None,
    ):
        """A streaming reachability service configured like this engine
        (same contact and storage parameters).

        With one shard (the default) this is a
        :class:`~repro.streaming.service.StreamingReachabilityService`; asking
        for more — ``engine.streaming(shards=4)``, or a config with
        ``shards > 1`` — returns a
        :class:`~repro.streaming.coordinator.ShardedReachabilityService`
        partitioning the stream across that many ingestors (``router`` picks
        the partitioning, see ``SHARD_ROUTERS``).  Either way the service
        starts empty; feed it with ``service.drain(engine.dataset)`` to replay
        this engine's dataset as a stream, or ingest batches from any
        :mod:`repro.streaming.source`.

        ``async_mode=True`` instead returns an
        :class:`~repro.streaming.async_service.AsyncReachabilityService`
        (``await ingest`` / ``await query`` with per-shard ingest loops and
        background merges) over the configured shard count; feed it with
        ``await service.replay(engine.dataset)`` from a running event loop.

        ``storage_backend`` overrides this engine's block-device backend for
        the service (one of ``STORAGE_BACKENDS``: ``sim``, ``file``,
        ``mmap``), and ``storage_dir`` pins the persistent backends' files to
        a real directory so the service's queryable state survives
        ``service.close()`` — or a crash.  Every service shape reopens:
        :meth:`reopen_streaming` (or, directly,
        :meth:`repro.streaming.SnapshotQueryService.open` /
        :meth:`repro.streaming.ShardedSnapshotQueryService.open` /
        :meth:`repro.streaming.AsyncReachabilityService.reopen`) restores the
        committed prefix from the device files, and
        :meth:`repro.streaming.StreamingReachabilityService.open` resumes
        *ingesting* an unsharded stream from its journaled checkpoint.

        ``graph_mode`` selects how merges advance the snapshot's ReachGraph
        fast path (one of ``GRAPH_MODES``): ``incremental`` patches the
        reduced DAG in place so merge cost tracks the delta, ``rebuild``
        reconstructs it from scratch every merge (kept for comparisons).

        ``merge_executor`` selects where the pure build phase of merges runs
        (one of ``MERGE_EXECUTORS``): ``inline`` on the calling thread,
        ``thread`` on a thread pool, ``process`` on a
        ``ProcessPoolExecutor`` of ``merge_workers`` processes — true
        multi-core builds, with answers bit-identical across all three (see
        :mod:`repro.streaming.parallel` and ``docs/MERGE_PROTOCOL.md``).
        """
        config = streaming_config or StreamingConfig()
        if shards is not None or router is not None:
            config = config.with_shards(
                config.shards if shards is None else shards, router=router
            )
        if graph_mode is not None:
            config = config.with_graph_mode(graph_mode)
        if merge_executor is not None or merge_workers is not None:
            config = config.with_merge_executor(
                merge_executor or config.merge_executor, merge_workers
            )
        storage_config = self.storage_config
        if storage_backend is not None or storage_dir is not None:
            effective = storage_backend or storage_config.backend
            if storage_dir is not None and effective == "sim":
                # Accepting the directory while the in-memory backend ignores
                # it would silently drop the persistence the caller asked for.
                raise ConfigurationError(
                    "storage_dir requires a persistent storage_backend "
                    "('file' or 'mmap'); the 'sim' backend keeps blocks in "
                    "memory and would never write to it"
                )
            storage_config = storage_config.with_backend(
                effective, storage_dir=storage_dir
            )
        if async_mode:
            from ..streaming.async_service import AsyncReachabilityService

            return AsyncReachabilityService.for_dataset(
                self.dataset,
                contact_config=self.contact_config,
                grid_config=grid_config,
                streaming_config=config,
                storage_config=storage_config,
            )
        if config.shards > 1:
            from ..streaming.coordinator import ShardedReachabilityService

            return ShardedReachabilityService.for_dataset(
                self.dataset,
                contact_config=self.contact_config,
                grid_config=grid_config,
                streaming_config=config,
                storage_config=storage_config,
            )
        from ..streaming.service import StreamingReachabilityService

        return StreamingReachabilityService.for_dataset(
            self.dataset,
            contact_config=self.contact_config,
            grid_config=grid_config,
            streaming_config=config,
            storage_config=storage_config,
        )

    @staticmethod
    def reopen_streaming(
        storage_backend: str,
        storage_dir: str,
        name: str | None = None,
        sharded: bool = False,
    ):
        """Reopen the durable state a streaming service left in ``storage_dir``.

        The counterpart of :meth:`streaming` after a ``close()`` — or after a
        crash: only what the service's last flush committed is restored, which
        is exactly the recovery guarantee the services give.  Returns a
        read-only query service over the committed prefix — a
        :class:`~repro.streaming.service.SnapshotQueryService` for the
        unsharded shape (answering through its restored ReachGraph index when
        one was persisted), or, with ``sharded=True``, a
        :class:`~repro.streaming.coordinator.ShardedSnapshotQueryService`
        that restores every shard plus the cross-shard contact log and
        answers at the committed global low-watermark (async services close
        into this shape too — pass their name, default ``async-stream``).

        ``name`` must match the name the state was written under.  Left
        unset, it defaults to the shapes' constructor defaults (``stream``
        unsharded, ``sharded-stream`` sharded) — but services created through
        :meth:`streaming` (i.e. ``for_dataset``) persist under
        ``<dataset>-stream`` / ``<dataset>-sharded`` / ``<dataset>-async``
        instead; pass the service's ``.name``.  To *resume ingesting* an
        unsharded stream instead of just querying it, use
        :meth:`repro.streaming.StreamingReachabilityService.open`.
        """
        from ..streaming.coordinator import ShardedSnapshotQueryService
        from ..streaming.service import SnapshotQueryService

        if storage_backend == "sim":
            raise ConfigurationError(
                "reopen_streaming requires a persistent storage_backend "
                "('file' or 'mmap'); the 'sim' backend leaves nothing behind "
                "to reopen"
            )
        storage_config = StorageConfig(
            backend=storage_backend, storage_dir=storage_dir
        )
        if sharded:
            return ShardedSnapshotQueryService.open(
                storage_config, name=name or "sharded-stream"
            )
        return SnapshotQueryService.open(storage_config, name=name or "stream")

    def build_grail(self, config: GrailConfig | None = None):
        """Build the GRAIL baseline index over the reduced DAG (returns it)."""
        from ..baselines.grail import GrailIndex
        from ..reachgraph.reduction import reduce_contact_network

        dag, _ = reduce_contact_network(self.contact_network)
        self._grail = GrailIndex(
            dag, config=config, storage_config=self.storage_config
        ).build()
        return self._grail

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def reachgrid(self):
        """The built ReachGrid index."""
        if self._reachgrid is None:
            raise IndexNotBuiltError("call build_reachgrid() first")
        return self._reachgrid

    @property
    def reachgraph(self):
        """The built ReachGraph index."""
        if self._reachgraph is None:
            raise IndexNotBuiltError("call build_reachgraph() first")
        return self._reachgraph

    @property
    def grail(self):
        """The built GRAIL baseline index."""
        if self._grail is None:
            raise IndexNotBuiltError("call build_grail() first")
        return self._grail

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def evaluate(self, query: ReachabilityQuery, method: str = "reachgraph") -> QueryResult:
        """Evaluate a reachability query with the chosen method.

        ``method`` is one of ``reachgrid``, ``reachgraph`` (BM-BFS),
        ``reachgraph-b-bfs``, ``reachgraph-e-dfs``, ``spj``, ``grail-memory``,
        ``grail-disk``, or ``reference`` (the in-memory ground truth).
        """
        if method not in METHODS:
            raise QueryError(
                f"unknown method {method!r}; choose one of: {', '.join(METHODS)}"
            )
        if method == "reference":
            from ..baselines.reference import evaluate_reachability

            return evaluate_reachability(self.contact_network, query)
        if method == "reachgrid":
            if self._reachgrid_processor is None:
                raise IndexNotBuiltError("call build_reachgrid() first")
            return self._reachgrid_processor.evaluate(query)
        if method in ("reachgraph", "reachgraph-b-bfs", "reachgraph-e-dfs"):
            if self._reachgraph_processor is None:
                raise IndexNotBuiltError("call build_reachgraph() first")
            strategy = {
                "reachgraph": "bm-bfs",
                "reachgraph-b-bfs": "b-bfs",
                "reachgraph-e-dfs": "e-dfs",
            }[method]
            return self._reachgraph_processor.evaluate(query, strategy=strategy)
        if method == "spj":
            if self._spj is None:
                raise IndexNotBuiltError("call build_trajectory_store() first")
            return self._spj.evaluate(query)
        if method == "grail-memory":
            return self.grail.evaluate_memory(query)
        return self.grail.evaluate_disk(query)

    def compare(
        self,
        query: ReachabilityQuery,
        methods: Sequence[str] = ("reachgrid", "reachgraph"),
    ) -> Dict[str, QueryResult]:
        """Evaluate the same query with several methods and return all results."""
        return {method: self.evaluate(query, method) for method in methods}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = [
            name
            for name, index in (
                ("reachgrid", self._reachgrid),
                ("reachgraph", self._reachgraph),
                ("spj", self._spj),
                ("grail", self._grail),
            )
            if index is not None
        ]
        return f"ReachabilityEngine(dataset={self.dataset.name!r}, built={built})"
