"""Fundamental value types shared across the library.

The paper models time as a sequence of discrete *time instances* (the sampling
instants of the trajectory dataset).  We follow that convention: a time
instance is a non-negative integer tick, and a :class:`TimeInterval` is an
inclusive pair of ticks.  Space is the Euclidean plane; a :class:`Point` is an
``(x, y)`` pair of floats measured in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from .errors import InvalidIntervalError

__all__ = [
    "ObjectId",
    "TimeInstant",
    "Point",
    "TimeInterval",
    "ReachabilityQuery",
    "QueryResult",
    "euclidean_distance",
]

# Type aliases used throughout the code base.  Object ids are small dense
# integers assigned by the dataset; time instants are integer ticks.
ObjectId = int
TimeInstant = int


def euclidean_distance(a: "Point", b: "Point") -> float:
    """Return the Euclidean distance between two points in metres."""
    return math.hypot(a.x - b.x, a.y - b.y)


@dataclass(frozen=True, slots=True)
class Point:
    """A position in the 2-D environment, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True, order=True)
class TimeInterval:
    """An inclusive interval ``[start, end]`` of integer time instances.

    The interval length is ``end - start + 1`` ticks, mirroring the paper's
    counting of time instances (an interval ``[t, t]`` contains one instance).
    """

    start: TimeInstant
    end: TimeInstant

    def __post_init__(self) -> None:
        if self.start < 0:
            raise InvalidIntervalError(self.start, self.end, "negative start")
        if self.end < self.start:
            raise InvalidIntervalError(self.start, self.end, "end before start")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of time instances covered by the interval."""
        return self.end - self.start + 1

    @property
    def duration(self) -> int:
        """``end - start``; the paper's ``|Tp|`` when used as a span."""
        return self.end - self.start

    @property
    def midpoint(self) -> TimeInstant:
        """The middle instant, used by bidirectional traversal."""
        return (self.start + self.end) // 2

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------
    def contains(self, t: TimeInstant) -> bool:
        """True when instant ``t`` lies inside the interval."""
        return self.start <= t <= self.end

    def contains_interval(self, other: "TimeInterval") -> bool:
        """True when ``other`` is fully inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """True when the two intervals share at least one instant."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """The overlapping sub-interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return TimeInterval(lo, hi)

    def union_span(self, other: "TimeInterval") -> "TimeInterval":
        """Smallest interval covering both intervals (they need not touch)."""
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def clipped(self, lo: TimeInstant, hi: TimeInstant) -> Optional["TimeInterval"]:
        """Clip to ``[lo, hi]``; ``None`` if nothing remains."""
        return self.intersection(TimeInterval(lo, hi))

    def shifted(self, delta: int) -> "TimeInterval":
        """Return the interval translated by ``delta`` ticks."""
        return TimeInterval(self.start + delta, self.end + delta)

    # ------------------------------------------------------------------
    # iteration / splitting
    # ------------------------------------------------------------------
    def instants(self) -> Iterator[TimeInstant]:
        """Iterate the individual time instances of the interval."""
        return iter(range(self.start, self.end + 1))

    def split(self, chunk: int) -> Iterator["TimeInterval"]:
        """Split into consecutive sub-intervals of at most ``chunk`` instants.

        This is the quantization step used by ReachGrid to break a query
        interval into the temporal-grid intervals it overlaps.
        """
        if chunk <= 0:
            raise InvalidIntervalError(self.start, self.end, "chunk must be positive")
        lo = self.start
        while lo <= self.end:
            hi = min(lo + chunk - 1, self.end)
            yield TimeInterval(lo, hi)
            lo = hi + 1

    def __iter__(self) -> Iterator[TimeInstant]:
        return self.instants()

    def __len__(self) -> int:
        return self.length

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end}]"


@dataclass(frozen=True, slots=True)
class ReachabilityQuery:
    """A reachability query ``q : source ~interval~> destination``.

    The query asks whether a contact path exists from ``source`` to
    ``destination`` using only contacts whose validity intervals overlap
    ``interval`` and which are ordered in time (Section 3.2 of the paper).
    """

    source: ObjectId
    destination: ObjectId
    interval: TimeInterval

    def reversed(self) -> "ReachabilityQuery":
        """The query with source and destination swapped (same interval)."""
        return ReachabilityQuery(self.destination, self.source, self.interval)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"q: o{self.source} ~{self.interval}~> o{self.destination}"


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Outcome of evaluating a reachability query.

    Attributes
    ----------
    reachable:
        Whether the destination is reachable from the source.
    earliest_time:
        The first time instance at which the destination is known to be
        reachable (``None`` when not reachable, or when the evaluation
        strategy cannot determine it, e.g. bidirectional traversal).
    io:
        Normalized IO count charged to the query (``random + sequential/20``).
    random_ios / sequential_ios:
        Raw IO counters.
    cpu_seconds:
        Pure CPU time spent evaluating the query, excluding simulated IO.
    visited:
        Number of index entries (cells or graph vertices) touched.
    """

    reachable: bool
    earliest_time: Optional[TimeInstant] = None
    io: float = 0.0
    random_ios: int = 0
    sequential_ios: int = 0
    cpu_seconds: float = 0.0
    visited: int = 0

    def __bool__(self) -> bool:
        return self.reachable


def span_of(instants: Iterable[TimeInstant]) -> TimeInterval:
    """Return the smallest :class:`TimeInterval` containing all ``instants``."""
    seq: Sequence[TimeInstant] = list(instants)
    if not seq:
        raise InvalidIntervalError(0, -1, "cannot span an empty set of instants")
    return TimeInterval(min(seq), max(seq))


__all__.append("span_of")
