"""Core value types, configuration, and the high-level engine facade."""

from __future__ import annotations

from .config import (
    DEFAULT_RESOLUTIONS,
    MERGE_POLICIES,
    ContactConfig,
    GrailConfig,
    ReachGraphConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from .errors import (
    ConfigurationError,
    ContactNetworkError,
    DatasetError,
    IndexConstructionError,
    IndexNotBuiltError,
    InvalidIntervalError,
    QueryError,
    ReproError,
    StorageError,
    StreamingError,
    TrajectoryError,
    UnknownObjectError,
)
from .types import (
    ObjectId,
    Point,
    QueryResult,
    ReachabilityQuery,
    TimeInstant,
    TimeInterval,
    euclidean_distance,
    span_of,
)

__all__ = [
    "ObjectId",
    "TimeInstant",
    "Point",
    "TimeInterval",
    "ReachabilityQuery",
    "QueryResult",
    "euclidean_distance",
    "span_of",
    "StorageConfig",
    "ContactConfig",
    "ReachGridConfig",
    "ReachGraphConfig",
    "GrailConfig",
    "StreamingConfig",
    "MERGE_POLICIES",
    "DEFAULT_RESOLUTIONS",
    "ReproError",
    "ConfigurationError",
    "StorageError",
    "TrajectoryError",
    "UnknownObjectError",
    "ContactNetworkError",
    "IndexConstructionError",
    "IndexNotBuiltError",
    "QueryError",
    "InvalidIntervalError",
    "DatasetError",
    "StreamingError",
]
