"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing unrelated
exceptions.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StorageError",
    "BlockOutOfRangeError",
    "BufferPoolError",
    "TrajectoryError",
    "UnknownObjectError",
    "ContactNetworkError",
    "IndexConstructionError",
    "IndexNotBuiltError",
    "QueryError",
    "InvalidIntervalError",
    "DatasetError",
    "StreamingError",
    "WatermarkRegressionError",
    "ShardingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class StorageError(ReproError):
    """Base class for failures in the simulated storage substrate."""


class BlockOutOfRangeError(StorageError):
    """A block id outside the allocated range of a simulated disk was accessed."""

    def __init__(self, block_id: int, capacity: int) -> None:
        super().__init__(
            f"block {block_id} is outside the allocated range [0, {capacity})"
        )
        self.block_id = block_id
        self.capacity = capacity


class BufferPoolError(StorageError):
    """The buffer pool was asked to do something impossible (e.g. pin too much)."""


class TrajectoryError(ReproError):
    """A trajectory is malformed (unsorted samples, empty, wrong horizon...)."""


class UnknownObjectError(ReproError):
    """An object id was referenced that the dataset/index does not know about."""

    def __init__(self, object_id: int) -> None:
        super().__init__(f"unknown object id: {object_id}")
        self.object_id = object_id


class ContactNetworkError(ReproError):
    """The contact network is inconsistent with the trajectory dataset."""


class IndexConstructionError(ReproError):
    """An index could not be constructed from the given dataset."""


class IndexNotBuiltError(ReproError):
    """A query was issued against an index that has not been built yet."""


class QueryError(ReproError):
    """A reachability query is malformed or references unknown entities."""


class InvalidIntervalError(QueryError):
    """A time interval has a negative length or falls outside the horizon."""

    def __init__(self, start: int, end: int, reason: str = "") -> None:
        message = f"invalid time interval [{start}, {end}]"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.start = start
        self.end = end


class DatasetError(ReproError):
    """A dataset specification or generated dataset is invalid."""


class StreamingError(ReproError):
    """The event stream violates the ingestion contract (out-of-order batches,
    samples beyond the watermark, inconsistent object horizons...)."""


class WatermarkRegressionError(StreamingError):
    """A batch's watermark regressed below the ingestor's current watermark.

    Accepting such a batch would re-open temporal grid intervals that were
    already flushed to disk, so the ingestor rejects it before touching any
    state (the batch can be corrected and re-sent).
    """

    def __init__(self, batch_watermark: int, current_watermark: int) -> None:
        super().__init__(
            f"batch watermark {batch_watermark} regressed below the "
            f"current watermark {current_watermark}"
        )
        self.batch_watermark = batch_watermark
        self.current_watermark = current_watermark


class ShardingError(StreamingError):
    """The sharded ingestion contract was violated (bad shard id, a sample
    routed to the wrong shard, inconsistent per-shard watermarks...)."""
