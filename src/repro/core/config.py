"""Configuration objects for datasets, storage, and index construction.

All tunables from the paper's experimental section are represented here so
that the benchmark harness can sweep them exactly as the paper does:

* ReachGrid: temporal resolution ``RT`` (ticks per temporal cell) and spatial
  resolution ``RS`` (metres per spatial cell) — Figure 8.
* ReachGraph: partition depth ``dp`` and the set of long-edge resolutions —
  Figure 12 and Table 4.
* Storage: block size, buffer pool capacity, and the sequential/random IO
  normalization factor (20 sequential = 1 random).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from .errors import ConfigurationError

__all__ = [
    "StorageConfig",
    "ReachGridConfig",
    "ReachGraphConfig",
    "GrailConfig",
    "ContactConfig",
    "StreamingConfig",
    "GRAPH_MODES",
    "MERGE_EXECUTORS",
    "MERGE_POLICIES",
    "SHARD_ROUTERS",
    "SNAPSHOT_MODES",
    "STORAGE_BACKENDS",
    "DEFAULT_RESOLUTIONS",
]

#: Long-edge resolutions used by the paper's optimal ReachGraph (Section
#: 6.2.1.4): HN = DN1 ∪ DN2 ∪ ... ∪ DN32.
DEFAULT_RESOLUTIONS: Tuple[int, ...] = (2, 4, 8, 16, 32)

#: Block-device backends understood by :class:`StorageConfig` (implemented in
#: :mod:`repro.storage.backends`): ``sim`` is the in-memory simulated disk the
#: paper's figures run on, ``file`` an append-only block file with an explicit
#: page cache and fsync'd flush, ``mmap`` a memory-mapped block array.
STORAGE_BACKENDS: Tuple[str, ...] = ("sim", "file", "mmap")


@dataclass(frozen=True, slots=True)
class StorageConfig:
    """Parameters of the simulated disk and buffer pool.

    Attributes
    ----------
    block_size:
        Capacity of a disk block in *record slots* (the paper's 4 KiB page
        expressed in fixed-size records; see :mod:`repro.storage.blockfile`).
        The default of 16 keeps the blocks-per-dataset ratio of the scaled
        datasets comparable to the paper's multi-hundred-GB testbed, so the
        random/sequential IO trade-offs keep their shape.
    buffer_blocks:
        Number of blocks the LRU buffer pool can hold.
    sequential_cost:
        How many sequential accesses cost as much as one random access.  The
        paper normalizes with a factor of 20 (citing Corral et al.).
    backend:
        One of :data:`STORAGE_BACKENDS` — which block device implementation
        a :class:`~repro.storage.StorageSystem` places its blocks on.
    storage_dir:
        Directory holding the backing files of persistent backends.  ``None``
        (the default) uses a private temporary directory that is removed when
        the storage system is garbage collected — set a real directory to get
        close/reopen persistence.
    page_cache_blocks:
        Capacity of the ``file`` backend's explicit page cache, in blocks
        (``0`` disables it).  Distinct from ``buffer_blocks``: the buffer
        pool models IO-free re-reads, the page cache merely skips repeated
        payload decoding for blocks that are physically read again.
    mmap_slot_bytes:
        Fixed slot size of the ``mmap`` backend; payloads pickling past it
        spill into the backend's overflow table.
    """

    block_size: int = 16
    buffer_blocks: int = 256
    sequential_cost: int = 20
    backend: str = "sim"
    storage_dir: str | None = None
    page_cache_blocks: int = 64
    mmap_slot_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if self.buffer_blocks <= 0:
            raise ConfigurationError("buffer_blocks must be positive")
        if self.sequential_cost <= 0:
            raise ConfigurationError("sequential_cost must be positive")
        if self.backend not in STORAGE_BACKENDS:
            raise ConfigurationError(
                f"unknown storage backend {self.backend!r}; "
                f"choose one of {', '.join(STORAGE_BACKENDS)}"
            )
        if self.page_cache_blocks < 0:
            raise ConfigurationError("page_cache_blocks must be non-negative")
        if self.mmap_slot_bytes <= 8:
            raise ConfigurationError("mmap_slot_bytes must exceed the slot header")

    def with_backend(
        self, backend: str, storage_dir: str | None = None
    ) -> "StorageConfig":
        """Copy of this config on a different backend (and optional directory)."""
        if storage_dir is None:
            return replace(self, backend=backend)
        return replace(self, backend=backend, storage_dir=storage_dir)


@dataclass(frozen=True, slots=True)
class ContactConfig:
    """Parameters of contact extraction (the window trajectory join).

    ``distance_threshold`` is the paper's ``dT``: 25 m for Bluetooth-style
    individual contacts (RWP datasets), 300 m for DSRC vehicle contacts (VN
    datasets).
    """

    distance_threshold: float = 25.0

    def __post_init__(self) -> None:
        if self.distance_threshold <= 0:
            raise ConfigurationError("distance_threshold must be positive")


@dataclass(frozen=True, slots=True)
class ReachGridConfig:
    """ReachGrid construction parameters.

    Attributes
    ----------
    temporal_resolution:
        Number of time instances per temporal grid interval (the paper's
        optimal ``RT`` is 20 for both dataset families).
    spatial_resolution:
        Side length of a spatial grid cell in metres (the paper's optimal
        ``RS`` is 1024 m for RWP and 17 km for VN).
    """

    temporal_resolution: int = 20
    spatial_resolution: float = 1024.0

    def __post_init__(self) -> None:
        if self.temporal_resolution <= 0:
            raise ConfigurationError("temporal_resolution must be positive")
        if self.spatial_resolution <= 0:
            raise ConfigurationError("spatial_resolution must be positive")


@dataclass(frozen=True, slots=True)
class ReachGraphConfig:
    """ReachGraph construction parameters.

    Attributes
    ----------
    resolutions:
        Long-edge resolutions for the augmentation phase.  ``()`` builds a
        single-resolution graph (DN1 only), which is what the B-BFS baseline
        traverses.
    partition_depth:
        The disk-placement partition depth ``dp`` (paper optimum: 32).
    interval_labels:
        Maintain GRAIL-style min-postorder interval labels over the reduced
        DAG (see :mod:`repro.reachgraph.labels`).  Labels give queries O(1)
        negative rejection and frontier pruning; disabling them falls back
        to pure traversal.
    label_dirty_ratio:
        Bound on the incremental label-patch pass: when an increment dirties
        more than this fraction of the vertex labels, the index relabels
        from scratch instead (ledger-counted either way).
    """

    resolutions: Tuple[int, ...] = DEFAULT_RESOLUTIONS
    partition_depth: int = 32
    interval_labels: bool = True
    label_dirty_ratio: float = 0.25

    def __post_init__(self) -> None:
        if self.partition_depth <= 0:
            raise ConfigurationError("partition_depth must be positive")
        if not 0.0 <= self.label_dirty_ratio <= 1.0:
            raise ConfigurationError("label_dirty_ratio must be within [0, 1]")
        seen = set()
        for resolution in self.resolutions:
            if resolution <= 1:
                raise ConfigurationError(
                    f"long-edge resolution must exceed 1, got {resolution}"
                )
            if resolution in seen:
                raise ConfigurationError(
                    f"duplicate long-edge resolution: {resolution}"
                )
            seen.add(resolution)

    @property
    def sorted_resolutions(self) -> Tuple[int, ...]:
        """Resolutions sorted ascending (DN2 before DN32)."""
        return tuple(sorted(self.resolutions))

    def with_resolutions(self, resolutions: Sequence[int]) -> "ReachGraphConfig":
        """Copy of this config with a different resolution set."""
        return ReachGraphConfig(
            resolutions=tuple(resolutions),
            partition_depth=self.partition_depth,
            interval_labels=self.interval_labels,
            label_dirty_ratio=self.label_dirty_ratio,
        )

    def with_partition_depth(self, depth: int) -> "ReachGraphConfig":
        """Copy of this config with a different partition depth."""
        return ReachGraphConfig(
            resolutions=self.resolutions,
            partition_depth=depth,
            interval_labels=self.interval_labels,
            label_dirty_ratio=self.label_dirty_ratio,
        )

    def with_interval_labels(self, enabled: bool) -> "ReachGraphConfig":
        """Copy of this config with the label fast path toggled."""
        return ReachGraphConfig(
            resolutions=self.resolutions,
            partition_depth=self.partition_depth,
            interval_labels=enabled,
            label_dirty_ratio=self.label_dirty_ratio,
        )


#: Merge-policy names understood by :class:`StreamingConfig` and the
#: streaming subsystem (see :mod:`repro.streaming.policy`).
MERGE_POLICIES: Tuple[str, ...] = ("delta-size", "elapsed-intervals", "amplification")

#: Shard-router names understood by :class:`StreamingConfig` and the sharded
#: ingestion layer (see :mod:`repro.streaming.router`): ``hash`` partitions
#: the stream by object-id hash, ``spatial`` pins each object to the shard of
#: the spatial grid cell it was first observed in.
SHARD_ROUTERS: Tuple[str, ...] = ("hash", "spatial")

#: How a streaming merge writes the new snapshot's contact extents (see
#: :mod:`repro.streaming.delta`): ``lsm`` appends only the freshly frozen
#: contacts as a new run and folds runs with a background compaction, while
#: ``rebuild`` rewrites the complete prefix from scratch on every merge (the
#: pre-LSM behaviour, kept for write-amplification comparisons).
SNAPSHOT_MODES: Tuple[str, ...] = ("lsm", "rebuild")

#: How a streaming merge advances the snapshot's ReachGraph fast path (see
#: :mod:`repro.reachgraph.index`): ``incremental`` patches the reduced DAG in
#: place — appending contacts at the frontier extends or splits open component
#: vertices, newly complete augmentation windows add their long edges, and
#: only dirty partitions are rewritten — while ``rebuild`` reduces, augments,
#: partitions, and writes the whole graph from scratch on every merge (the
#: pre-incremental behaviour, kept for write-amplification comparisons).
GRAPH_MODES: Tuple[str, ...] = ("incremental", "rebuild")

#: Where the pure build phase of a streaming merge executes (see
#: :mod:`repro.streaming.parallel`): ``inline`` builds on the calling thread
#: (the historical behaviour), ``thread`` on a thread pool (overlaps builds
#: with ingest IO but shares the GIL), ``process`` on a
#: :class:`~concurrent.futures.ProcessPoolExecutor` — true multi-core builds,
#: enabled by ``MergeInputs`` being picklable and ``build_merge`` pure.
MERGE_EXECUTORS: Tuple[str, ...] = ("inline", "thread", "process")


@dataclass(frozen=True, slots=True)
class StreamingConfig:
    """Parameters of the streaming ingestion subsystem.

    Streaming ingestion stages new contacts in an in-memory delta overlay
    consulted at query time alongside the frozen snapshot indexes; one of the
    merge policies decides when the delta is folded into a fresh snapshot
    (EMBANKS-style write-optimized staging in front of read-optimized
    indexes).

    Attributes
    ----------
    batch_ticks:
        How many time instances a replay source packs into one
        :class:`~repro.streaming.events.StreamBatch`.
    merge_policy:
        One of :data:`MERGE_POLICIES` — ``delta-size`` merges once the delta
        holds ``max_delta_contacts`` contacts, ``elapsed-intervals`` merges
        every ``max_elapsed_intervals`` temporal grid intervals, and
        ``amplification`` merges when the delta grows past
        ``max_amplification`` times the snapshot's contact count.
    max_delta_contacts / max_elapsed_intervals / max_amplification:
        Thresholds of the respective policies.
    query_cache_size:
        Capacity of the service's LRU query-result cache (``0`` disables it);
        the cache is invalidated whenever the watermark advances.
    build_reachgraph_on_merge:
        Whether a merge also rebuilds a ReachGraph index over the new
        snapshot, giving post-merge queries the paper's fast path.  Ignored by
        the sharded service, whose per-shard snapshots are never individually
        authoritative (cross-shard contacts live outside every shard).
    shards:
        Number of ingestion shards.  ``1`` keeps the single
        :class:`~repro.streaming.service.StreamingReachabilityService`;
        anything larger makes :meth:`repro.ReachabilityEngine.streaming`
        return a :class:`~repro.streaming.coordinator.ShardedReachabilityService`
        partitioning the event stream across that many ingestors.
    router:
        One of :data:`SHARD_ROUTERS` — how sample events are partitioned
        across shards (``hash``: by object-id hash; ``spatial``: sticky, by
        the spatial grid cell of the object's first observed position).
    async_queue_depth:
        Capacity (in batches) of each per-shard ingest queue of the asyncio
        front-end (:class:`~repro.streaming.async_service.AsyncReachabilityService`,
        ``engine.streaming(async_mode=True)``).  A full queue backpressures
        ``await ingest(...)`` until the shard's ingest loop catches up.
    snapshot_mode:
        One of :data:`SNAPSHOT_MODES` — ``lsm`` (default) appends each merge's
        freshly frozen contacts as a new snapshot run and compacts runs in the
        background, ``rebuild`` rewrites the complete snapshot from scratch on
        every merge (the pre-LSM write path, kept for comparisons).
    compaction_max_runs:
        Per-level fanout of the LSM path's size-ratio leveled compaction:
        once a merge leaves more than this many live runs on one level, a
        compaction folds that level's runs into a single run one level up
        (cascading if the next level overflows in turn), superseding the old
        extents.  Ignored in ``rebuild`` mode.
    gc_trigger_ratio:
        Device garbage fraction past which the service runs
        :meth:`~repro.storage.StorageSystem.reclaim` on its devices after a
        merge adoption or flush.  ``0.0`` (the default) disables automatic
        GC — garbage is still measured by the superseded-block ledgers and
        can be reclaimed explicitly via
        :meth:`~repro.streaming.service.StreamingReachabilityService.reclaim`.
    graph_repack_min_partitions:
        Cold-partition threshold of the incremental ReachGraph's frontier
        repack: once a merge leaves at least this many cold (closed)
        under-filled frontier partitions, they are repacked into
        depth-``dp``-sized extents to restore read locality.  ``0`` (the
        default) disables repacking.
    graph_mode:
        One of :data:`GRAPH_MODES` — how a merge advances the snapshot's
        ReachGraph index.  ``incremental`` (default) computes a DAG patch over
        the freshly frozen ticks and applies it to the live index, rewriting
        only dirty partitions; ``rebuild`` constructs a fresh index over the
        full prefix on every merge.  Only meaningful with
        ``snapshot_mode="lsm"`` and ``build_reachgraph_on_merge=True`` (the
        overlay-rebuild snapshot mode replaces the whole overlay, index
        included, and services that skip the fast path have no graph to
        maintain).
    merge_executor:
        One of :data:`MERGE_EXECUTORS` — where the pure build phase of a
        merge runs (see :mod:`repro.streaming.parallel`).  ``inline``
        (default) builds on the calling thread; ``thread`` builds on a
        thread pool; ``process`` ships the picklable
        :class:`~repro.streaming.service.MergeInputs` to a process pool for
        true multi-core builds.  Adoption always happens on the thread that
        owns the overlay, so answers are bit-identical across executors.
    merge_workers:
        Pool size of the ``thread``/``process`` merge executors (ignored by
        ``inline``).  The sharded coordinator shares one pool across all
        shards, so this bounds machine-wide concurrent builds.
    graph_labels:
        Maintain GRAIL-style interval labels on the merge-built ReachGraph
        (see :mod:`repro.reachgraph.labels`): queries reject provable
        negatives in O(1) and prune traversal frontiers without IO.  Labels
        are patched inside each incremental merge and persisted through the
        overlay manifest; disabling them reverts to pure traversal.
    label_dirty_ratio:
        Bound on the incremental label patch: an increment dirtying more
        than this fraction of the labels triggers a full relabel instead
        (both outcomes ledger-counted in :class:`~repro.streaming.service.StreamingStats`).
    partition_cache_size:
        Capacity (in graph partitions) of the cross-query partition cache
        shared by the sync, async, and parallel query paths.  The cache is
        generation-stamped and invalidated whenever the graph mutates (merge
        adoption, repack, rebuild swap).  ``0`` disables it, restoring the
        per-query-only caching of earlier versions.
    """

    batch_ticks: int = 8
    merge_policy: str = "delta-size"
    max_delta_contacts: int = 256
    max_elapsed_intervals: int = 4
    max_amplification: float = 0.5
    query_cache_size: int = 128
    build_reachgraph_on_merge: bool = True
    shards: int = 1
    router: str = "hash"
    async_queue_depth: int = 4
    snapshot_mode: str = "lsm"
    compaction_max_runs: int = 4
    gc_trigger_ratio: float = 0.0
    graph_repack_min_partitions: int = 0
    graph_mode: str = "incremental"
    merge_executor: str = "inline"
    merge_workers: int = 2
    graph_labels: bool = True
    label_dirty_ratio: float = 0.25
    partition_cache_size: int = 64

    def __post_init__(self) -> None:
        if self.batch_ticks <= 0:
            raise ConfigurationError("batch_ticks must be positive")
        if self.merge_policy not in MERGE_POLICIES:
            raise ConfigurationError(
                f"unknown merge policy {self.merge_policy!r}; "
                f"choose one of {', '.join(MERGE_POLICIES)}"
            )
        if self.max_delta_contacts <= 0:
            raise ConfigurationError("max_delta_contacts must be positive")
        if self.max_elapsed_intervals <= 0:
            raise ConfigurationError("max_elapsed_intervals must be positive")
        if self.max_amplification <= 0:
            raise ConfigurationError("max_amplification must be positive")
        if self.query_cache_size < 0:
            raise ConfigurationError("query_cache_size must be non-negative")
        if self.shards <= 0:
            raise ConfigurationError("shards must be positive")
        if self.router not in SHARD_ROUTERS:
            raise ConfigurationError(
                f"unknown shard router {self.router!r}; "
                f"choose one of {', '.join(SHARD_ROUTERS)}"
            )
        if self.async_queue_depth <= 0:
            raise ConfigurationError("async_queue_depth must be positive")
        if self.snapshot_mode not in SNAPSHOT_MODES:
            raise ConfigurationError(
                f"unknown snapshot mode {self.snapshot_mode!r}; "
                f"choose one of {', '.join(SNAPSHOT_MODES)}"
            )
        if self.compaction_max_runs <= 0:
            raise ConfigurationError("compaction_max_runs must be positive")
        if not 0.0 <= self.gc_trigger_ratio < 1.0:
            raise ConfigurationError(
                "gc_trigger_ratio must be in [0.0, 1.0) (0 disables GC)"
            )
        if self.graph_repack_min_partitions < 0 or self.graph_repack_min_partitions == 1:
            raise ConfigurationError(
                "graph_repack_min_partitions must be 0 (disabled) or >= 2 "
                "(folding a single partition is pure write amplification)"
            )
        if self.graph_mode not in GRAPH_MODES:
            raise ConfigurationError(
                f"unknown graph mode {self.graph_mode!r}; "
                f"choose one of {', '.join(GRAPH_MODES)}"
            )
        if self.merge_executor not in MERGE_EXECUTORS:
            raise ConfigurationError(
                f"unknown merge executor {self.merge_executor!r}; "
                f"choose one of {', '.join(MERGE_EXECUTORS)}"
            )
        if self.merge_workers <= 0:
            raise ConfigurationError("merge_workers must be positive")
        if not 0.0 <= self.label_dirty_ratio <= 1.0:
            raise ConfigurationError("label_dirty_ratio must be within [0, 1]")
        if self.partition_cache_size < 0:
            raise ConfigurationError("partition_cache_size must be non-negative")

    def with_merge_policy(self, policy: str) -> "StreamingConfig":
        """Copy of this config with a different merge policy."""
        return replace(self, merge_policy=policy)

    def with_graph_mode(self, graph_mode: str) -> "StreamingConfig":
        """Copy of this config with a different ReachGraph merge mode."""
        return replace(self, graph_mode=graph_mode)

    def with_shards(self, shards: int, router: str | None = None) -> "StreamingConfig":
        """Copy of this config with a different shard count (and router)."""
        if router is None:
            return replace(self, shards=shards)
        return replace(self, shards=shards, router=router)

    def with_merge_executor(
        self, merge_executor: str, merge_workers: int | None = None
    ) -> "StreamingConfig":
        """Copy of this config with a different merge executor (and pool size)."""
        if merge_workers is None:
            return replace(self, merge_executor=merge_executor)
        return replace(
            self, merge_executor=merge_executor, merge_workers=merge_workers
        )


@dataclass(frozen=True, slots=True)
class GrailConfig:
    """GRAIL baseline parameters.

    ``num_labelings`` is the paper's ``d``, the number of randomized interval
    labelings per vertex (GRAIL's default of 5 is used).
    """

    num_labelings: int = 5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_labelings <= 0:
            raise ConfigurationError("num_labelings must be positive")
