"""ReachGrid: the spatiotemporal grid index of Section 4."""

from __future__ import annotations

from .cells import CellKey, GridGeometry
from .index import ReachGridBuildReport, ReachGridIndex
from .query import ReachGridQueryProcessor

__all__ = [
    "CellKey",
    "GridGeometry",
    "ReachGridIndex",
    "ReachGridBuildReport",
    "ReachGridQueryProcessor",
]
