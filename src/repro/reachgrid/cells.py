"""Spatiotemporal grid geometry for ReachGrid.

ReachGrid imposes two grids on the contact dataset (Section 4.1): a temporal
grid that partitions the horizon ``T`` into intervals of ``RT`` time instances
each, and a spatial grid of square cells of side ``RS`` that partitions the
environment within each temporal interval.  This module holds the pure
geometry: mapping times to temporal intervals, positions to spatial cells, and
rectangles to the set of cells they intersect.  No IO happens here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..core.config import ReachGridConfig
from ..core.errors import ConfigurationError
from ..core.types import Point, TimeInstant, TimeInterval
from ..trajectory.mbr import MBR

__all__ = ["CellKey", "GridGeometry", "grid_axis_cells", "clamped_spatial_cell"]

#: A grid cell is identified by (temporal interval index, column, row).
CellKey = Tuple[int, int, int]


def grid_axis_cells(extent: float, resolution: float) -> int:
    """Number of grid cells of side ``resolution`` covering ``extent`` metres.

    Shared by the batch :class:`GridGeometry` and the streaming ingestor so
    the two layouts can never diverge; float-safe, so fractional resolutions
    (including values below one metre) produce the correct cell count.
    """
    if resolution <= 0:
        raise ConfigurationError("spatial resolution must be positive")
    return max(1, math.ceil(extent / resolution))


def clamped_spatial_cell(
    position: Point, resolution: float, num_columns: int, num_rows: int
) -> Tuple[int, int]:
    """``(column, row)`` of the cell containing ``position``.

    Positions outside the environment are clamped to the border cells so that
    numerical jitter at the boundary never produces invalid keys.
    """
    col = min(max(int(position.x // resolution), 0), num_columns - 1)
    row = min(max(int(position.y // resolution), 0), num_rows - 1)
    return (col, row)


@dataclass(frozen=True, slots=True)
class GridGeometry:
    """The geometry of the ReachGrid spatiotemporal grid.

    Attributes
    ----------
    horizon:
        The full time horizon ``T`` being indexed.
    environment_size:
        Width and height of the environment ``E`` in metres.
    config:
        Temporal resolution ``RT`` (ticks per interval) and spatial resolution
        ``RS`` (metres per cell side).
    """

    horizon: TimeInterval
    environment_size: Tuple[float, float]
    config: ReachGridConfig

    def __post_init__(self) -> None:
        if self.environment_size[0] <= 0 or self.environment_size[1] <= 0:
            raise ConfigurationError("environment dimensions must be positive")

    # ------------------------------------------------------------------
    # temporal grid
    # ------------------------------------------------------------------
    @property
    def num_temporal_intervals(self) -> int:
        """Number of temporal grid intervals covering the horizon."""
        rt = self.config.temporal_resolution
        return -(-self.horizon.length // rt)

    def temporal_index(self, t: TimeInstant) -> int:
        """Index of the temporal interval containing tick ``t``."""
        if not self.horizon.contains(t):
            raise ConfigurationError(
                f"time {t} outside the indexed horizon {self.horizon}"
            )
        return (t - self.horizon.start) // self.config.temporal_resolution

    def temporal_interval(self, index: int) -> TimeInterval:
        """The time interval ``T_index`` of the temporal grid."""
        if index < 0 or index >= self.num_temporal_intervals:
            raise ConfigurationError(
                f"temporal interval index {index} out of range "
                f"[0, {self.num_temporal_intervals})"
            )
        rt = self.config.temporal_resolution
        start = self.horizon.start + index * rt
        end = min(start + rt - 1, self.horizon.end)
        return TimeInterval(start, end)

    def temporal_indices_overlapping(self, interval: TimeInterval) -> List[int]:
        """Indices of temporal intervals overlapping ``interval`` (clipped to T)."""
        clipped = interval.intersection(self.horizon)
        if clipped is None:
            return []
        return list(
            range(self.temporal_index(clipped.start), self.temporal_index(clipped.end) + 1)
        )

    # ------------------------------------------------------------------
    # spatial grid
    # ------------------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Number of spatial grid columns."""
        return grid_axis_cells(self.environment_size[0], self.config.spatial_resolution)

    @property
    def num_rows(self) -> int:
        """Number of spatial grid rows."""
        return grid_axis_cells(self.environment_size[1], self.config.spatial_resolution)

    def spatial_cell(self, position: Point) -> Tuple[int, int]:
        """``(column, row)`` of the spatial cell containing ``position``.

        Positions outside the environment are clamped to the border cells so
        that numerical jitter at the boundary never produces invalid keys.
        """
        return clamped_spatial_cell(
            position, self.config.spatial_resolution, self.num_columns, self.num_rows
        )

    def cell_key(self, t: TimeInstant, position: Point) -> CellKey:
        """Full spatiotemporal cell key for a sample at ``(t, position)``."""
        col, row = self.spatial_cell(position)
        return (self.temporal_index(t), col, row)

    def cell_bounds(self, col: int, row: int) -> MBR:
        """Spatial rectangle covered by cell ``(col, row)``."""
        rs = self.config.spatial_resolution
        return MBR(col * rs, row * rs, (col + 1) * rs, (row + 1) * rs)

    def cells_intersecting(self, rect: MBR, temporal_index: int) -> Iterator[CellKey]:
        """Cell keys of one temporal interval whose area intersects ``rect``."""
        rs = self.config.spatial_resolution
        col_lo = max(0, int(rect.min_x // rs))
        col_hi = min(self.num_columns - 1, int(rect.max_x // rs))
        row_lo = max(0, int(rect.min_y // rs))
        row_hi = min(self.num_rows - 1, int(rect.max_y // rs))
        for col in range(col_lo, col_hi + 1):
            for row in range(row_lo, row_hi + 1):
                yield (temporal_index, col, row)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def num_spatial_cells(self) -> int:
        """Spatial cells per temporal interval."""
        return self.num_columns * self.num_rows

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridGeometry(RT={self.config.temporal_resolution}, "
            f"RS={self.config.spatial_resolution}, "
            f"{self.num_temporal_intervals} x {self.num_columns}x{self.num_rows})"
        )
