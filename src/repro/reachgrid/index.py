"""ReachGrid index construction and disk placement.

Construction (Section 4.1):

1. Partition the horizon ``T`` into temporal intervals of ``RT`` ticks.
2. Within each temporal interval, partition the trajectory segments with a
   spatial grid of cell side ``RS``; a segment's samples are assigned to the
   cells that contain them (a segment spanning several cells contributes
   samples to each).
3. Disk placement: cells of interval ``T_i`` are written before cells of
   ``T_j`` for ``i < j``; within a cell, samples are ordered by timestamp.
   This is what allows query processing to stop reading as soon as a contact
   path is found.
4. An external hash table maps ``(object, temporal interval)`` to the cells
   holding that object's samples during the interval, so the query can locate
   the source (and newly discovered seeds) in a constant number of IOs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.config import ContactConfig, ReachGridConfig, StorageConfig
from ..core.errors import IndexConstructionError, IndexNotBuiltError
from ..core.types import ObjectId, TimeInstant
from ..storage import StorageSystem
from ..trajectory.model import TrajectoryDataset
from .cells import CellKey, GridGeometry

__all__ = ["ReachGridIndex", "ReachGridBuildReport"]

#: On-disk record of one trajectory sample: (object_id, t, x, y).
SampleRecord = Tuple[ObjectId, TimeInstant, float, float]


@dataclass(frozen=True, slots=True)
class ReachGridBuildReport:
    """Statistics collected while building a ReachGrid index."""

    num_cells: int
    num_records: int
    num_blocks: int
    build_seconds: float
    write_ios: int


class ReachGridIndex:
    """The ReachGrid spatiotemporal index over a trajectory dataset."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        config: ReachGridConfig | None = None,
        contact_config: ContactConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or ReachGridConfig()
        self.contact_config = contact_config or ContactConfig()
        self.storage = StorageSystem(storage_config, name="reachgrid", attach=False)
        self.geometry = GridGeometry(
            horizon=dataset.horizon,
            environment_size=dataset.environment_size,
            config=self.config,
        )
        self._cells_file = self.storage.new_blockfile("reachgrid-cells")
        self._object_cells = self.storage.new_hashtable("reachgrid-object-cells")
        self._built = False
        self.build_report: ReachGridBuildReport | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "ReachGridIndex":
        """Construct the index and place it on the simulated disk."""
        if self._built:
            raise IndexConstructionError("ReachGrid index already built")
        started = time.perf_counter()
        geometry = self.geometry

        # Pass 1: bucket every sample into its spatiotemporal cell, and record
        # which cells each object touches during each temporal interval.
        cell_records: Dict[CellKey, List[SampleRecord]] = {}
        object_cells: Dict[ObjectId, Dict[int, Set[Tuple[int, int]]]] = {}
        for trajectory in self.dataset:
            object_id = trajectory.object_id
            per_interval = object_cells.setdefault(object_id, {})
            for sample in trajectory.samples():
                key = geometry.cell_key(sample.time, sample.position)
                record = (
                    object_id,
                    sample.time,
                    sample.position.x,
                    sample.position.y,
                )
                cell_records.setdefault(key, []).append(record)
                per_interval.setdefault(key[0], set()).add(key[1:])

        # Pass 2: disk placement.  Cells of earlier temporal intervals are
        # written first; within one interval cells follow (col, row) order, and
        # within one cell records are ordered by timestamp.
        num_records = 0
        for key in sorted(cell_records):
            records = sorted(cell_records[key], key=lambda r: (r[1], r[0]))
            self._cells_file.append_extent(key, records)
            num_records += len(records)

        # Pass 3: the external hash table that maps each object to its
        # trajectory's cells over time (Section 4.2), enabling constant-IO
        # location of any object's cells during any temporal interval.
        self._object_cells.build(
            (
                (
                    object_id,
                    {
                        interval_index: tuple(sorted(cells))
                        for interval_index, cells in per_interval.items()
                    },
                )
                for object_id, per_interval in object_cells.items()
            )
        )

        elapsed = time.perf_counter() - started
        self.build_report = ReachGridBuildReport(
            num_cells=len(cell_records),
            num_records=num_records,
            num_blocks=self._cells_file.num_blocks,
            build_seconds=elapsed,
            write_ios=self.storage.stats.writes,
        )
        self._built = True
        return self

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("ReachGridIndex.build() has not been called")

    # ------------------------------------------------------------------
    # access used by the query processor
    # ------------------------------------------------------------------
    def cells_of_object(self, object_id: ObjectId, temporal_index: int) -> List[Tuple[int, int]]:
        """Spatial cells containing ``object_id`` during temporal interval ``temporal_index``.

        This is the external hash lookup of Section 4.2: one bucket read per
        distinct object (repeated lookups hit the buffer pool).
        """
        self._require_built()
        per_interval = self._object_cells.get(object_id)
        if not per_interval:
            return []
        return list(per_interval.get(temporal_index, ()))

    def has_cell(self, key: CellKey) -> bool:
        """True when cell ``key`` holds at least one sample (in-memory metadata)."""
        self._require_built()
        return self._cells_file.has_extent(key)

    def read_cell(self, key: CellKey) -> List[SampleRecord]:
        """Read every sample record of cell ``key`` from disk (charged IO)."""
        self._require_built()
        return self._cells_file.read_extent(key)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of non-empty spatiotemporal cells."""
        self._require_built()
        return self._cells_file.num_extents

    @property
    def num_blocks(self) -> int:
        """Number of disk blocks occupied by the cells."""
        self._require_built()
        return self._cells_file.num_blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "built" if self._built else "not built"
        return (
            f"ReachGridIndex(dataset={self.dataset.name!r}, "
            f"RT={self.config.temporal_resolution}, RS={self.config.spatial_resolution}, "
            f"{status})"
        )
