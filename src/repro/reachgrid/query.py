"""ReachGrid online query processing (Algorithm 1 of the paper).

The processor incrementally discovers the objects reachable from the query
source (the *seed set*) by sweeping the query interval in time order:

1. The query interval is quantized into the temporal grid intervals it
   overlaps.
2. At the start of each temporal interval the cells containing the current
   seeds are located through the external hash table and retrieved from disk;
   the *potential seed cells* ``N_i`` — cells within ``dT`` of the expanded
   MBRs of the seeds' trajectory segments — are retrieved as well.
3. A time sweep over the interval joins seed positions against candidate
   positions; whenever a new object comes within ``dT`` of a seed it is added
   to the seed set (with the time it became reachable), its cells are fetched,
   and the sweep continues.
4. Processing stops as soon as the query destination enters the seed set or
   the whole query interval has been swept.

Cell retrievals are batched and issued in disk order: the index places the
cells of one temporal interval on consecutive blocks precisely so that the
sweep can read them (mostly) sequentially, and the processor preserves that
locality by sorting each batch of cell keys before reading.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import QueryError, UnknownObjectError
from ..core.types import (
    ObjectId,
    Point,
    QueryResult,
    ReachabilityQuery,
    TimeInstant,
    TimeInterval,
)
from ..contacts.join import pairs_within_distance
from ..trajectory.mbr import MBR
from .cells import CellKey
from .index import ReachGridIndex

__all__ = ["ReachGridQueryProcessor"]


class ReachGridQueryProcessor:
    """Evaluates reachability queries against a built :class:`ReachGridIndex`."""

    def __init__(self, index: ReachGridIndex) -> None:
        if not index.is_built:
            raise QueryError("ReachGrid index must be built before querying")
        self.index = index
        self._threshold = index.contact_config.distance_threshold

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, query: ReachabilityQuery) -> QueryResult:
        """Evaluate one reachability query and report IO/CPU cost."""
        dataset = self.index.dataset
        if query.source not in dataset:
            raise UnknownObjectError(query.source)
        if query.destination not in dataset:
            raise UnknownObjectError(query.destination)
        interval = query.interval.intersection(dataset.horizon)
        if interval is None:
            raise QueryError(
                f"query interval {query.interval} does not overlap the horizon "
                f"{dataset.horizon}"
            )

        storage = self.index.storage
        storage.reset_for_query()
        io_before = storage.snapshot()
        cpu_started = time.process_time()

        if query.source == query.destination:
            return self._result(True, interval.start, io_before, cpu_started, 0)

        reachable, earliest, cells_read = self._expand_seeds(
            query.source, query.destination, interval
        )
        return self._result(reachable, earliest, io_before, cpu_started, cells_read)

    # ------------------------------------------------------------------
    # core expansion
    # ------------------------------------------------------------------
    def _expand_seeds(
        self,
        source: ObjectId,
        destination: ObjectId,
        interval: TimeInterval,
    ) -> Tuple[bool, Optional[TimeInstant], int]:
        """Run the guided seed-set expansion of Algorithm 1."""
        geometry = self.index.geometry
        threshold = self._threshold
        seeds: Dict[ObjectId, TimeInstant] = {source: interval.start}
        cells_read = 0

        for temporal_index in geometry.temporal_indices_overlapping(interval):
            window = geometry.temporal_interval(temporal_index).intersection(interval)
            if window is None:
                continue

            loaded_cells: Set[CellKey] = set()
            positions_by_tick: Dict[TimeInstant, Dict[ObjectId, Point]] = {}

            def load_cells(keys: Iterable[CellKey]) -> None:
                """Read a batch of cells in disk (sorted-key) order."""
                nonlocal cells_read
                pending = sorted(
                    key
                    for key in set(keys)
                    if key not in loaded_cells
                )
                for key in pending:
                    loaded_cells.add(key)
                    if not self.index.has_cell(key):
                        continue
                    cells_read += 1
                    for object_id, t, x, y in self.index.read_cell(key):
                        if window.contains(t):
                            positions_by_tick.setdefault(t, {})[object_id] = Point(x, y)

            def own_cell_keys(object_id: ObjectId) -> List[CellKey]:
                return [
                    (temporal_index, col, row)
                    for col, row in self.index.cells_of_object(object_id, temporal_index)
                ]

            def neighbourhood_keys(
                object_id: ObjectId, from_time: TimeInstant
            ) -> List[CellKey]:
                """Potential-seed cells ``N_i`` around one seed's trajectory MBR."""
                samples = [
                    positions_by_tick[t][object_id]
                    for t in range(from_time, window.end + 1)
                    if t in positions_by_tick and object_id in positions_by_tick[t]
                ]
                if not samples:
                    return []
                rect = MBR.from_points(samples).expanded(threshold)
                return list(geometry.cells_intersecting(rect, temporal_index))

            # Locate and retrieve the cells of every current seed (hash lookups
            # followed by one disk-ordered batch read), then the potential seed
            # cells within dT of their trajectory MBRs (a second batch).
            current_seeds = list(seeds)
            load_cells(
                key for seed in current_seeds for key in own_cell_keys(seed)
            )
            load_cells(
                key
                for seed in current_seeds
                for key in neighbourhood_keys(seed, window.start)
            )

            # Sweep the window tick by tick, discovering new seeds in the
            # order they become reachable.
            for t in window.instants():
                positions = positions_by_tick.get(t, {})
                if not positions:
                    continue
                # Fixed point at this tick: a snapshot contact chain makes all
                # of its members reachable at the same instant (Property 5.1).
                while True:
                    active_seeds = {
                        o for o, reached in seeds.items() if reached <= t and o in positions
                    }
                    if not active_seeds:
                        break
                    new_objects: List[ObjectId] = []
                    for a, b in pairs_within_distance(positions, threshold):
                        a_is_seed = a in active_seeds
                        b_is_seed = b in active_seeds
                        if a_is_seed == b_is_seed:
                            continue
                        newcomer = b if a_is_seed else a
                        if newcomer not in seeds:
                            seeds[newcomer] = t
                            new_objects.append(newcomer)
                    if not new_objects:
                        break
                    if destination in seeds:
                        return True, seeds[destination], cells_read
                    load_cells(
                        key
                        for newcomer in new_objects
                        for key in own_cell_keys(newcomer)
                    )
                    load_cells(
                        key
                        for newcomer in new_objects
                        for key in neighbourhood_keys(newcomer, t)
                    )

        return destination in seeds, seeds.get(destination), cells_read

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _result(
        self,
        reachable: bool,
        earliest: Optional[TimeInstant],
        io_before,
        cpu_started: float,
        cells_read: int,
    ) -> QueryResult:
        storage = self.index.storage
        delta = storage.charge_since(io_before)
        return QueryResult(
            reachable=reachable,
            earliest_time=earliest if reachable else None,
            io=delta.normalized(storage.config.sequential_cost),
            random_ios=delta.random_reads,
            sequential_ios=delta.sequential_reads,
            cpu_seconds=time.process_time() - cpu_started,
            visited=cells_read,
        )
