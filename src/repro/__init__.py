"""repro — reachability query evaluation in large spatiotemporal contact datasets.

A faithful, laptop-scale reproduction of *"Efficient Reachability Query
Evaluation in Large Spatiotemporal Contact Datasets"* (Shirani-Mehr,
Banaei-Kashani, Shahabi; PVLDB 5(9), 2012): the ReachGrid and ReachGraph
disk-resident indexes, the SPJ / external-traversal / GRAIL baselines, the
uncertain and non-immediate contact-network extensions, the synthetic data
generators the paper evaluates on, and a benchmark harness that regenerates
every table and figure of the evaluation section.

Quickstart
----------
>>> from repro import ReachabilityEngine, ReachabilityQuery, TimeInterval
>>> engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
>>> engine.build_reachgraph()          # doctest: +ELLIPSIS
ReachGraphIndex(...)
>>> query = ReachabilityQuery(0, 5, TimeInterval(0, 100))
>>> result = engine.evaluate(query, method="reachgraph")
>>> isinstance(result.reachable, bool)
True
"""

from __future__ import annotations

from .core.config import (
    DEFAULT_RESOLUTIONS,
    MERGE_POLICIES,
    ContactConfig,
    GrailConfig,
    ReachGraphConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from .core.engine import ReachabilityEngine
from .core.errors import (
    ConfigurationError,
    ContactNetworkError,
    DatasetError,
    IndexConstructionError,
    IndexNotBuiltError,
    InvalidIntervalError,
    QueryError,
    ReproError,
    StorageError,
    StreamingError,
    TrajectoryError,
    UnknownObjectError,
)
from .core.types import (
    ObjectId,
    Point,
    QueryResult,
    ReachabilityQuery,
    TimeInstant,
    TimeInterval,
)
from .contacts import Contact, ContactNetwork, TimeExpandedNetwork, build_contact_network
from .generators import (
    RandomWaypointGenerator,
    RoadNetworkGenerator,
    SparseGpsTraceGenerator,
)
from .reachgraph import ReachGraphIndex, ReachGraphQueryProcessor
from .reachgrid import ReachGridIndex, ReachGridQueryProcessor
from .streaming import ShardedReachabilityService, StreamingReachabilityService
from .trajectory import Trajectory, TrajectoryDataset, TrajectoryStore
from .workloads import DATASETS, make_dataset, random_queries

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade
    "ReachabilityEngine",
    # core types
    "ObjectId",
    "TimeInstant",
    "Point",
    "TimeInterval",
    "ReachabilityQuery",
    "QueryResult",
    # configuration
    "StorageConfig",
    "ContactConfig",
    "ReachGridConfig",
    "ReachGraphConfig",
    "GrailConfig",
    "StreamingConfig",
    "MERGE_POLICIES",
    "DEFAULT_RESOLUTIONS",
    # errors
    "ReproError",
    "ConfigurationError",
    "StorageError",
    "TrajectoryError",
    "UnknownObjectError",
    "ContactNetworkError",
    "IndexConstructionError",
    "IndexNotBuiltError",
    "QueryError",
    "InvalidIntervalError",
    "DatasetError",
    "StreamingError",
    # substrates
    "Trajectory",
    "TrajectoryDataset",
    "TrajectoryStore",
    "Contact",
    "ContactNetwork",
    "TimeExpandedNetwork",
    "build_contact_network",
    # generators
    "RandomWaypointGenerator",
    "RoadNetworkGenerator",
    "SparseGpsTraceGenerator",
    # indexes
    "ReachGridIndex",
    "ReachGridQueryProcessor",
    "ReachGraphIndex",
    "ReachGraphQueryProcessor",
    # streaming
    "StreamingReachabilityService",
    "ShardedReachabilityService",
    # workloads
    "DATASETS",
    "make_dataset",
    "random_queries",
]
