"""Trajectory data model.

A trajectory ``r_i = {(v1, t1), ..., (vn, tn)}`` is a sequence of
position-vector / time-stamp pairs (Section 4 of the paper).  This module
represents trajectories densely sampled at every time instance of the horizon
(the generators produce one sample per tick), plus segment extraction over a
time window, which is the unit ReachGrid stores in its cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..core.errors import TrajectoryError, UnknownObjectError
from ..core.types import ObjectId, Point, TimeInstant, TimeInterval

__all__ = ["TrajectorySample", "Trajectory", "TrajectorySegment", "TrajectoryDataset"]


@dataclass(frozen=True, slots=True)
class TrajectorySample:
    """One position-vector/time-stamp pair ``(v, t)`` of a trajectory."""

    object_id: ObjectId
    time: TimeInstant
    position: Point

    def as_tuple(self) -> Tuple[ObjectId, TimeInstant, float, float]:
        """Compact tuple form used when packing samples into disk blocks."""
        return (self.object_id, self.time, self.position.x, self.position.y)

    @staticmethod
    def from_tuple(raw: Tuple[ObjectId, TimeInstant, float, float]) -> "TrajectorySample":
        """Inverse of :meth:`as_tuple`."""
        object_id, time, x, y = raw
        return TrajectorySample(object_id, time, Point(x, y))


@dataclass(frozen=True, slots=True)
class TrajectorySegment:
    """The samples of one object restricted to a time window ``r_i(w)``."""

    object_id: ObjectId
    window: TimeInterval
    samples: Tuple[TrajectorySample, ...]

    def __post_init__(self) -> None:
        for sample in self.samples:
            if sample.object_id != self.object_id:
                raise TrajectoryError(
                    "segment contains a sample from a different object"
                )
            if not self.window.contains(sample.time):
                raise TrajectoryError("segment contains a sample outside its window")

    def positions(self) -> List[Point]:
        """The positions of the segment, in time order."""
        return [sample.position for sample in self.samples]

    def is_empty(self) -> bool:
        """True when the segment holds no samples."""
        return not self.samples

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[TrajectorySample]:
        return iter(self.samples)


class Trajectory:
    """A densely sampled trajectory of one moving object.

    The trajectory covers an inclusive time horizon starting at
    ``start_time`` with one sample per tick; sample ``i`` corresponds to time
    instance ``start_time + i``.
    """

    __slots__ = ("object_id", "start_time", "_positions")

    def __init__(
        self,
        object_id: ObjectId,
        positions: Sequence[Point],
        start_time: TimeInstant = 0,
    ) -> None:
        if not positions:
            raise TrajectoryError(f"trajectory of object {object_id} has no samples")
        if start_time < 0:
            raise TrajectoryError("trajectory start_time must be non-negative")
        self.object_id = object_id
        self.start_time = start_time
        self._positions: Tuple[Point, ...] = tuple(positions)

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    @property
    def end_time(self) -> TimeInstant:
        """Time instance of the last sample."""
        return self.start_time + len(self._positions) - 1

    @property
    def horizon(self) -> TimeInterval:
        """Time interval covered by the trajectory."""
        return TimeInterval(self.start_time, self.end_time)

    def __len__(self) -> int:
        return len(self._positions)

    def position_at(self, t: TimeInstant) -> Point:
        """Position of the object at time instance ``t``."""
        if not self.horizon.contains(t):
            raise TrajectoryError(
                f"time {t} outside trajectory horizon {self.horizon} "
                f"of object {self.object_id}"
            )
        return self._positions[t - self.start_time]

    def sample_at(self, t: TimeInstant) -> TrajectorySample:
        """The full sample (object, time, position) at instance ``t``."""
        return TrajectorySample(self.object_id, t, self.position_at(t))

    def samples(self) -> Iterator[TrajectorySample]:
        """Iterate every sample of the trajectory in time order."""
        for offset, position in enumerate(self._positions):
            yield TrajectorySample(self.object_id, self.start_time + offset, position)

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------
    def segment(self, window: TimeInterval) -> TrajectorySegment:
        """The segment ``r_i(window)``: samples whose timestamps fall in ``window``.

        The window may extend beyond the trajectory horizon; only the
        overlapping samples are returned (possibly none).
        """
        overlap = window.intersection(self.horizon)
        if overlap is None:
            return TrajectorySegment(self.object_id, window, ())
        samples = tuple(
            TrajectorySample(self.object_id, t, self._positions[t - self.start_time])
            for t in overlap.instants()
        )
        return TrajectorySegment(self.object_id, window, samples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trajectory(object={self.object_id}, horizon={self.horizon}, "
            f"samples={len(self._positions)})"
        )


class TrajectoryDataset:
    """A collection of trajectories over a common horizon (the dataset ``R``).

    The dataset also records the spatial extent of the environment ``E``,
    which the grid indexes need when laying out spatial cells.
    """

    def __init__(
        self,
        trajectories: Iterable[Trajectory],
        environment_size: Tuple[float, float],
        name: str = "dataset",
    ) -> None:
        self._trajectories: Dict[ObjectId, Trajectory] = {}
        for trajectory in trajectories:
            if trajectory.object_id in self._trajectories:
                raise TrajectoryError(
                    f"duplicate trajectory for object {trajectory.object_id}"
                )
            self._trajectories[trajectory.object_id] = trajectory
        if not self._trajectories:
            raise TrajectoryError("dataset must contain at least one trajectory")
        widths = {len(t) for t in self._trajectories.values()}
        starts = {t.start_time for t in self._trajectories.values()}
        if len(widths) != 1 or len(starts) != 1:
            raise TrajectoryError(
                "all trajectories in a dataset must share the same horizon"
            )
        if environment_size[0] <= 0 or environment_size[1] <= 0:
            raise TrajectoryError("environment size must be positive in both axes")
        self.environment_size = (float(environment_size[0]), float(environment_size[1]))
        self.name = name

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def object_ids(self) -> List[ObjectId]:
        """Sorted list of object ids in the dataset."""
        return sorted(self._trajectories)

    @property
    def num_objects(self) -> int:
        """Number of moving objects."""
        return len(self._trajectories)

    @property
    def horizon(self) -> TimeInterval:
        """The common time horizon ``T`` of every trajectory."""
        any_trajectory = next(iter(self._trajectories.values()))
        return any_trajectory.horizon

    @property
    def num_instants(self) -> int:
        """Number of time instances in the horizon (``|T|``)."""
        return self.horizon.length

    def trajectory(self, object_id: ObjectId) -> Trajectory:
        """The trajectory of ``object_id``."""
        try:
            return self._trajectories[object_id]
        except KeyError as exc:
            raise UnknownObjectError(object_id) from exc

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._trajectories

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajectories.values())

    def __len__(self) -> int:
        return len(self._trajectories)

    # ------------------------------------------------------------------
    # bulk views
    # ------------------------------------------------------------------
    def positions_at(self, t: TimeInstant) -> Dict[ObjectId, Point]:
        """All object positions at time instance ``t``."""
        return {
            object_id: trajectory.position_at(t)
            for object_id, trajectory in self._trajectories.items()
        }

    def segments(self, window: TimeInterval) -> List[TrajectorySegment]:
        """Segments of every trajectory restricted to ``window`` (``R(window)``)."""
        return [trajectory.segment(window) for trajectory in self._trajectories.values()]

    def restricted(self, length: int, name: str | None = None) -> "TrajectoryDataset":
        """A copy of the dataset truncated to its first ``length`` time instances.

        Used by the experiments that grow ``|T|`` (Figures 9–11): all the
        restricted datasets share the same starting instant, as in the paper.
        """
        if length <= 0 or length > self.num_instants:
            raise TrajectoryError(
                f"restricted length {length} outside (0, {self.num_instants}]"
            )
        horizon = self.horizon
        window = TimeInterval(horizon.start, horizon.start + length - 1)
        trajectories = []
        for trajectory in self._trajectories.values():
            samples = [trajectory.position_at(t) for t in window.instants()]
            trajectories.append(
                Trajectory(trajectory.object_id, samples, start_time=horizon.start)
            )
        return TrajectoryDataset(
            trajectories,
            environment_size=self.environment_size,
            name=name or f"{self.name}-first{length}",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrajectoryDataset(name={self.name!r}, objects={self.num_objects}, "
            f"horizon={self.horizon}, environment={self.environment_size})"
        )
