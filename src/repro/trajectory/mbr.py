"""Minimum bounding rectangles over trajectory segments.

ReachGrid's query processing finds the grid cells that may contain an object
in contact with a seed by building the MBR of each seed's trajectory segment,
expanding it by the contact threshold ``dT``, and collecting the cells that
intersect the expanded rectangle (Section 4.2, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.errors import TrajectoryError
from ..core.types import Point
from .model import TrajectorySegment

__all__ = ["MBR", "segment_mbr"]


@dataclass(frozen=True, slots=True)
class MBR:
    """An axis-aligned minimum bounding rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise TrajectoryError("MBR has negative extent")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_points(points: Iterable[Point]) -> "MBR":
        """Tightest MBR containing all ``points`` (at least one required)."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration as exc:
            raise TrajectoryError("cannot build an MBR from zero points") from exc
        min_x = max_x = first.x
        min_y = max_y = first.y
        for point in iterator:
            min_x = min(min_x, point.x)
            max_x = max(max_x, point.x)
            min_y = min(min_y, point.y)
            max_y = max(max_y, point.y)
        return MBR(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    def expanded(self, margin: float) -> "MBR":
        """The rectangle grown by ``margin`` on every side (the ``dT`` buffer)."""
        if margin < 0:
            raise TrajectoryError("MBR expansion margin must be non-negative")
        return MBR(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside (or on the boundary of) the rectangle."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def intersects(self, other: "MBR") -> bool:
        """True when the rectangles share at least a boundary point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def union(self, other: "MBR") -> "MBR":
        """Smallest rectangle containing both rectangles."""
        return MBR(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def min_distance_to(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the rectangle (0 when inside)."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return (dx * dx + dy * dy) ** 0.5


def segment_mbr(segment: TrajectorySegment) -> Optional[MBR]:
    """MBR of a trajectory segment, or ``None`` when the segment is empty."""
    if segment.is_empty():
        return None
    return MBR.from_points(segment.positions())
