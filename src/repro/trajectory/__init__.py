"""Trajectory substrate: models, interpolation, MBRs, and disk-backed storage."""

from __future__ import annotations

from .interpolation import densify_sparse_samples, downsample, interpolate_linear
from .mbr import MBR, segment_mbr
from .model import (
    Trajectory,
    TrajectoryDataset,
    TrajectorySample,
    TrajectorySegment,
)
from .store import TrajectoryStore

__all__ = [
    "Trajectory",
    "TrajectoryDataset",
    "TrajectorySample",
    "TrajectorySegment",
    "TrajectoryStore",
    "MBR",
    "segment_mbr",
    "interpolate_linear",
    "densify_sparse_samples",
    "downsample",
]
