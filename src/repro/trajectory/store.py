"""A disk-backed trajectory store.

The SPJ baseline (Section 6.1.2) answers a query by retrieving *all* the
trajectory segments that overlap the query interval from disk and joining
them.  To charge that baseline realistic IO, the raw trajectory dataset is
also materialized on the simulated disk: samples are packed into blocks
time-major (all objects at tick 0, then tick 1, ...), which is the natural
append order of a position logger.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..core.errors import IndexNotBuiltError
from ..core.types import ObjectId, TimeInstant, TimeInterval
from ..storage import StorageSystem
from .model import TrajectoryDataset, TrajectorySample

__all__ = ["TrajectoryStore"]


class TrajectoryStore:
    """Raw trajectory samples laid out on the simulated disk, time-major.

    One extent per time instance holds the samples of every object at that
    tick.  Reading an interval therefore scans consecutive extents — mostly
    sequential IO — exactly what a naive "retrieve all overlapping segments"
    strategy would do.
    """

    def __init__(self, dataset: TrajectoryDataset, storage: StorageSystem | None = None) -> None:
        self.dataset = dataset
        self.storage = storage or StorageSystem(name="trajectories", attach=False)
        self._blockfile = self.storage.new_blockfile("trajectories")
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "TrajectoryStore":
        """Write every sample to disk, one extent per time instance."""
        horizon = self.dataset.horizon
        for t in horizon.instants():
            records = [
                (object_id, t, position.x, position.y)
                for object_id, position in sorted(self.dataset.positions_at(t).items())
            ]
            self._blockfile.append_extent(("tick", t), records)
        self._built = True
        return self

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("TrajectoryStore.build() has not been called")

    # ------------------------------------------------------------------
    # reads (charged IO)
    # ------------------------------------------------------------------
    def read_tick(self, t: TimeInstant) -> List[TrajectorySample]:
        """Read all object positions at tick ``t`` from disk."""
        self._require_built()
        records = self._blockfile.read_extent(("tick", t))
        return [TrajectorySample.from_tuple(record) for record in records]

    def read_interval(self, interval: TimeInterval) -> Iterator[TrajectorySample]:
        """Stream every sample whose timestamp falls in ``interval``."""
        self._require_built()
        horizon = self.dataset.horizon
        overlap = interval.intersection(horizon)
        if overlap is None:
            return
        for t in overlap.instants():
            for record in self._blockfile.iter_extent_records(("tick", t)):
                yield TrajectorySample.from_tuple(record)

    def read_positions_at(self, t: TimeInstant) -> Dict[ObjectId, Tuple[float, float]]:
        """Positions of all objects at ``t`` as a mapping (charged IO)."""
        return {
            sample.object_id: (sample.position.x, sample.position.y)
            for sample in self.read_tick(t)
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of disk blocks occupied by the raw samples."""
        return self._blockfile.num_blocks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrajectoryStore(dataset={self.dataset.name!r}, built={self._built}, "
            f"blocks={self.num_blocks})"
        )
