"""Trajectory interpolation and resampling.

The paper's real dataset (Beijing vehicle GPS tracks) is sampled once per
minute and "further interpolated to reflect the locations for every five
seconds" (Section 6).  This module provides that interpolation step: linear
interpolation of sparse samples onto a dense tick grid, plus downsampling in
the other direction (used by tests and by the sparse-GPS generator).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.errors import TrajectoryError
from ..core.types import Point, TimeInstant
from .model import Trajectory

__all__ = ["interpolate_linear", "densify_sparse_samples", "downsample"]


def interpolate_linear(a: Point, b: Point, fraction: float) -> Point:
    """Linearly interpolate between ``a`` (fraction 0) and ``b`` (fraction 1)."""
    if not 0.0 <= fraction <= 1.0:
        raise TrajectoryError(f"interpolation fraction {fraction} outside [0, 1]")
    return Point(
        a.x + (b.x - a.x) * fraction,
        a.y + (b.y - a.y) * fraction,
    )


def densify_sparse_samples(
    object_id: int,
    sparse_samples: Sequence[Tuple[TimeInstant, Point]],
    horizon_length: int,
    start_time: TimeInstant = 0,
) -> Trajectory:
    """Build a densely sampled trajectory from sparse timestamped positions.

    ``sparse_samples`` must be sorted by time and contain at least one sample.
    Ticks before the first sample repeat the first position, ticks after the
    last sample repeat the last position, and ticks in between are linearly
    interpolated — matching how the paper densifies 1-minute GPS tracks to a
    5-second grid.
    """
    if horizon_length <= 0:
        raise TrajectoryError("horizon_length must be positive")
    if not sparse_samples:
        raise TrajectoryError("at least one sparse sample is required")
    times = [t for t, _ in sparse_samples]
    if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
        raise TrajectoryError("sparse samples must be strictly increasing in time")

    positions: List[Point] = []
    segment_index = 0
    for offset in range(horizon_length):
        t = start_time + offset
        if t <= sparse_samples[0][0]:
            positions.append(sparse_samples[0][1])
            continue
        if t >= sparse_samples[-1][0]:
            positions.append(sparse_samples[-1][1])
            continue
        # Advance to the segment [t_i, t_{i+1}] containing t.
        while sparse_samples[segment_index + 1][0] < t:
            segment_index += 1
        t0, p0 = sparse_samples[segment_index]
        t1, p1 = sparse_samples[segment_index + 1]
        fraction = (t - t0) / (t1 - t0)
        positions.append(interpolate_linear(p0, p1, fraction))
    return Trajectory(object_id, positions, start_time=start_time)


def downsample(
    trajectory: Trajectory, every: int
) -> List[Tuple[TimeInstant, Point]]:
    """Keep every ``every``-th sample of a dense trajectory (plus the last one).

    This simulates a sparse GPS recorder reading positions at a coarse rate.
    """
    if every <= 0:
        raise TrajectoryError("downsampling factor must be positive")
    sparse: List[Tuple[TimeInstant, Point]] = []
    horizon = trajectory.horizon
    for t in range(horizon.start, horizon.end + 1, every):
        sparse.append((t, trajectory.position_at(t)))
    if sparse[-1][0] != horizon.end:
        sparse.append((horizon.end, trajectory.position_at(horizon.end)))
    return sparse
