"""Stream sources: replay stored or generated data as a timestamped stream.

A *stream source* is anything iterable over :class:`StreamBatch` objects in
non-decreasing watermark order.  The sources here replay the repo's existing
offline artifacts — a :class:`~repro.trajectory.model.TrajectoryDataset` or
any generator from :mod:`repro.generators` — as if their samples were arriving
live, which is how the equivalence tests drive the streaming service with data
whose batch ground truth is already known.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from ..core.errors import StreamingError
from ..trajectory.model import TrajectoryDataset
from .events import SampleEvent, StreamBatch

__all__ = ["StreamSource", "DatasetReplaySource", "GeneratorReplaySource", "replay"]


class StreamSource(Protocol):
    """Anything that yields stream batches in watermark order."""

    def batches(self) -> Iterator[StreamBatch]:
        """Iterate the batches of the stream."""
        ...


class DatasetReplaySource:
    """Replays a trajectory dataset tick by tick as a stream of batches.

    Each batch carries the samples of ``batch_ticks`` consecutive time
    instances (every object reports once per tick, as the dense datasets do)
    and a watermark equal to the last tick included, so a consumer sees
    exactly the arrival order a live deployment would.
    """

    def __init__(self, dataset: TrajectoryDataset, batch_ticks: int = 8) -> None:
        if batch_ticks <= 0:
            raise StreamingError("batch_ticks must be positive")
        self.dataset = dataset
        self.batch_ticks = batch_ticks

    @property
    def num_events(self) -> int:
        """Total number of sample events the replay will deliver."""
        return self.dataset.num_objects * self.dataset.num_instants

    def batches(self) -> Iterator[StreamBatch]:
        """Yield the dataset's samples as watermark-ordered batches."""
        for window in self.dataset.horizon.split(self.batch_ticks):
            samples = []
            for t in window.instants():
                for object_id, position in sorted(self.dataset.positions_at(t).items()):
                    samples.append(SampleEvent(object_id, t, position))
            yield StreamBatch(tuple(samples), watermark=window.end)

    def __iter__(self) -> Iterator[StreamBatch]:
        return self.batches()


class GeneratorReplaySource:
    """Replays the output of a trajectory generator as a stream.

    Works with any of the generators in :mod:`repro.generators` (anything with
    a ``generate() -> TrajectoryDataset`` method); the dataset is materialized
    once, lazily, on first iteration.
    """

    def __init__(self, generator, batch_ticks: int = 8) -> None:
        if batch_ticks <= 0:
            raise StreamingError("batch_ticks must be positive")
        self._generator = generator
        self.batch_ticks = batch_ticks
        self._replay: DatasetReplaySource | None = None

    def _materialize(self) -> DatasetReplaySource:
        if self._replay is None:
            self._replay = DatasetReplaySource(
                self._generator.generate(), batch_ticks=self.batch_ticks
            )
        return self._replay

    @property
    def dataset(self) -> TrajectoryDataset:
        """The generated dataset backing the replay."""
        return self._materialize().dataset

    def batches(self) -> Iterator[StreamBatch]:
        """Yield the generated dataset's samples as batches."""
        return self._materialize().batches()

    def __iter__(self) -> Iterator[StreamBatch]:
        return self.batches()


def replay(source, batch_ticks: int = 8) -> StreamSource:
    """Wrap a dataset, canned-dataset name, or generator as a stream source."""
    if isinstance(source, TrajectoryDataset):
        return DatasetReplaySource(source, batch_ticks=batch_ticks)
    if isinstance(source, str):
        from ..workloads.datasets import make_dataset

        return DatasetReplaySource(make_dataset(source), batch_ticks=batch_ticks)
    if hasattr(source, "generate"):
        return GeneratorReplaySource(source, batch_ticks=batch_ticks)
    raise StreamingError(
        f"cannot replay {type(source).__name__}: expected a TrajectoryDataset, "
        "a canned dataset name, or a generator with .generate()"
    )
