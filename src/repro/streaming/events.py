"""Event model of the streaming ingestion subsystem.

The paper's target scenarios — epidemic contact tracing, vehicle
surveillance — are online: position reports arrive continuously.  The
streaming layer models that arrival as an ordered sequence of
:class:`StreamBatch` objects, each carrying the :class:`SampleEvent` position
reports of a few ticks plus a *watermark*: the promise that every sample with
a timestamp at or below the watermark has been delivered.  Watermarks are what
let the ingestor close temporal grid intervals (flushing their cells to disk
in interval order) and run the incremental contact join without ever looking
at a tick twice.

:class:`ContactEvent` is the *derived* event type: the incremental join emits
one whenever a pair of objects separates, closing the contact's validity
interval.  Open contacts (pairs still within range at the watermark) are not
events yet; the ingestor exposes them separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from ..core.errors import StreamingError
from ..core.types import ObjectId, Point, TimeInstant, TimeInterval
from ..contacts.network import Contact
from ..trajectory.model import TrajectorySample

__all__ = ["SampleEvent", "ContactEvent", "StreamBatch"]


@dataclass(frozen=True, slots=True)
class SampleEvent:
    """A position report: object ``object_id`` was at ``position`` at ``time``."""

    object_id: ObjectId
    time: TimeInstant
    position: Point

    def __post_init__(self) -> None:
        if self.time < 0:
            raise StreamingError("sample event timestamps must be non-negative")

    @staticmethod
    def from_sample(sample: TrajectorySample) -> "SampleEvent":
        """Lift a stored trajectory sample into a stream event."""
        return SampleEvent(sample.object_id, sample.time, sample.position)

    def to_sample(self) -> TrajectorySample:
        """The equivalent stored trajectory sample."""
        return TrajectorySample(self.object_id, self.time, self.position)


@dataclass(frozen=True, slots=True)
class ContactEvent:
    """A closed contact edge emitted by the incremental join.

    Mirrors :class:`~repro.contacts.network.Contact` (unordered pair, maximal
    continuous validity interval) but is a stream-level event: it exists only
    once the pair has separated, i.e. once the validity interval is final.
    """

    first: ObjectId
    second: ObjectId
    validity: TimeInterval

    def __post_init__(self) -> None:
        if self.first >= self.second:
            raise StreamingError(
                "contact events store the smaller object id first"
            )

    @staticmethod
    def from_contact(contact: Contact) -> "ContactEvent":
        """Lift a network contact into a stream event."""
        return ContactEvent(contact.first, contact.second, contact.validity)

    def to_contact(self) -> Contact:
        """The equivalent contact-network edge."""
        return Contact(self.first, self.second, self.validity)


@dataclass(frozen=True, slots=True)
class StreamBatch:
    """One unit of stream delivery: sample events plus a watermark.

    The watermark asserts completeness: no sample with ``time <= watermark``
    will ever arrive after this batch.  Batches must be consumed in
    non-decreasing watermark order; samples inside a batch must not exceed its
    watermark.
    """

    samples: Tuple[SampleEvent, ...]
    watermark: TimeInstant

    def __post_init__(self) -> None:
        if self.watermark < 0:
            raise StreamingError("watermark must be non-negative")
        for sample in self.samples:
            if sample.time > self.watermark:
                raise StreamingError(
                    f"sample at t={sample.time} lies beyond the batch "
                    f"watermark {self.watermark}"
                )

    @staticmethod
    def of(samples: Iterable[SampleEvent], watermark: TimeInstant | None = None) -> "StreamBatch":
        """Build a batch, defaulting the watermark to the latest sample time."""
        materialized = tuple(samples)
        if watermark is None:
            if not materialized:
                raise StreamingError("an empty batch needs an explicit watermark")
            watermark = max(sample.time for sample in materialized)
        return StreamBatch(materialized, watermark)

    @property
    def num_events(self) -> int:
        """Number of sample events carried by the batch."""
        return len(self.samples)

    def __iter__(self) -> Iterator[SampleEvent]:
        return iter(self.samples)

    def __len__(self) -> int:
        return len(self.samples)
