"""Streaming ingestion with incremental ReachGrid/ReachGraph maintenance.

The paper's indexes are built offline over a frozen trajectory dataset, but
its target scenarios (contact tracing, vehicle surveillance) are online.  This
subpackage keeps the indexes queryable *while* data arrives:

* :mod:`~repro.streaming.events` / :mod:`~repro.streaming.source` — the
  timestamped event model (samples, closed contacts, watermarked batches) and
  replay sources that turn any dataset or generator into a stream;
* :mod:`~repro.streaming.ingest` — tail-append of samples into the current
  temporal interval's grid cells plus the incremental contact join;
* :mod:`~repro.streaming.delta` / :mod:`~repro.streaming.policy` — the
  snapshot + delta overlay consulted at query time, and the policies deciding
  when the delta is merged into a fresh snapshot;
* :mod:`~repro.streaming.service` — the
  :class:`~repro.streaming.service.StreamingReachabilityService` facade
  (``ingest`` / ``query`` with an LRU result cache), also reachable through
  :meth:`repro.ReachabilityEngine.streaming`.

Quickstart
----------
>>> from repro import make_dataset
>>> from repro.streaming import StreamingReachabilityService, replay
>>> dataset = make_dataset("rwp-tiny")
>>> service = StreamingReachabilityService.for_dataset(dataset)
>>> stats = service.drain(replay(dataset))
>>> stats.events == dataset.num_objects * dataset.num_instants
True
"""

from __future__ import annotations

from .delta import ContactSnapshotStore, DeltaGraph, ReachGraphDeltaOverlay
from .events import ContactEvent, SampleEvent, StreamBatch
from .experiment import stream_replay
from .ingest import StreamIngestor
from .policy import (
    AmplificationPolicy,
    DeltaSizePolicy,
    ElapsedIntervalsPolicy,
    MergeContext,
    MergePolicy,
    make_policy,
)
from .service import StreamingReachabilityService, StreamingStats
from .source import DatasetReplaySource, GeneratorReplaySource, StreamSource, replay

__all__ = [
    "SampleEvent",
    "ContactEvent",
    "StreamBatch",
    "StreamSource",
    "DatasetReplaySource",
    "GeneratorReplaySource",
    "replay",
    "StreamIngestor",
    "DeltaGraph",
    "ContactSnapshotStore",
    "ReachGraphDeltaOverlay",
    "MergeContext",
    "MergePolicy",
    "DeltaSizePolicy",
    "ElapsedIntervalsPolicy",
    "AmplificationPolicy",
    "make_policy",
    "StreamingReachabilityService",
    "StreamingStats",
    "stream_replay",
]
