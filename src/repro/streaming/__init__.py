"""Streaming ingestion with incremental ReachGrid/ReachGraph maintenance.

The paper's indexes are built offline over a frozen trajectory dataset, but
its target scenarios (contact tracing, vehicle surveillance) are online.  This
subpackage keeps the indexes queryable *while* data arrives:

* :mod:`~repro.streaming.events` / :mod:`~repro.streaming.source` — the
  timestamped event model (samples, closed contacts, watermarked batches) and
  replay sources that turn any dataset or generator into a stream;
* :mod:`~repro.streaming.ingest` — tail-append of samples into the current
  temporal interval's grid cells plus the incremental contact join;
* :mod:`~repro.streaming.delta` / :mod:`~repro.streaming.policy` — the
  snapshot + delta overlay consulted at query time, and the policies deciding
  when the delta is merged into a fresh snapshot;
* :mod:`~repro.streaming.service` — the
  :class:`~repro.streaming.service.StreamingReachabilityService` facade
  (``ingest`` / ``query`` with an LRU result cache), also reachable through
  :meth:`repro.ReachabilityEngine.streaming`;
* :mod:`~repro.streaming.router` / :mod:`~repro.streaming.sharding` /
  :mod:`~repro.streaming.coordinator` — scale-out: pluggable shard routers,
  the :class:`~repro.streaming.sharding.ShardedStreamIngestor` with per-shard
  watermarks plus a global low-watermark and a cross-shard contact join, and
  the :class:`~repro.streaming.coordinator.ShardedReachabilityService`
  fanning queries out across shard overlays
  (``engine.streaming(shards=N)``);
* :mod:`~repro.streaming.async_service` — the asyncio serving front-end:
  :class:`~repro.streaming.async_service.AsyncReachabilityService` runs one
  ingest loop per shard behind bounded queues (``await ingest`` backpressures
  when full), executes merges as background tasks over the frozen prefix, and
  swaps snapshots in atomically so ``await query`` never blocks on a rebuild
  (``engine.streaming(async_mode=True)``);
* :mod:`~repro.streaming.parallel` — true multi-core execution: the
  :class:`~repro.streaming.parallel.MergeExecutor` abstraction runs the pure
  build phase of merges inline, on a thread pool, or on a process pool
  (``engine.streaming(merge_executor="process")``), and
  :class:`~repro.streaming.parallel.ParallelQueryService` answers queries on
  a pool of worker processes over reopened read-only snapshots with
  generation-based invalidation.

Quickstart
----------
>>> from repro import make_dataset
>>> from repro.streaming import StreamingReachabilityService, replay
>>> dataset = make_dataset("rwp-tiny")
>>> service = StreamingReachabilityService.for_dataset(dataset)
>>> stats = service.drain(replay(dataset))
>>> stats.events == dataset.num_objects * dataset.num_instants
True
"""

from __future__ import annotations

from .async_service import AsyncReachabilityService, AsyncStats
from .coordinator import (
    ShardedReachabilityService,
    ShardedSnapshotQueryService,
    ShardedStats,
)
from .delta import (
    ContactSnapshotStore,
    DeltaGraph,
    ReachGraphDeltaOverlay,
    SnapshotArtifacts,
)
from .events import ContactEvent, SampleEvent, StreamBatch
from .experiment import async_stream_replay, sharded_stream_replay, stream_replay
from .ingest import StreamIngestor
from .parallel import (
    InlineMergeExecutor,
    MergeExecutor,
    ParallelQueryService,
    PoolMergeExecutor,
    make_merge_executor,
)
from .policy import (
    AmplificationPolicy,
    DeltaSizePolicy,
    ElapsedIntervalsPolicy,
    MergeContext,
    MergePolicy,
    make_policy,
)
from .router import HashRouter, ShardRouter, SpatialCellRouter, make_router
from .service import (
    MergeBuild,
    MergeInputs,
    QueryResultCache,
    SnapshotQueryService,
    StreamingReachabilityService,
    StreamingStats,
    build_merge,
    build_snapshot_artifacts,
    build_snapshot_overlay,
)
from .sharding import CrossShardContactTracker, ShardedStreamIngestor
from .source import DatasetReplaySource, GeneratorReplaySource, StreamSource, replay

__all__ = [
    "AsyncReachabilityService",
    "AsyncStats",
    "SampleEvent",
    "ContactEvent",
    "StreamBatch",
    "StreamSource",
    "DatasetReplaySource",
    "GeneratorReplaySource",
    "replay",
    "StreamIngestor",
    "DeltaGraph",
    "ContactSnapshotStore",
    "ReachGraphDeltaOverlay",
    "MergeContext",
    "MergePolicy",
    "DeltaSizePolicy",
    "ElapsedIntervalsPolicy",
    "AmplificationPolicy",
    "make_policy",
    "ShardRouter",
    "HashRouter",
    "SpatialCellRouter",
    "make_router",
    "CrossShardContactTracker",
    "ShardedStreamIngestor",
    "ShardedReachabilityService",
    "ShardedSnapshotQueryService",
    "ShardedStats",
    "InlineMergeExecutor",
    "MergeBuild",
    "MergeExecutor",
    "MergeInputs",
    "ParallelQueryService",
    "PoolMergeExecutor",
    "QueryResultCache",
    "make_merge_executor",
    "SnapshotArtifacts",
    "SnapshotQueryService",
    "StreamingReachabilityService",
    "StreamingStats",
    "build_merge",
    "build_snapshot_artifacts",
    "build_snapshot_overlay",
    "stream_replay",
    "sharded_stream_replay",
    "async_stream_replay",
]
