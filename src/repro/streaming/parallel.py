"""True multi-core execution: process-parallel merges and query workers.

Everything before this module runs on one core: background merges are Python
threads (serialized by the GIL for the CPU-bound build phase) and every query
executes on the thread that asked.  This module adds the two process-parallel
paths:

* **write side** — a :class:`MergeExecutor` runs the pure build phase of the
  three-phase merge protocol (see ``docs/MERGE_PROTOCOL.md``) on a pool of
  OS processes.  :class:`~repro.streaming.service.MergeInputs` is a frozen
  picklable dataclass and :func:`~repro.streaming.service.build_merge` a pure
  function of it, so shipping the inputs to a worker process and the built
  :class:`~repro.streaming.service.MergeBuild` back is safe by construction;
  the *adopting* thread stays the one that owns the overlay.  Three kinds are
  selectable via :attr:`~repro.core.config.StreamingConfig.merge_executor`:
  ``inline`` (build on the calling thread — the historical behaviour),
  ``thread`` (a thread pool: overlaps builds with IO but not with each other)
  and ``process`` (a process pool: builds genuinely run on multiple cores).

* **read side** — a :class:`ParallelQueryService` answers queries on a pool
  of worker processes.  Each worker reopens the service's flushed state
  read-only (:class:`~repro.streaming.service.SnapshotQueryService`, or the
  sharded restore path with its per-shard snapshots — the durable reopen
  from the recovery work is what makes this possible) and caches it between
  queries.  The pool is invalidated by *snapshot generation*: adopting a
  merge bumps the generation, and a worker holding an older generation
  gracefully recycles — closes its reopened snapshot and reopens the freshly
  flushed state — before answering.  Answers are therefore always
  bit-identical to the batch reference evaluator over the committed prefix
  the generation promised.

The process executor has one deliberate carve-out: ``rebuild``-mode merges
build a complete overlay around a live :class:`~repro.storage.StorageSystem`
whose device handles cannot cross a process boundary, so those builds run on
a local thread instead (the LSM default ships to the pool).  See
``docs/MERGE_PROTOCOL.md`` for why the protocol's phase split makes the rest
legal.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import MERGE_EXECUTORS, StorageConfig
from ..core.errors import ConfigurationError, StreamingError
from ..core.types import QueryResult, ReachabilityQuery, TimeInstant
from ..obs import Counters, MergeTiming, MergeTimings
from .service import MergeBuild, MergeInputs, build_merge

__all__ = [
    "InlineMergeExecutor",
    "MergeExecutor",
    "ParallelQueryService",
    "PoolMergeExecutor",
    "make_merge_executor",
]


def _timed_build(
    inputs: MergeInputs,
    storage_config: Optional[StorageConfig],
    submitted_at: float,
) -> Tuple[MergeBuild, float, float]:
    """Run the pure build phase, measuring queue wait and build wall time.

    Module-level (not a closure) so the process pool can pickle it by
    reference.  ``submitted_at`` is a ``time.time()`` stamp from the
    submitting process — wall clocks are shared across processes on one
    host, unlike ``perf_counter``.
    """
    started = time.time()
    t0 = time.perf_counter()
    build = build_merge(inputs, storage_config)
    return build, max(0.0, started - submitted_at), time.perf_counter() - t0


class MergeExecutor:
    """Where the pure build phase of a merge runs.

    ``submit`` hands captured :class:`~repro.streaming.service.MergeInputs`
    to the executor and returns a :class:`concurrent.futures.Future`
    resolving to the :class:`~repro.streaming.service.MergeBuild`; the caller
    adopts the result on the thread that owns the overlay
    (:meth:`~repro.streaming.service.StreamingReachabilityService.adopt_merge`).
    Subclasses choose the execution vehicle; this base class keeps the shared
    bookkeeping: in-flight accounting (who overlapped whom), a
    :class:`~repro.obs.MergeTimings` log, and a :class:`~repro.obs.Counters`
    registry.
    """

    #: Executor kind, one of :data:`~repro.core.config.MERGE_EXECUTORS`.
    kind: str = "inline"

    def __init__(self) -> None:
        self.timings = MergeTimings()
        self.counters = Counters()
        self._in_flight: Dict[int, bool] = {}  # ticket -> saw a concurrent build
        self._next_ticket = 0

    # -- in-flight/overlap bookkeeping ---------------------------------
    def _begin(self) -> int:
        ticket = self._next_ticket
        self._next_ticket += 1
        # Every build already in flight overlaps the new one, and vice versa.
        overlapped = bool(self._in_flight)
        for other in self._in_flight:
            self._in_flight[other] = True
        self._in_flight[ticket] = overlapped
        return ticket

    def _finish(
        self, ticket: int, mode: str, queued_seconds: float, build_seconds: float
    ) -> None:
        overlapped = self._in_flight.pop(ticket, False)
        self.timings.record(
            MergeTiming(
                executor=self.kind,
                mode=mode,
                queued_seconds=queued_seconds,
                build_seconds=build_seconds,
                overlapped=overlapped,
            )
        )
        self.counters.add("merge.builds")
        if overlapped:
            self.counters.add("merge.overlapped_builds")

    # -- the interface subclasses implement ----------------------------
    def submit(
        self,
        inputs: MergeInputs,
        storage_config: Optional[StorageConfig] = None,
    ) -> "Future[MergeBuild]":
        """Schedule one pure build; the future resolves to its result."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools, waiting for in-flight builds.  Idempotent."""

    @property
    def in_flight(self) -> int:
        """Builds currently submitted and not yet finished."""
        return len(self._in_flight)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(kind={self.kind!r})"


class InlineMergeExecutor(MergeExecutor):
    """Build on the calling thread (the historical single-core behaviour).

    ``submit`` returns an already-completed future: by the time the caller
    sees it, the build ran to completion (or raised) right here.  This is
    the default executor — zero new moving parts, bit-identical scheduling
    to every release before the executor abstraction existed.
    """

    kind = "inline"

    def submit(
        self,
        inputs: MergeInputs,
        storage_config: Optional[StorageConfig] = None,
    ) -> "Future[MergeBuild]":
        """Run :func:`build_merge` right here; the future is already done."""
        ticket = self._begin()
        future: "Future[MergeBuild]" = Future()
        t0 = time.perf_counter()
        try:
            build = build_merge(inputs, storage_config)
        except BaseException as exc:
            self._finish(ticket, inputs.mode, 0.0, time.perf_counter() - t0)
            future.set_exception(exc)
            return future
        self._finish(ticket, inputs.mode, 0.0, time.perf_counter() - t0)
        future.set_result(build)
        return future


class PoolMergeExecutor(MergeExecutor):
    """Build on a worker pool: threads (``thread``) or processes (``process``).

    The thread pool overlaps builds with the caller (and with each other up
    to the GIL); the process pool is the true multi-core path — inputs are
    pickled to worker processes, builds run concurrently on separate cores,
    and the built artifacts are pickled back for adoption.

    ``rebuild``-mode inputs are the carve-out on the process pool: their
    build allocates a live :class:`~repro.storage.StorageSystem` (device
    handles, locks) that cannot cross the process boundary, so they run on a
    lazily created sidecar thread instead — counted under
    ``merge.rebuild_thread_fallback`` so the asymmetry is observable.
    """

    def __init__(self, kind: str, workers: int) -> None:
        super().__init__()
        if kind not in ("thread", "process"):
            raise ConfigurationError(
                f"unknown pool executor kind {kind!r}; use 'thread' or 'process'"
            )
        if workers <= 0:
            raise ConfigurationError("merge_workers must be positive")
        self.kind = kind
        self.workers = workers
        self._pool: Union[ThreadPoolExecutor, ProcessPoolExecutor, None] = None
        self._fallback: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def _ensure_pool(self) -> Union[ThreadPoolExecutor, ProcessPoolExecutor]:
        if self._closed:
            raise StreamingError("merge executor is closed")
        if self._pool is None:
            if self.kind == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="merge-build"
                )
        return self._pool

    def _ensure_fallback(self) -> ThreadPoolExecutor:
        if self._closed:
            raise StreamingError("merge executor is closed")
        if self._fallback is None:
            self._fallback = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="merge-rebuild"
            )
        return self._fallback

    def submit(
        self,
        inputs: MergeInputs,
        storage_config: Optional[StorageConfig] = None,
    ) -> "Future[MergeBuild]":
        """Ship the build to the pool (or the rebuild sidecar) and return a future."""
        if self.kind == "process" and inputs.mode == "rebuild":
            pool: Union[ThreadPoolExecutor, ProcessPoolExecutor] = (
                self._ensure_fallback()
            )
            self.counters.add("merge.rebuild_thread_fallback")
        else:
            pool = self._ensure_pool()
        ticket = self._begin()
        inner = pool.submit(_timed_build, inputs, storage_config, time.time())
        future: "Future[MergeBuild]" = Future()

        def _unwrap(done: "Future[Tuple[MergeBuild, float, float]]") -> None:
            try:
                build, queued, took = done.result()
            except BaseException as exc:
                self._finish(ticket, inputs.mode, 0.0, 0.0)
                # False means the caller already cancelled the outer future
                # (the async service does on shutdown): drop the result —
                # nothing was adopted, so the live overlay is untouched.
                if future.set_running_or_notify_cancel():
                    future.set_exception(exc)
                return
            self._finish(ticket, inputs.mode, queued, took)
            if future.set_running_or_notify_cancel():
                future.set_result(build)

        inner.add_done_callback(_unwrap)
        return future

    def close(self) -> None:
        """Drain and shut down the pool (and sidecar); idempotent."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._fallback is not None:
            self._fallback.shutdown(wait=True)
            self._fallback = None


def make_merge_executor(kind: str, workers: int = 2) -> MergeExecutor:
    """The :class:`MergeExecutor` for an executor kind.

    ``kind`` is one of :data:`~repro.core.config.MERGE_EXECUTORS`; ``workers``
    sizes the pool and is ignored by ``inline``.
    """
    if kind not in MERGE_EXECUTORS:
        raise ConfigurationError(
            f"unknown merge executor {kind!r}; "
            f"choose one of {', '.join(MERGE_EXECUTORS)}"
        )
    if kind == "inline":
        return InlineMergeExecutor()
    return PoolMergeExecutor(kind, workers)


# ----------------------------------------------------------------------
# read side: process-parallel query workers
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _SnapshotSpec:
    """Everything a worker process needs to reopen the flushed state.

    Frozen and picklable; travels with every task so a worker can validate
    its cached snapshot against the requested generation.
    """

    storage_config: StorageConfig
    name: str
    sharded: bool

    @property
    def key(self) -> Tuple[Optional[str], str, str, bool]:
        return (
            self.storage_config.storage_dir,
            self.storage_config.backend,
            self.name,
            self.sharded,
        )


#: Worker-process cache: spec key -> (generation, reopened read-only service).
#: Lives in the *worker's* module globals — each pool process holds at most
#: one reopened snapshot per service, reused across queries of the same
#: generation and recycled when the generation moves.
_WORKER_SNAPSHOTS: Dict[Tuple[Optional[str], str, str, bool], Tuple[int, object]] = {}


def _worker_snapshot(spec: _SnapshotSpec, generation: int):
    """The worker's reopened read-only service for ``spec`` at ``generation``.

    The graceful-recycle point: a cached snapshot of an older generation is
    closed (releasing its device handles) and the freshly flushed state is
    reopened in its place.  Requests never go backwards — the parent only
    ever bumps the generation — so a cached *newer* generation is also
    served as-is rather than reopened (a racing older request would observe
    a newer committed prefix, which the contract allows).
    """
    held = _WORKER_SNAPSHOTS.get(spec.key)
    if held is not None and held[0] >= generation:
        return held[1]
    if held is not None:
        held[1].close()  # type: ignore[attr-defined]
        del _WORKER_SNAPSHOTS[spec.key]
    if spec.sharded:
        from .coordinator import ShardedSnapshotQueryService

        service: object = ShardedSnapshotQueryService.open(
            spec.storage_config, spec.name
        )
    else:
        from .service import SnapshotQueryService

        service = SnapshotQueryService.open(spec.storage_config, spec.name)
    _WORKER_SNAPSHOTS[spec.key] = (generation, service)
    return service


def _worker_query(
    spec: _SnapshotSpec, generation: int, query: ReachabilityQuery
) -> QueryResult:
    """Answer one query in a worker process (module-level for pickling)."""
    return _worker_snapshot(spec, generation).query(query)  # type: ignore[attr-defined]


def _worker_watermark(spec: _SnapshotSpec, generation: int) -> Optional[TimeInstant]:
    """The watermark of the worker's reopened snapshot at ``generation``."""
    return _worker_snapshot(spec, generation).watermark  # type: ignore[attr-defined]


class ParallelQueryService:
    """Read-side scale-out: queries answered by a pool of worker processes.

    Each worker reopens the flushed state read-only — the unsharded
    :class:`~repro.streaming.service.SnapshotQueryService`, or the sharded
    restore path whose per-shard snapshots and cross-shard log reproduce the
    coordinator's fan-out — and keeps it open across queries, so the
    per-query cost is one pickle round-trip, not a reopen.  Every submitted
    task carries the current *snapshot generation*; a worker holding an
    older snapshot closes and reopens before answering (see
    :func:`_worker_snapshot`), which is how a merge adoption propagates to
    the read fleet without restarting any process.

    Two ways in:

    * :meth:`open` — over a directory some service already flushed (a pure
      read-replica fleet; generations only move via :meth:`refresh`);
    * :meth:`for_service` — attached to a *live* service: every ``query``
      first checks the service's merge counter, and a newly adopted merge
      triggers ``flush()`` + a generation bump automatically, so the fleet
      tracks the live snapshot with at most one merge of lag and zero
      manual choreography.

    The answering contract matches the reopened shapes it is built from:
    whatever :attr:`watermark` reports is the committed prefix every answer
    is bit-identical to the batch reference evaluator over.
    """

    def __init__(
        self,
        storage_config: StorageConfig,
        name: str,
        workers: int = 2,
        sharded: bool = False,
        service: object = None,
    ) -> None:
        if storage_config.backend == "sim" or storage_config.storage_dir is None:
            raise StreamingError(
                "parallel query workers reopen flushed state from disk; "
                "use a persistent backend and a real storage_dir"
            )
        if workers <= 0:
            raise ConfigurationError("workers must be positive")
        self._spec = _SnapshotSpec(
            storage_config=storage_config, name=name, sharded=sharded
        )
        self._workers = workers
        self._service = service
        self._generation = 1
        self._merges_at_refresh = self._live_merges()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._queries = 0
        self._refreshes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        storage_config: StorageConfig,
        name: str,
        workers: int = 2,
        sharded: bool = False,
    ) -> "ParallelQueryService":
        """A worker fleet over state some service already flushed to disk.

        ``name``/``sharded`` select the same shapes as
        :meth:`repro.ReachabilityEngine.reopen_streaming`; nothing is opened
        in this process — the first query makes each worker reopen lazily.
        """
        return cls(storage_config, name, workers=workers, sharded=sharded)

    @classmethod
    def for_service(cls, service: object, workers: int = 2) -> "ParallelQueryService":
        """A worker fleet attached to a live streaming service.

        ``service`` is an unsharded
        :class:`~repro.streaming.service.StreamingReachabilityService` or a
        :class:`~repro.streaming.coordinator.ShardedReachabilityService` on a
        persistent backend with a real ``storage_dir``.  The service is
        flushed once here (so workers have a committed prefix to open) and
        re-flushed automatically whenever its merge counter advances.
        """
        from .coordinator import ShardedReachabilityService
        from .service import StreamingReachabilityService

        if isinstance(service, ShardedReachabilityService):
            sharded = True
            storage_config = service.storage.config
        elif isinstance(service, StreamingReachabilityService):
            sharded = False
            storage_config = service.overlay.storage.config
        else:
            raise StreamingError(
                "for_service expects a StreamingReachabilityService or "
                f"ShardedReachabilityService, got {type(service).__name__}"
            )
        service.flush()
        return cls(
            storage_config,
            service.name,
            workers=workers,
            sharded=sharded,
            service=service,
        )

    def __enter__(self) -> "ParallelQueryService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # generation management
    # ------------------------------------------------------------------
    def _live_merges(self) -> Optional[int]:
        if self._service is None:
            return None
        return self._service.num_merges  # type: ignore[attr-defined]

    def _maybe_refresh(self) -> None:
        # Attached mode: an adopted merge swapped the snapshot the workers
        # hold; commit the new state and invalidate the fleet by generation.
        if self._service is not None and self._live_merges() != self._merges_at_refresh:
            self.refresh()

    def refresh(self) -> int:
        """Commit the latest live state and invalidate the worker fleet.

        Flushes the attached service (no-op in :meth:`open` mode, where the
        flusher is someone else) and bumps the generation; each worker
        recycles its reopened snapshot on its next task.  Returns the new
        generation.
        """
        self._ensure_open()
        if self._service is not None:
            self._service.flush()  # type: ignore[attr-defined]
            self._merges_at_refresh = self._live_merges()
        self._generation += 1
        self._refreshes += 1
        return self._generation

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer one query on a worker process over the committed prefix."""
        self._ensure_open()
        self._maybe_refresh()
        self._queries += 1
        return self._ensure_pool().submit(
            _worker_query, self._spec, self._generation, query
        ).result()

    def query_many(self, queries: Sequence[ReachabilityQuery]) -> List[QueryResult]:
        """Answer a batch of queries across the fleet, results in order.

        All queries are submitted before the first result is awaited, so up
        to ``workers`` of them execute concurrently — the read-side analogue
        of the process merge pool.
        """
        self._ensure_open()
        self._maybe_refresh()
        self._queries += len(queries)
        pool = self._ensure_pool()
        generation = self._generation
        futures = [
            pool.submit(_worker_query, self._spec, generation, query)
            for query in queries
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # introspection / shutdown
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[TimeInstant]:
        """The committed watermark answers are promised over (asks a worker)."""
        self._ensure_open()
        self._maybe_refresh()
        return self._ensure_pool().submit(
            _worker_watermark, self._spec, self._generation
        ).result()

    @property
    def generation(self) -> int:
        """Snapshot generation the next task will carry (starts at 1)."""
        return self._generation

    @property
    def workers(self) -> int:
        """Size of the worker pool."""
        return self._workers

    @property
    def num_queries(self) -> int:
        """Queries submitted so far."""
        return self._queries

    @property
    def num_refreshes(self) -> int:
        """Generation bumps so far (manual or merge-triggered)."""
        return self._refreshes

    def close(self) -> None:
        """Shut the worker pool down (reopened snapshots die with it).

        Idempotent; the attached live service (if any) is *not* closed —
        its lifecycle belongs to whoever created it.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_open(self) -> None:
        if self._closed:
            raise StreamingError("parallel query service is closed")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelQueryService(name={self._spec.name!r}, "
            f"workers={self._workers}, sharded={self._spec.sharded}, "
            f"generation={self._generation})"
        )


#: Callable type of the build phase, re-exported for documentation purposes:
#: every executor funnels through :func:`~repro.streaming.service.build_merge`.
BuildFn = Callable[[MergeInputs, Optional[StorageConfig]], MergeBuild]
