"""Experiment driver: streaming ingest vs batch rebuild.

Not a figure of the paper — the paper builds its indexes offline — but the
natural online extension of its evaluation: replay a canned dataset through
the streaming service, then compare per-query IO in the two regimes the delta
overlay creates (queries answered while the delta is live vs queries answered
after a merge folded everything into frozen indexes), alongside ingest
throughput and a ground-truth equivalence count against the batch
``reference`` evaluator.  The ``stream-async`` driver replays the same script
through the synchronous sharded service and the asyncio front-end, measuring
what the async architecture actually buys: query latency while merges run
(inline stalls vs background rebuilds).
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.reference import evaluate_reachability
from ..contacts.join import build_contact_network
from ..core.config import GRAPH_MODES, STORAGE_BACKENDS, StorageConfig, StreamingConfig
from ..core.types import QueryResult, ReachabilityQuery, TimeInterval
from ..experiments.harness import ExperimentResult, run_workload
from ..workloads.datasets import DATASETS
from ..workloads.queries import random_queries
from .async_service import AsyncReachabilityService
from .coordinator import ShardedReachabilityService
from .service import SnapshotQueryService, StreamingReachabilityService
from .source import DatasetReplaySource

__all__ = [
    "stream_replay",
    "sharded_stream_replay",
    "async_stream_replay",
    "disk_backend_replay",
    "space_replay",
    "graph_merge_replay",
    "parallel_merge_replay",
    "query_latency_replay",
]


def _make_service(dataset, spec, streaming_config, storage_config=None):
    """The streaming service the config asks for (sharded when shards > 1)."""
    cls = (
        ShardedReachabilityService
        if streaming_config.shards > 1
        else StreamingReachabilityService
    )
    return cls.for_dataset(
        dataset,
        contact_config=spec.contact_config,
        grid_config=spec.grid_config,
        streaming_config=streaming_config,
        storage_config=storage_config,
    )


def _storage_config(storage_backend: Optional[str]) -> Optional[StorageConfig]:
    """A storage config for ``storage_backend`` (``None``/"sim" → defaults).

    Persistent backends run in anonymous scratch directories here — the
    drivers measure behaviour, not durability; the close/reopen cycle is
    exercised by :func:`disk_backend_replay` with a real directory.
    """
    if storage_backend is None or storage_backend == "sim":
        return None
    return StorageConfig(backend=storage_backend)


def stream_replay(
    dataset_names: Sequence[str] = ("rwp-small", "vn-small"),
    batch_ticks: int = 8,
    num_queries: int = 20,
    merge_policy: str = "delta-size",
    seed: int = 0,
    shards: int = 1,
    router: str = "hash",
    storage_backend: str = "sim",
    graph_mode: str = "incremental",
    merge_executor: str = "inline",
    merge_workers: int = 2,
) -> ExperimentResult:
    """Streaming ingestion: throughput, and delta-query vs post-merge IO."""
    result = ExperimentResult(
        experiment="stream",
        description="Streaming ingest throughput and delta vs post-merge query IO",
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        streaming_config = StreamingConfig(
            batch_ticks=batch_ticks,
            merge_policy=merge_policy,
            shards=shards,
            router=router,
            graph_mode=graph_mode,
            merge_executor=merge_executor,
            merge_workers=merge_workers,
        )
        service = _make_service(
            dataset, spec, streaming_config, _storage_config(storage_backend)
        )
        source = DatasetReplaySource(dataset, batch_ticks=batch_ticks)
        stats = service.drain(source)

        workload = random_queries(dataset, count=num_queries, seed=seed)
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query).reachable
            for query in workload
        }

        # Regime 1: the delta overlay is still live (no forced merge).
        pre_results = {query: service.query(query) for query in workload}
        pre_aggregate = run_workload(
            pre_results.__getitem__, workload, method="pre-merge"
        )
        pre_matches = sum(
            1 for query in workload if pre_results[query].reachable == truth[query]
        )

        # Regime 2: everything folded into frozen snapshot indexes.
        service.merge()
        post_results = {query: service.query(query) for query in workload}
        post_aggregate = run_workload(
            post_results.__getitem__, workload, method="post-merge"
        )
        post_matches = sum(
            1 for query in workload if post_results[query].reachable == truth[query]
        )

        result.add_row(
            dataset=name,
            events=stats.events,
            ingest_events_per_sec=round(stats.events_per_second, 1),
            merges=service.num_merges,
            premerge_mean_io=round(pre_aggregate.mean_io, 3),
            postmerge_mean_io=round(post_aggregate.mean_io, 3),
            premerge_matches=f"{pre_matches}/{num_queries}",
            postmerge_matches=f"{post_matches}/{num_queries}",
        )
        service.close()  # releases the merge-executor pool, if one was created
    result.add_note(
        f"merge policy: {merge_policy}; pre-merge queries consult the frozen "
        "snapshot plus the in-memory delta graph, post-merge queries run on "
        "the rebuilt ReachGraph alone."
    )
    result.add_note(
        "matches count agreement with the batch reference evaluator over the "
        "same data; both columns should always equal the workload size."
    )
    if shards > 1:
        result.add_note(f"sharded ingestion: {shards} shards, {router} router.")
    if storage_backend != "sim":
        result.add_note(f"storage backend: {storage_backend}.")
    if graph_mode != "incremental":
        result.add_note(f"graph mode: {graph_mode}.")
    if merge_executor != "inline":
        result.add_note(
            f"merge executor: {merge_executor} ({merge_workers} workers)."
        )
    return result


def sharded_stream_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    router: str = "hash",
    batch_ticks: int = 8,
    num_queries: int = 20,
    merge_policy: str = "delta-size",
    seed: int = 0,
    storage_backend: str = "sim",
) -> ExperimentResult:
    """Shard-count scaling: ingest throughput and query cost vs shards."""
    result = ExperimentResult(
        experiment="stream-sharded",
        description="Sharded streaming ingest: throughput and query IO vs shard count",
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        workload = random_queries(dataset, count=num_queries, seed=seed)
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query).reachable
            for query in workload
        }
        for shards in shard_counts:
            streaming_config = StreamingConfig(
                batch_ticks=batch_ticks,
                merge_policy=merge_policy,
                shards=shards,
                router=router,
            )
            service = _make_service(
                dataset, spec, streaming_config, _storage_config(storage_backend)
            )
            stats = service.drain(DatasetReplaySource(dataset, batch_ticks=batch_ticks))
            query_results = {query: service.query(query) for query in workload}
            aggregate = run_workload(
                query_results.__getitem__, workload, method=f"shards-{shards}"
            )
            matches = sum(
                1
                for query in workload
                if query_results[query].reachable == truth[query]
            )
            result.add_row(
                dataset=name,
                shards=shards,
                events=stats.events,
                ingest_events_per_sec=round(stats.events_per_second, 1),
                merges=service.num_merges,
                mean_query_io=round(aggregate.mean_io, 3),
                mean_query_ms=round(aggregate.mean_cpu_seconds * 1000.0, 3),
                matches=f"{matches}/{num_queries}",
            )
    result.add_note(
        f"router: {router}; merge policy: {merge_policy}; each row drains the "
        "same replayed stream through N ingestion shards and answers the same "
        "workload by unioning shard overlays through the global low-watermark."
    )
    result.add_note(
        "matches count agreement with the batch reference evaluator; the "
        "column should always equal the workload size for every shard count."
    )
    return result


# ----------------------------------------------------------------------
# sync vs async serving under concurrent query load
# ----------------------------------------------------------------------
def _run_sync_script(
    service: ShardedReachabilityService,
    batches: Sequence,
    workload: Sequence[ReachabilityQuery],
    queries_per_batch: int,
) -> Tuple[float, List[float], int]:
    """Ingest every batch, answering queries after each; returns timings.

    Returns (wall seconds, per-query wall latencies, queries answered).  In
    the synchronous regime a query issued right after a batch that triggered
    a merge pays the whole rebuild inline — that stall is the latency tail
    the async service removes.
    """
    latencies: List[float] = []
    cursor = 0
    started = time.perf_counter()
    for batch in batches:
        service.ingest(batch)
        for _ in range(queries_per_batch):
            query = workload[cursor % len(workload)]
            cursor += 1
            t0 = time.perf_counter()
            service.query(query)
            latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - started, latencies, cursor


async def _run_async_script(
    service: AsyncReachabilityService,
    batches: Sequence,
    workload: Sequence[ReachabilityQuery],
    queries_per_batch: int,
    concurrency: int,
) -> Tuple[float, List[float], int]:
    """The same script against the asyncio front-end, with concurrent queries.

    Per batch: one producer awaits ``ingest`` (backpressured by the shard
    queues) while ``concurrency``-wide waves of queries run concurrently on
    the loop; background merges proceed in worker threads throughout.
    """
    latencies: List[float] = []
    cursor = 0

    async def timed_query(query: ReachabilityQuery) -> QueryResult:
        t0 = time.perf_counter()
        result = await service.query(query)
        latencies.append(time.perf_counter() - t0)
        return result

    started = time.perf_counter()
    for batch in batches:
        ingest_future = asyncio.ensure_future(service.ingest(batch))
        # Waves run one after another — at most ``concurrency`` queries are
        # ever in flight at once — while the ingest future (and any merge it
        # spawns) stays pending alongside them.
        for wave_start in range(0, queries_per_batch, concurrency):
            width = min(concurrency, queries_per_batch - wave_start)
            wave = [workload[(cursor + i) % len(workload)] for i in range(width)]
            cursor += width
            await asyncio.gather(*(timed_query(q) for q in wave))
        await ingest_future
    await service.drain()
    return time.perf_counter() - started, latencies, cursor


def async_stream_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    shards: int = 2,
    concurrency: int = 4,
    batch_ticks: int = 8,
    num_queries: int = 16,
    queries_per_batch: int = 4,
    merge_policy: str = "delta-size",
    router: str = "hash",
    seed: int = 0,
    storage_backend: str = "sim",
) -> ExperimentResult:
    """Sync vs async serving: throughput and query latency under load."""
    result = ExperimentResult(
        experiment="stream-async",
        description=(
            "Synchronous vs asyncio serving: ingest throughput and query "
            "latency while merges run"
        ),
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        streaming_config = StreamingConfig(
            batch_ticks=batch_ticks,
            merge_policy=merge_policy,
            shards=shards,
            router=router,
        )
        batches = list(DatasetReplaySource(dataset, batch_ticks=batch_ticks).batches())
        workload = list(random_queries(dataset, count=num_queries, seed=seed))
        network = build_contact_network(dataset, spec.contact_threshold)
        truth: Dict[ReachabilityQuery, QueryResult] = {
            query: evaluate_reachability(network, query) for query in workload
        }

        def final_matches(results: Dict[ReachabilityQuery, QueryResult]) -> int:
            return sum(
                1
                for query in workload
                if results[query].reachable == truth[query].reachable
            )

        # Synchronous regime: merges run inline, queries wait behind them.
        sync_service = ShardedReachabilityService.for_dataset(
            dataset,
            contact_config=spec.contact_config,
            grid_config=spec.grid_config,
            streaming_config=streaming_config,
            storage_config=_storage_config(storage_backend),
        )
        sync_wall, sync_latencies, sync_answered = _run_sync_script(
            sync_service, batches, workload, queries_per_batch
        )
        sync_final = {query: sync_service.query(query) for query in workload}

        # Async regime: background merges, concurrent queries.
        async def drive():
            service = AsyncReachabilityService.for_dataset(
                dataset,
                contact_config=spec.contact_config,
                grid_config=spec.grid_config,
                streaming_config=streaming_config,
                storage_config=_storage_config(storage_backend),
            )
            async with service:
                wall, latencies, answered = await _run_async_script(
                    service, batches, workload, queries_per_batch, concurrency
                )
                final = {query: await service.query(query) for query in workload}
                stats = service.stats
            return wall, latencies, answered, final, stats

        async_wall, async_latencies, async_answered, async_final, async_stats = (
            asyncio.run(drive())
        )

        sync_stats = sync_service.stats
        for mode, wall, latencies, answered, final, events_per_sec, merges in (
            (
                "sync",
                sync_wall,
                sync_latencies,
                sync_answered,
                sync_final,
                sync_stats.events_per_second,
                sync_stats.merges,
            ),
            (
                "async",
                async_wall,
                async_latencies,
                async_answered,
                async_final,
                async_stats.events_per_second,
                async_stats.sharded.merges,
            ),
        ):
            result.add_row(
                dataset=name,
                mode=mode,
                shards=shards,
                concurrency=concurrency if mode == "async" else 1,
                wall_seconds=round(wall, 4),
                ingest_events_per_sec=round(events_per_sec, 1),
                merges=merges,
                queries_during_ingest=answered,
                mean_query_ms=round(
                    1000.0 * sum(latencies) / max(1, len(latencies)), 3
                ),
                max_query_ms=round(1000.0 * max(latencies, default=0.0), 3),
                matches=f"{final_matches(final)}/{num_queries}",
            )
    result.add_note(
        f"merge policy: {merge_policy}; both modes replay the same batches and "
        "answer the same per-batch query waves; 'matches' checks the post-drain "
        "answers against the batch reference evaluator and should always equal "
        "the workload size."
    )
    result.add_note(
        "the async row runs ingestion through bounded per-shard queues with "
        "merges as background tasks, so its max_query_ms excludes the inline "
        "rebuild stall the sync row pays."
    )
    return result


# ----------------------------------------------------------------------
# storage-backend comparison (sim vs file vs mmap)
# ----------------------------------------------------------------------
def disk_backend_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    backends: Sequence[str] = STORAGE_BACKENDS,
    batch_ticks: int = 8,
    num_queries: int = 20,
    merge_policy: str = "delta-size",
    seed: int = 0,
) -> ExperimentResult:
    """Storage backends: ingest/query cost and reopen fidelity per backend."""
    result = ExperimentResult(
        experiment="stream-disk",
        description=(
            "Streaming replay per storage backend: throughput, query IO, "
            "snapshot write amplification, and close/reopen fidelity"
        ),
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        workload = list(random_queries(dataset, count=num_queries, seed=seed))
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query) for query in workload
        }
        for backend in backends:
            with tempfile.TemporaryDirectory(prefix="repro-stream-disk-") as scratch:
                streaming_config = StreamingConfig(
                    batch_ticks=batch_ticks, merge_policy=merge_policy
                )
                storage_config = (
                    None
                    if backend == "sim"
                    else StorageConfig(backend=backend, storage_dir=scratch)
                )
                service = _make_service(
                    dataset, spec, streaming_config, storage_config
                )
                stats = service.drain(
                    DatasetReplaySource(dataset, batch_ticks=batch_ticks)
                )
                live = {query: service.query(query) for query in workload}
                aggregate = run_workload(
                    live.__getitem__, workload, method=f"backend-{backend}"
                )
                matches = sum(
                    1
                    for query in workload
                    if live[query].reachable == truth[query].reachable
                )
                reopen_matches = "n/a"
                if storage_config is not None:
                    service.close()
                    reopened = SnapshotQueryService.open(
                        storage_config, name=service.name
                    )
                    agree = sum(
                        1
                        for query in workload
                        if reopened.query(query).reachable
                        == truth[query].reachable
                    )
                    reopened.close()
                    reopen_matches = f"{agree}/{num_queries}"
                service_stats = service.stats
                result.add_row(
                    dataset=name,
                    backend=backend,
                    events=stats.events,
                    ingest_events_per_sec=round(stats.events_per_second, 1),
                    merges=service.num_merges,
                    snapshot_records_written=service_stats.snapshot_records_written,
                    superseded_blocks=service_stats.superseded_blocks,
                    compactions=service_stats.compactions,
                    graph_records_written=service_stats.graph_records_written,
                    graph_superseded_blocks=service_stats.graph_superseded_blocks,
                    mean_query_io=round(aggregate.mean_io, 3),
                    mean_query_ms=round(aggregate.mean_cpu_seconds * 1000.0, 3),
                    matches=f"{matches}/{num_queries}",
                    reopen_matches=reopen_matches,
                )
    result.add_note(
        f"merge policy: {merge_policy}; every backend drains the same replayed "
        "stream behind the same StorageSystem interface, so IO counts are "
        "directly comparable; snapshot_records_written / graph_records_written "
        "are the LSM and ReachGraph write-amplification ledgers, and the "
        "superseded_blocks columns count on-device garbage left by compactions "
        "and partition rewrites — the baseline any space-reclamation work "
        "must shrink."
    )
    result.add_note(
        "reopen_matches re-answers the workload after close() through a "
        "SnapshotQueryService reopened from the backing files (persistent "
        "backends only); it should always equal the workload size."
    )
    return result


# ----------------------------------------------------------------------
# space reclamation: live bytes vs device bytes under GC
# ----------------------------------------------------------------------
def space_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    backends: Sequence[str] = STORAGE_BACKENDS,
    batch_ticks: int = 8,
    num_queries: int = 20,
    gc_trigger_ratio: float = 0.35,
    max_delta_contacts: int = 96,
    seed: int = 0,
) -> ExperimentResult:
    """Space reclamation: device footprint converging onto live bytes.

    Drains one multi-merge stream per backend with the whole space pipeline
    armed — leveled compaction, frontier repack, WAL truncation, and the
    ``gc_trigger_ratio`` policy that fires copy-forward device GC after
    merges — then runs one final explicit :meth:`reclaim` and reports the
    device's live/garbage ledger before and after it.  The claim the rows
    support: with GC on, device blocks track live blocks (the final ratio
    stays near 1.0 instead of growing with merge count), queries still agree
    with the batch reference, and the ingest journal stays bounded.
    """
    result = ExperimentResult(
        experiment="stream-space",
        description=(
            "Streaming replay per storage backend with GC, compaction, "
            "repack, and WAL truncation armed: live vs device blocks "
            "before/after reclaim"
        ),
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        workload = list(random_queries(dataset, count=num_queries, seed=seed))
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query) for query in workload
        }
        for backend in backends:
            with tempfile.TemporaryDirectory(
                prefix="repro-stream-space-"
            ) as scratch:
                streaming_config = StreamingConfig(
                    batch_ticks=batch_ticks,
                    merge_policy="delta-size",
                    max_delta_contacts=max_delta_contacts,
                    gc_trigger_ratio=gc_trigger_ratio,
                    graph_repack_min_partitions=2,
                )
                storage_config = (
                    None
                    if backend == "sim"
                    else StorageConfig(backend=backend, storage_dir=scratch)
                )
                service = StreamingReachabilityService.for_dataset(
                    dataset,
                    contact_config=spec.contact_config,
                    grid_config=spec.grid_config,
                    streaming_config=streaming_config,
                    storage_config=storage_config,
                )
                stats = service.drain(
                    DatasetReplaySource(dataset, batch_ticks=batch_ticks)
                )
                overlay_disk = service.overlay.storage
                ingest_disk = service.ingestor.storage
                device_before = (
                    overlay_disk.disk.num_blocks + ingest_disk.disk.num_blocks
                )
                garbage_before = (
                    overlay_disk.garbage_blocks + ingest_disk.garbage_blocks
                )
                freed = service.reclaim()
                live = overlay_disk.live_blocks + ingest_disk.live_blocks
                device = (
                    overlay_disk.disk.num_blocks + ingest_disk.disk.num_blocks
                )
                matches = sum(
                    1
                    for query in workload
                    if service.query(query).reachable == truth[query].reachable
                )
                service_stats = service.stats
                result.add_row(
                    dataset=name,
                    backend=backend,
                    events=stats.events,
                    merges=service.num_merges,
                    compactions=service_stats.compactions,
                    graph_repacks=service_stats.graph_repacks,
                    reclaims=service_stats.reclaims,
                    reclaimed_blocks=service_stats.reclaimed_blocks,
                    device_blocks_before=device_before,
                    garbage_before=garbage_before,
                    final_reclaim_freed=freed,
                    live_blocks=live,
                    device_blocks=device,
                    device_over_live=round(device / live, 3) if live else 0.0,
                    journal_blocks=service.ingestor.journal_blocks,
                    matches=f"{matches}/{num_queries}",
                )
                service.close()
    result.add_note(
        f"gc_trigger_ratio={gc_trigger_ratio}: merges fire copy-forward GC "
        "whenever either device's garbage ratio passes the knob; the "
        "before-columns show the residual ledger at drain end, the "
        "after-columns follow one explicit reclaim() (flush + device GC on "
        "both systems).  device_over_live is the headline: the device "
        "footprint divided by the blocks live structures reference — it must "
        "stay near 1.0 instead of growing with merge count."
    )
    result.add_note(
        "journal_blocks is the ingest WAL's device footprint after the final "
        "flush — with truncation it holds only the unflushed tail, never the "
        "whole stream; matches re-answers the workload after GC against the "
        "batch reference evaluator (reclaim must move blocks, not answers)."
    )
    return result


# ----------------------------------------------------------------------
# incremental vs rebuild ReachGraph maintenance
# ----------------------------------------------------------------------
def graph_merge_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    graph_modes: Sequence[str] = GRAPH_MODES,
    batch_ticks: int = 8,
    num_queries: int = 20,
    max_delta_contacts: int = 64,
    seed: int = 0,
    storage_backend: str = "sim",
) -> ExperimentResult:
    """ReachGraph merge cost: patch the reduced DAG vs rebuild it every merge."""
    result = ExperimentResult(
        experiment="stream-graph",
        description=(
            "Incremental vs rebuild ReachGraph maintenance: graph write "
            "amplification and merge-inclusive ingest cost over one stream"
        ),
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        workload = list(random_queries(dataset, count=num_queries, seed=seed))
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query).reachable
            for query in workload
        }
        for graph_mode in graph_modes:
            streaming_config = StreamingConfig(
                batch_ticks=batch_ticks,
                max_delta_contacts=max_delta_contacts,
                graph_mode=graph_mode,
            )
            service = StreamingReachabilityService.for_dataset(
                dataset,
                contact_config=spec.contact_config,
                grid_config=spec.grid_config,
                streaming_config=streaming_config,
                storage_config=_storage_config(storage_backend),
            )
            started = time.perf_counter()
            service.drain(DatasetReplaySource(dataset, batch_ticks=batch_ticks))
            service.merge()  # freeze the tail so the final graph covers it all
            drain_seconds = time.perf_counter() - started
            query_results = {query: service.query(query) for query in workload}
            aggregate = run_workload(
                query_results.__getitem__, workload, method=f"graph-{graph_mode}"
            )
            matches = sum(
                1
                for query in workload
                if query_results[query].reachable == truth[query]
            )
            stats = service.stats
            result.add_row(
                dataset=name,
                graph_mode=graph_mode,
                events=stats.events,
                merges=stats.merges,
                graph_records_written=stats.graph_records_written,
                graph_rebuilds=stats.graph_rebuilds,
                graph_superseded_blocks=stats.graph_superseded_blocks,
                snapshot_records_written=stats.snapshot_records_written,
                superseded_blocks=stats.superseded_blocks,
                drain_seconds=round(drain_seconds, 4),
                mean_query_io=round(aggregate.mean_io, 3),
                matches=f"{matches}/{num_queries}",
            )
    result.add_note(
        f"max_delta_contacts: {max_delta_contacts} (small, so many merges fire "
        "over the stream); both modes drain the same replayed stream and must "
        "answer the workload identically — only the graph write ledgers differ."
    )
    result.add_note(
        "graph_records_written counts vertex records written by ReachGraph "
        "builds and partition rewrites; rebuild mode rewrites every vertex on "
        "every merge while incremental mode rewrites only the fresh and "
        "dirtied partitions, at the price of the superseded partition blocks "
        "counted by graph_superseded_blocks (on-device garbage until a "
        "space-reclamation pass exists)."
    )
    result.add_note(
        "mean_query_io may run higher in incremental mode: frontier vertices "
        "join small per-merge partitions instead of the large depth-dp "
        "partitions a from-scratch build carves, so reads touch more extents "
        "— the classic write-vs-read amplification trade, surfaced here."
    )
    if storage_backend != "sim":
        result.add_note(f"storage backend: {storage_backend}.")
    return result


# ----------------------------------------------------------------------
# multi-core merge execution: executor kind × worker count
# ----------------------------------------------------------------------
def parallel_merge_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    executors: Sequence[str] = ("inline", "thread", "process"),
    worker_counts: Sequence[int] = (1, 2, 4),
    shards: int = 4,
    batch_ticks: int = 8,
    num_queries: int = 12,
    max_delta_contacts: int = 64,
    seed: int = 0,
    storage_backend: str = "sim",
) -> ExperimentResult:
    """Merge-executor scaling: drain cost and build overlap per executor.

    Drains the same replayed stream through a sharded service once per
    (executor kind, worker count) cell — the sharded coordinator shares one
    :class:`~repro.streaming.parallel.MergeExecutor` across its shards, so a
    thread/process pool overlaps the pure builds of different shards while
    adoptions stay serial.  ``overlapped_builds`` (from the executor's
    :class:`~repro.obs.MergeTimings`) is the direct witness of concurrency;
    on a multi-core machine ``drain_seconds`` should fall as process workers
    grow, while answers stay bit-identical to the batch reference.
    """
    result = ExperimentResult(
        experiment="stream-parallel",
        description=(
            "Merge-executor scaling: drain wall time, build overlap, and "
            "reference equivalence per executor kind and worker count"
        ),
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        workload = list(random_queries(dataset, count=num_queries, seed=seed))
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query).reachable
            for query in workload
        }
        for executor in executors:
            counts = worker_counts if executor != "inline" else (1,)
            for workers in counts:
                streaming_config = StreamingConfig(
                    batch_ticks=batch_ticks,
                    max_delta_contacts=max_delta_contacts,
                    shards=shards,
                    merge_executor=executor,
                    merge_workers=workers,
                )
                service = _make_service(
                    dataset, spec, streaming_config, _storage_config(storage_backend)
                )
                started = time.perf_counter()
                service.drain(DatasetReplaySource(dataset, batch_ticks=batch_ticks))
                service.merge()  # freeze the tail so every cell covers it all
                drain_seconds = time.perf_counter() - started
                timings = service.merge_executor.timings.summary()
                query_results = {query: service.query(query) for query in workload}
                matches = sum(
                    1
                    for query in workload
                    if query_results[query].reachable == truth[query]
                )
                merges = service.num_merges
                service.close()
                result.add_row(
                    dataset=name,
                    executor=executor,
                    workers=workers,
                    shards=shards,
                    merges=merges,
                    drain_seconds=round(drain_seconds, 4),
                    build_seconds=round(timings["total_build_seconds"], 4),
                    overlapped_builds=int(timings["overlapped_builds"]),
                    matches=f"{matches}/{num_queries}",
                )
    result.add_note(
        f"max_delta_contacts: {max_delta_contacts} (small, so many merges fire); "
        "every cell drains the same replayed stream — only where the pure "
        "build phase runs differs, so 'matches' must equal the workload size "
        "in every row."
    )
    result.add_note(
        "overlapped_builds counts builds that shared their executor with a "
        "concurrent one: 0 for inline by construction, rising with workers "
        "for the pools; drain_seconds only improves with process workers "
        "when the machine actually has spare cores."
    )
    if storage_backend != "sim":
        result.add_note(f"storage backend: {storage_backend}.")
    return result


# ----------------------------------------------------------------------
# the query fast path: interval labels, zone maps, partition cache
# ----------------------------------------------------------------------
def _negative_heavy_workload(dataset, count: int) -> List[ReachabilityQuery]:
    """Mostly-unreachable queries: tight windows plus unknown endpoints.

    Tight one-tick windows leave almost no time for a temporal path, so most
    pairs are unreachable (the interval labels' best case); two queries name
    object ids outside the dataset entirely (the Bloom layer's best case).
    """
    objects = dataset.object_ids
    horizon = dataset.horizon
    workload = [
        ReachabilityQuery(
            objects[position % len(objects)],
            objects[(position * 7 + 3) % len(objects)],
            TimeInterval(start, min(start + 1, horizon.end)),
        )
        for position, start in enumerate(
            range(horizon.start, horizon.end, max(1, (horizon.end or 1) // count))
        )
    ][: max(1, count - 2)]
    workload.append(ReachabilityQuery(max(objects) + 50, objects[0], horizon))
    workload.append(ReachabilityQuery(objects[-1], max(objects) + 51, horizon))
    return workload


def query_latency_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    batch_ticks: int = 8,
    num_queries: int = 30,
    max_delta_contacts: int = 64,
    seed: int = 0,
    storage_backend: str = "sim",
) -> ExperimentResult:
    """Query fast path: interval labels on/off, cold vs warm partition cache."""
    result = ExperimentResult(
        experiment="stream-query",
        description=(
            "Query fast path: per-mix latency and IO with the interval labels "
            "on vs off, cold vs warm partition cache, plus the zone-map skip "
            "ledgers of the LSM snapshot store"
        ),
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        network = build_contact_network(dataset, spec.contact_threshold)
        service = StreamingReachabilityService.for_dataset(
            dataset,
            contact_config=spec.contact_config,
            grid_config=spec.grid_config,
            streaming_config=StreamingConfig(
                batch_ticks=batch_ticks, max_delta_contacts=max_delta_contacts
            ),
            storage_config=_storage_config(storage_backend),
        )
        service.drain(DatasetReplaySource(dataset, batch_ticks=batch_ticks))
        service.merge()  # freeze the tail: every query runs on the fast path
        overlay = service.overlay
        processor = overlay.snapshot_processor
        mixes = {
            "positive-heavy": list(
                random_queries(dataset, count=num_queries, seed=seed)
            ),
            "negative-heavy": _negative_heavy_workload(dataset, num_queries),
        }
        for mix, workload in mixes.items():
            truth = {
                query: evaluate_reachability(network, query).reachable
                for query in workload
            }
            for use_labels in (True, False):
                if processor is not None:
                    processor.use_labels = use_labels
                cache = overlay.partition_cache
                cache.invalidate()  # the cold pass starts from an empty cache
                rejections = overlay.label_rejections
                prunes = overlay.label_frontier_prunes
                blooms = overlay.bloom_rejections
                hits, misses = cache.hits, cache.misses
                answers: Dict[ReachabilityQuery, QueryResult] = {}
                started = time.perf_counter()
                for query in workload:
                    answers[query] = overlay.evaluate(query)
                cold_seconds = time.perf_counter() - started
                started = time.perf_counter()
                for query in workload:
                    overlay.evaluate(query)
                warm_seconds = time.perf_counter() - started
                aggregate = run_workload(
                    answers.__getitem__,
                    workload,
                    method=f"labels-{'on' if use_labels else 'off'}",
                )
                matches = sum(
                    1
                    for query in workload
                    if bool(answers[query].reachable) == truth[query]
                )
                probed = (cache.hits - hits) + (cache.misses - misses)
                result.add_row(
                    dataset=name,
                    mix=mix,
                    labels="on" if use_labels else "off",
                    cold_ms=round(1_000 * cold_seconds / len(workload), 4),
                    warm_ms=round(1_000 * warm_seconds / len(workload), 4),
                    mean_io=round(aggregate.mean_io, 3),
                    mean_visited=round(aggregate.mean_visited, 2),
                    label_rejections=overlay.label_rejections - rejections,
                    frontier_prunes=overlay.label_frontier_prunes - prunes,
                    bloom_rejections=overlay.bloom_rejections - blooms,
                    cache_hit_rate=(
                        round((cache.hits - hits) / probed, 3) if probed else 0.0
                    ),
                    matches=f"{matches}/{len(workload)}",
                )
            if processor is not None:
                processor.use_labels = True
        # The graph fast path rarely touches the snapshot store, so probe the
        # zone maps directly: narrow window reads across the horizon must
        # skip every run whose time span provably misses the window.
        store = overlay.snapshot_store
        if store is not None:
            runs_skipped = store.runs_skipped
            blocks_skipped = store.blocks_skipped
            horizon = dataset.horizon
            probes = 0
            started = time.perf_counter()
            for start in range(horizon.start, horizon.end, max(1, batch_ticks)):
                store.read_overlapping(
                    TimeInterval(start, min(start + 1, horizon.end))
                )
                probes += 1
            probe_seconds = time.perf_counter() - started
            result.add_note(
                f"{name}: zone-map probe — {probes} one-tick reads over "
                f"{store.num_runs} snapshot run(s) skipped "
                f"{store.runs_skipped - runs_skipped} run(s) / "
                f"{store.blocks_skipped - blocks_skipped} block(s) without IO "
                f"({1_000 * probe_seconds / probes:.3f} ms/read)."
            )
        service.close()
    result.add_note(
        "Labels are a one-sided filter: 'matches' must equal the workload "
        "size in every row — on and off may only differ in latency, IO, and "
        "visited counts (the negative-heavy mix is where the rejections and "
        "frontier prunes pay)."
    )
    result.add_note(
        "cold_ms runs against a freshly invalidated partition cache, warm_ms "
        "repeats the same workload against the populated cache; the Bloom "
        "rejections answer unknown-endpoint queries with zero IO in either "
        "pass."
    )
    if storage_backend != "sim":
        result.add_note(f"storage backend: {storage_backend}.")
    return result
