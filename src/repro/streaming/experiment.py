"""Experiment driver: streaming ingest vs batch rebuild.

Not a figure of the paper — the paper builds its indexes offline — but the
natural online extension of its evaluation: replay a canned dataset through
the streaming service, then compare per-query IO in the two regimes the delta
overlay creates (queries answered while the delta is live vs queries answered
after a merge folded everything into frozen indexes), alongside ingest
throughput and a ground-truth equivalence count against the batch
``reference`` evaluator.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines.reference import evaluate_reachability
from ..contacts.join import build_contact_network
from ..core.config import StreamingConfig
from ..experiments.harness import ExperimentResult, run_workload
from ..workloads.datasets import DATASETS
from ..workloads.queries import random_queries
from .coordinator import ShardedReachabilityService
from .service import StreamingReachabilityService
from .source import DatasetReplaySource

__all__ = ["stream_replay", "sharded_stream_replay"]


def _make_service(dataset, spec, streaming_config):
    """The streaming service the config asks for (sharded when shards > 1)."""
    cls = (
        ShardedReachabilityService
        if streaming_config.shards > 1
        else StreamingReachabilityService
    )
    return cls.for_dataset(
        dataset,
        contact_config=spec.contact_config,
        grid_config=spec.grid_config,
        streaming_config=streaming_config,
    )


def stream_replay(
    dataset_names: Sequence[str] = ("rwp-small", "vn-small"),
    batch_ticks: int = 8,
    num_queries: int = 20,
    merge_policy: str = "delta-size",
    seed: int = 0,
    shards: int = 1,
    router: str = "hash",
) -> ExperimentResult:
    """Streaming ingestion: throughput, and delta-query vs post-merge IO."""
    result = ExperimentResult(
        experiment="stream",
        description="Streaming ingest throughput and delta vs post-merge query IO",
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        streaming_config = StreamingConfig(
            batch_ticks=batch_ticks,
            merge_policy=merge_policy,
            shards=shards,
            router=router,
        )
        service = _make_service(dataset, spec, streaming_config)
        source = DatasetReplaySource(dataset, batch_ticks=batch_ticks)
        stats = service.drain(source)

        workload = random_queries(dataset, count=num_queries, seed=seed)
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query).reachable
            for query in workload
        }

        # Regime 1: the delta overlay is still live (no forced merge).
        pre_results = {query: service.query(query) for query in workload}
        pre_aggregate = run_workload(
            pre_results.__getitem__, workload, method="pre-merge"
        )
        pre_matches = sum(
            1 for query in workload if pre_results[query].reachable == truth[query]
        )

        # Regime 2: everything folded into frozen snapshot indexes.
        service.merge()
        post_results = {query: service.query(query) for query in workload}
        post_aggregate = run_workload(
            post_results.__getitem__, workload, method="post-merge"
        )
        post_matches = sum(
            1 for query in workload if post_results[query].reachable == truth[query]
        )

        result.add_row(
            dataset=name,
            events=stats.events,
            ingest_events_per_sec=round(stats.events_per_second, 1),
            merges=service.num_merges,
            premerge_mean_io=round(pre_aggregate.mean_io, 3),
            postmerge_mean_io=round(post_aggregate.mean_io, 3),
            premerge_matches=f"{pre_matches}/{num_queries}",
            postmerge_matches=f"{post_matches}/{num_queries}",
        )
    result.add_note(
        f"merge policy: {merge_policy}; pre-merge queries consult the frozen "
        "snapshot plus the in-memory delta graph, post-merge queries run on "
        "the rebuilt ReachGraph alone."
    )
    result.add_note(
        "matches count agreement with the batch reference evaluator over the "
        "same data; both columns should always equal the workload size."
    )
    if shards > 1:
        result.add_note(f"sharded ingestion: {shards} shards, {router} router.")
    return result


def sharded_stream_replay(
    dataset_names: Sequence[str] = ("rwp-small",),
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    router: str = "hash",
    batch_ticks: int = 8,
    num_queries: int = 20,
    merge_policy: str = "delta-size",
    seed: int = 0,
) -> ExperimentResult:
    """Shard-count scaling: ingest throughput and query cost vs shards."""
    result = ExperimentResult(
        experiment="stream-sharded",
        description="Sharded streaming ingest: throughput and query IO vs shard count",
    )
    for name in dataset_names:
        spec = DATASETS[name]
        dataset = spec.generate()
        workload = random_queries(dataset, count=num_queries, seed=seed)
        network = build_contact_network(dataset, spec.contact_threshold)
        truth = {
            query: evaluate_reachability(network, query).reachable
            for query in workload
        }
        for shards in shard_counts:
            streaming_config = StreamingConfig(
                batch_ticks=batch_ticks,
                merge_policy=merge_policy,
                shards=shards,
                router=router,
            )
            service = _make_service(dataset, spec, streaming_config)
            stats = service.drain(DatasetReplaySource(dataset, batch_ticks=batch_ticks))
            query_results = {query: service.query(query) for query in workload}
            aggregate = run_workload(
                query_results.__getitem__, workload, method=f"shards-{shards}"
            )
            matches = sum(
                1
                for query in workload
                if query_results[query].reachable == truth[query]
            )
            result.add_row(
                dataset=name,
                shards=shards,
                events=stats.events,
                ingest_events_per_sec=round(stats.events_per_second, 1),
                merges=service.num_merges,
                mean_query_io=round(aggregate.mean_io, 3),
                mean_query_ms=round(aggregate.mean_cpu_seconds * 1000.0, 3),
                matches=f"{matches}/{num_queries}",
            )
    result.add_note(
        f"router: {router}; merge policy: {merge_policy}; each row drains the "
        "same replayed stream through N ingestion shards and answers the same "
        "workload by unioning shard overlays through the global low-watermark."
    )
    result.add_note(
        "matches count agreement with the batch reference evaluator; the "
        "column should always equal the workload size for every shard count."
    )
    return result
