"""Shard routers: how the event stream is partitioned across ingestors.

A :class:`ShardRouter` maps every :class:`~repro.streaming.events.SampleEvent`
to one of ``num_shards`` ingestion shards.  Routing must be *sticky per
object*: each :class:`~repro.streaming.ingest.StreamIngestor` maintains dense
per-object position buffers, so an object that hopped between shards would
tear a hole in both shards' horizons.  Both built-in routers guarantee
stickiness:

* :class:`HashRouter` — a pure function of the object id (a multiplicative
  Fibonacci hash, deterministic across runs and processes);
* :class:`SpatialCellRouter` — the paper-flavoured partitioning: the shard is
  chosen from the spatial grid cell of the object's *first observed*
  position, then pinned.  Objects that start near each other land on the same
  shard, which keeps most contact pairs intra-shard; pairs that still span
  shards are handled by the coordinator's cross-shard join.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from ..core.config import SHARD_ROUTERS
from ..core.errors import ConfigurationError
from ..reachgrid.cells import clamped_spatial_cell, grid_axis_cells
from ..core.types import ObjectId
from .events import SampleEvent

__all__ = ["ShardRouter", "HashRouter", "SpatialCellRouter", "make_router"]

#: 2^64 / golden ratio, the classic Fibonacci-hashing multiplier.
_FIB_MULTIPLIER = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class ShardRouter(ABC):
    """Assigns every sample event to a shard, sticky per object."""

    name: str = "abstract"

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        self.num_shards = num_shards

    @abstractmethod
    def assign(self, event: SampleEvent) -> int:
        """The shard for this event (registers the object when first seen)."""

    @abstractmethod
    def shard_of(self, object_id: ObjectId) -> Optional[int]:
        """The shard an object is pinned to, or ``None`` if never routed."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashRouter(ShardRouter):
    """Routes by a deterministic hash of the object id.

    Stateless (the shard of an object is always computable), so it balances
    shards well under skewed spatial distributions but scatters spatially
    close objects — most contact pairs become cross-shard pairs.
    """

    name = "hash"

    def assign(self, event: SampleEvent) -> int:
        """The shard for ``event``, from the hash of its object id alone."""
        return self._shard(event.object_id)

    def shard_of(self, object_id: ObjectId) -> Optional[int]:
        """The shard any event for ``object_id`` would be assigned (never ``None``)."""
        return self._shard(object_id)

    def _shard(self, object_id: ObjectId) -> int:
        mixed = (object_id * _FIB_MULTIPLIER) & _MASK64
        return (mixed >> 32) % self.num_shards


class SpatialCellRouter(ShardRouter):
    """Routes by the spatial grid cell of the object's first observed position.

    The assignment is computed once per object and then pinned (objects move;
    shards must not).  Cells are striped across shards in row-major order, so
    neighbouring cells land on different shards while every shard covers a
    spread of the environment.
    """

    name = "spatial"

    def __init__(
        self,
        num_shards: int,
        environment_size: Tuple[float, float],
        spatial_resolution: float,
    ) -> None:
        super().__init__(num_shards)
        if environment_size[0] <= 0 or environment_size[1] <= 0:
            raise ConfigurationError("environment size must be positive in both axes")
        if spatial_resolution <= 0:
            raise ConfigurationError("spatial_resolution must be positive")
        self.environment_size = environment_size
        self.spatial_resolution = spatial_resolution
        self._columns = grid_axis_cells(environment_size[0], spatial_resolution)
        self._rows = grid_axis_cells(environment_size[1], spatial_resolution)
        self._assignments: Dict[ObjectId, int] = {}

    def assign(self, event: SampleEvent) -> int:
        """The shard for ``event``, pinned at the object's first observed cell."""
        shard = self._assignments.get(event.object_id)
        if shard is None:
            column, row = clamped_spatial_cell(
                event.position, self.spatial_resolution, self._columns, self._rows
            )
            shard = (row * self._columns + column) % self.num_shards
            self._assignments[event.object_id] = shard
        return shard

    def shard_of(self, object_id: ObjectId) -> Optional[int]:
        """The pinned shard of ``object_id``, or ``None`` if never observed."""
        return self._assignments.get(object_id)


def make_router(
    name: str,
    num_shards: int,
    environment_size: Tuple[float, float],
    spatial_resolution: float,
) -> ShardRouter:
    """Instantiate the shard router selected by name (see ``SHARD_ROUTERS``)."""
    if name == "hash":
        return HashRouter(num_shards)
    if name == "spatial":
        return SpatialCellRouter(num_shards, environment_size, spatial_resolution)
    raise ConfigurationError(
        f"unknown shard router {name!r}; choose one of {', '.join(SHARD_ROUTERS)}"
    )
